#!/usr/bin/env python3
"""Executable VHDL, both directions (paper §2.7).

The subset is defined as *VHDL*; this example exercises both
directions of that claim:

1. run the paper's own §2.7 example source -- the literal CONTROLLER /
   TRANS / REG / ADD entities -- through the subset front end (lexer,
   parser, conformance checker, elaborating interpreter) and confirm
   the printed results and the 42-delta cost;
2. emit a Python-built RT model as subset VHDL, write the ``.vhd``
   file next to this script, re-parse and re-simulate it, and confirm
   register-level agreement;
3. export a VCD waveform of the native run for a standard viewer.

Run:  python examples/vhdl_roundtrip.py
"""

import pathlib

from repro.core import ModuleSpec, RTModel, standard_operation
from repro.vhdl import (
    EXAMPLE_FIG1,
    Elaborator,
    check_subset,
    emit_model_vhdl,
    roundtrip_model,
)

OUT_DIR = pathlib.Path(__file__).resolve().parent


def run_paper_source() -> None:
    print("1. interpreting the paper's §2.7 VHDL source")
    report = check_subset(EXAMPLE_FIG1)
    print(f"   conformance: {report}")
    design = Elaborator(EXAMPLE_FIG1).elaborate("example").run()
    print(f"   R1 = {design.signal('r1_out').value}, "
          f"R2 = {design.signal('r2_out').value}")
    print(f"   delta cycles = {design.sim.stats.delta_cycles} "
          f"(CS_MAX * 6 = 42)")
    print()


def emit_and_reimport() -> None:
    print("2. emitting a Python-built model as subset VHDL")
    model = RTModel("demo", cs_max=6)
    model.register("X", init=7)
    model.register("Y", init=5)
    model.register("DIFF")
    model.register("PROD")
    model.bus("B1")
    model.bus("B2")
    model.module("ALU", ops=["ADD", "SUB"], latency=0)
    model.module(
        ModuleSpec(
            "MUL",
            latency=2,
            operations={"MULT": standard_operation("MULT")},
        )
    )
    model.compute("ALU", dest="DIFF", step=1, src1="X", bus1="B1",
                  src2="Y", bus2="B2", op="SUB")
    model.add_transfer("(X,B1,Y,B2,2,MUL,4,B1,PROD)")
    text = emit_model_vhdl(model)
    out_file = OUT_DIR / "demo_generated.vhd"
    out_file.write_text(text)
    print(f"   wrote {out_file.name} ({len(text.splitlines())} lines)")
    native = model.elaborate(trace=True).run()
    via_vhdl = roundtrip_model(model)
    print(f"   native:    DIFF={native['DIFF']}, PROD={native['PROD']}")
    print(f"   via VHDL:  DIFF={via_vhdl['DIFF']}, PROD={via_vhdl['PROD']}")
    assert {k: native[k] for k in via_vhdl} == via_vhdl
    print("   register-level agreement confirmed")
    print()

    vcd_file = OUT_DIR / "demo_waveform.vcd"
    with vcd_file.open("w") as handle:
        native.tracer.write_vcd(handle, design_name="demo")
    print(f"3. wrote {vcd_file.name} (open with any VCD viewer; DISC=z, "
          f"ILLEGAL=x)")


def main() -> None:
    run_paper_source()
    emit_and_reimport()


if __name__ == "__main__":
    main()
