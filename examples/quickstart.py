#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 1 example, end to end.

Builds the clock-free register-transfer model for the tuple

    (R1, B1, R2, B2, 5, ADD, 6, B1, R1)

-- "in control step 5, move R1 and R2 over buses B1/B2 into the
pipelined adder; in step 6, move the result over B1 back into R1" --
then simulates it, prints the phase-accurate trace, and verifies the
paper's delta-cycle cost model.

Run:  python examples/quickstart.py
"""

from repro.core import ModuleSpec, Phase, RTModel, analyze


def build_example() -> RTModel:
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))  # the paper's pipelined adder
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def main() -> None:
    model = build_example()
    print(model.describe())
    print()

    # The tuple expands mechanically into six TRANS instances (§2.7).
    print("TRANS process instances derived from the tuple:")
    for spec in model.trans_specs():
        print(f"  {spec.name:<16} active in cs{spec.step}.{spec.phase.vhdl_name}")
    print()

    # Static schedule check before simulating.
    report = analyze(model)
    print(f"static analysis: {report}")
    print()

    # Simulate with a full (step, phase) trace.
    sim = model.elaborate(trace=True).run()
    print("simulation finished:")
    print(f"  R1 = {sim['R1']}   (2 + 3, written in step 6)")
    print(f"  delta cycles = {sim.stats.delta_cycles} "
          f"(paper: CS_MAX * 6 = {model.cs_max * 6})")
    print(f"  physical time = {sim.sim.now.time} ns (the subset needs none)")
    print()

    print("bus/port activity around the transfer (DISC elsewhere):")
    tracer = sim.tracer
    for step in (5, 6):
        for phase in Phase:
            sample = tracer.at(step, phase)
            busy = {
                name: value
                for name, value in sample.values.items()
                if value >= 0 and name not in ("R1_out", "R2_out")
            }
            if busy:
                print(f"  cs{step}.{phase.vhdl_name}: {busy}")


if __name__ == "__main__":
    main()
