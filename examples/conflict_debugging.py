#!/usr/bin/env python3
"""Locating resource conflicts (paper §2.7).

"Simulation results allow easily to locate design errors leading to
resource conflicts: it would result to ILLEGAL values of resolved
signals in specific simulation cycles associated with a specific phase
of a specific control step."

This example schedules two transfers onto the same bus in the same
step, shows the static analysis predicting the collision *before*
simulation, then runs the model and shows the dynamic monitor
pinpointing the same (step, phase) -- plus how the ILLEGAL propagates
into the destination register through the sticky adder.

Run:  python examples/conflict_debugging.py
"""

from repro.core import ILLEGAL, ModuleSpec, RTModel, analyze, format_value


def build_buggy_model() -> RTModel:
    model = RTModel("buggy", cs_max=5)
    model.register("A", init=10)
    model.register("B", init=20)
    model.register("C", init=30)  # the colliding source
    model.register("SUM")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(A,B1,B,B2,2,ADD,3,B1,SUM)")
    # BUG: C is also put on B1 in step 2 (say, a scheduling slip).
    model.add_transfer("(C,B1,-,-,2,ADD,-,-,-)")
    return model


def main() -> None:
    model = build_buggy_model()
    print("schedule:")
    for transfer in model.transfers:
        print(f"   {transfer}")
    print()

    print("1. static analysis (before any simulation):")
    report = analyze(model)
    for conflict in report.conflicts:
        print(f"   predicted: {conflict}")
    print()

    print("2. simulation with the conflict monitor:")
    sim = model.elaborate(trace=True).run()
    for event in sim.conflicts:
        print(f"   observed:  {event}")
    print()

    print("3. consequence in the architecture:")
    print(f"   SUM = {format_value(sim['SUM'])}  "
          f"(the conflict reached the destination register)")
    assert sim["SUM"] == ILLEGAL
    print()

    print("4. the waveform around the collision (B1 holds ILLEGAL in cs2.rb):")
    print()
    table = sim.tracer.format_table(["B1", "B2", "ADD_in1", "ADD_out", "SUM_out"])
    for line in table.splitlines():
        if line.startswith(("cs.ph", "cs2", "cs3")):
            print("   " + line)
    print()
    print("fix: move C's transfer to another step or bus, re-run analyze().")


if __name__ == "__main__":
    main()
