#!/usr/bin/env python3
"""Comparing the three timing styles (paper §2.7's speed claim).

Runs the same computation in the three styles the paper discusses --
the clock-free control-step scheme, the conventional asynchronous-
handshake style, and fully clocked RTL -- all on the same simulation
kernel, and prints the cost profile of each.

Run:  python examples/timing_styles.py
"""

import time

from repro.clocked import elaborate_clocked, translate
from repro.core import ModuleSpec, RTModel
from repro.handshake import HandshakeNetwork
from repro.kernel import Simulator


def control_step_style(width: int, steps: int):
    model = RTModel("wide", cs_max=steps + 1)
    for lane in range(width):
        model.register(f"A{lane}", init=lane + 1)
        model.register(f"B{lane}", init=lane + 2)
        model.register(f"S{lane}")
        model.bus(f"BA{lane}")
        model.bus(f"BB{lane}")
        model.module(ModuleSpec(f"FU{lane}", latency=1))
        for step in range(1, steps + 1, 2):
            model.add_transfer(
                f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
                f"{step + 1},BA{lane},S{lane})"
            )
    sim = model.elaborate()
    t0 = time.perf_counter()
    sim.run()
    return model, time.perf_counter() - t0, sim.stats, sim.sim.now.time


def handshake_style(width: int, steps: int):
    net = HandshakeNetwork()
    tokens = (steps + 1) // 2
    for lane in range(width):
        net.source(f"a{lane}", [lane + 1] * tokens)
        net.source(f"b{lane}", [lane + 2] * tokens)
        net.op(f"fu{lane}", lambda x, y: x + y, f"a{lane}", f"b{lane}")
        net.sink(f"s{lane}", f"fu{lane}")
    sim = Simulator()
    net.build(sim)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0, sim.stats, sim.now.time


def main() -> None:
    width, steps = 8, 13
    print(f"workload: {width} parallel adders, {steps + 1} control steps\n")

    model, cs_wall, cs_stats, cs_time = control_step_style(width, steps)
    hs_wall, hs_stats, hs_time = handshake_style(width, steps)
    clocked = elaborate_clocked(translate(model))
    t0 = time.perf_counter()
    clocked.run()
    ck_wall = time.perf_counter() - t0
    ck_stats, ck_time = clocked.stats, clocked.sim.now.time

    rows = [
        ("control-step (paper)", cs_wall, cs_stats, cs_time),
        ("async handshake", hs_wall, hs_stats, hs_time),
        ("clocked RTL", ck_wall, ck_stats, ck_time),
    ]
    print(f"{'style':<22}{'wall[ms]':>9}{'deltas':>8}{'events':>8}"
          f"{'wakeups':>9}{'phys.time':>11}")
    for name, wall, stats, phys in rows:
        print(
            f"{name:<22}{wall * 1e3:>9.2f}{stats.delta_cycles:>8}"
            f"{stats.events:>8}{stats.process_resumes:>9}{phys:>9}ns"
        )
    print()
    print("observations (see EXPERIMENTS.md / E5 for the full study):")
    print(" * the control-step model's delta count is fixed at CS_MAX*6,")
    print("   independent of how many transfers share each step;")
    print(" * moving one value over one resource costs ~2 events under the")
    print("   static schedule vs ~5 under four-phase handshake signaling;")
    print(" * only the clocked model consumes physical simulation time.")


if __name__ == "__main__":
    main()
