#!/usr/bin/env python3
"""The IKS chip case study (paper §3, Fig. 3).

Recreates the paper's workflow on the inverse-kinematics chip:

1. build the Fig.-3 RT structure (register files, BusA/BusB, direct
   links, the three adders, the 2-stage pipelined multiplier, the
   CORDIC core);
2. translate the microprogram into register transfers automatically
   (the authors' C program, reimplemented in Python);
3. simulate the clock-free model;
4. verify bottom-up against the algorithmic level -- bit-exactly.

Also decodes the paper's own microcode example: store address 7 with
code maps opc1=20 / opc2=2.

Run:  python examples/iks_chip.py
"""

from repro.iks import (
    IKSConfig,
    build_chip,
    crosscheck,
    forward_kinematics,
    paper_addr7_instruction,
    paper_code_maps,
)
from repro.iks.chip import ACCUMULATORS
from repro.iks.flow import build_ik_model
from repro.microcode import MicrocodeTable, MicrocodeTranslator


def decode_paper_example() -> None:
    print("-- the paper's addr-7 microcode entry " + "-" * 30)
    model = build_chip(IKSConfig(cs_max=12))
    table = MicrocodeTable()
    table.add(paper_addr7_instruction())
    translator = MicrocodeTranslator(model, ACCUMULATORS)
    result = translator.translate(table, paper_code_maps())
    print("addr cycle opc1 opc2 | derived register transfers / unit ops")
    print("   7     1   20    2 |", "; ".join(result.paper_forms()))
    print()


def solve_targets() -> None:
    print("-- microcoded inverse kinematics on the chip " + "-" * 23)
    model, translation = build_ik_model(2.5, 1.0)
    print(
        f"chip: {len(model.registers)} registers, "
        f"{len(model.modules)} units (incl. bus-copy desugaring), "
        f"{len(model.transfers)} transfers over {model.cs_max} control steps"
    )
    print()
    print(f"{'target':>16} {'theta1':>9} {'theta2':>9} {'FK error':>9}  bit-exact")
    for px, py in [(2.5, 1.0), (1.0, 2.0), (-1.5, 2.0), (0.8, -1.2)]:
        run, ref = crosscheck(px, py)
        fx, fy = forward_kinematics(run.theta1_rad, run.theta2_rad)
        err = ((fx - px) ** 2 + (fy - py) ** 2) ** 0.5
        exact = (run.theta1, run.theta2) == (ref.theta1, ref.theta2)
        print(
            f"  ({px:+5.2f},{py:+5.2f}) {run.theta1_rad:>9.4f} "
            f"{run.theta2_rad:>9.4f} {err:>9.5f}  {exact}"
        )
        assert run.clean and exact
    print()
    print("every run agrees bit-for-bit with the algorithmic-level")
    print("reference (the paper's bottom-up verification scenario).")


def show_program_excerpt() -> None:
    print()
    print("-- translated microprogram (first 12 actions) " + "-" * 22)
    _, translation = build_ik_model(2.5, 1.0)
    for action in translation.actions[:12]:
        print(f"  {action}")
    print(f"  ... {len(translation.actions) - 12} more actions")


def extensions() -> None:
    print()
    print("-- extensions on the same chip " + "-" * 37)
    from repro.iks import fk_of_ik, forward_kinematics3, run_ik3_chip, solve_ik3

    # The on-chip consistency loop: FK(IK(p)) ~= p.
    ik, fk = fk_of_ik(2.5, 1.0)
    print(
        f"FK(IK(2.5, 1.0)) on chip = ({fk.x_real:.4f}, {fk.y_real:.4f}) "
        f"(forward-kinematics microprogram, CORDIC SIN/COS)"
    )

    # Three degrees of freedom: position + tool orientation.
    px, py, phi = 2.8, 1.2, 0.6
    run = run_ik3_chip(px, py, phi)
    ref = solve_ik3(px, py, phi)
    exact = (run.theta1, run.theta2, run.theta3) == (
        ref.theta1, ref.theta2, ref.theta3,
    )
    fx, fy, fphi = forward_kinematics3(
        run.theta1_rad, run.theta2_rad, run.theta3_rad
    )
    print(
        f"3-DOF ({px},{py})@phi={phi}: theta = ({run.theta1_rad:.4f}, "
        f"{run.theta2_rad:.4f}, {run.theta3_rad:.4f}), bit-exact={exact}"
    )
    print(f"  pose check: ({fx:.4f}, {fy:.4f}) @ {fphi:.4f}")

    # The automatic rescheduler beats the hand schedule.
    from repro.core import reschedule
    from repro.iks.flow import build_ik_model

    model, _ = build_ik_model(2.5, 1.0)
    result = reschedule(model)
    print(
        f"rescheduler: hand-written program {result.original_cs_max} -> "
        f"{result.new_cs_max} control steps, identical results"
    )


def main() -> None:
    decode_paper_example()
    solve_targets()
    show_program_excerpt()
    extensions()


if __name__ == "__main__":
    main()
