#!/usr/bin/env python3
"""High-level synthesis into the subset (paper §4).

"High level synthesis results are translated into our subset and can
then be simulated at a high level before the next synthesis steps
translate to a more concrete implementation."

This example runs the complete top-down flow on a small kernel:

    algorithmic source -> dataflow graph -> list schedule ->
    register/bus allocation -> clock-free RT model ->
    simulate + formally verify -> translate to clocked RTL ->
    emit synthesizable-style VHDL.

Run:  python examples/hls_flow.py
"""

from repro.clocked import check_equivalence, emit_clocked_vhdl, translate
from repro.hls import synthesize
from repro.verify import all_equivalent, check_program_vs_model

SOURCE = """
# squared distance plus a scaled cross term
dx   = x1 - x0
dy   = y1 - y0
dx2  = dx * dx
dy2  = dy * dy
d2   = dx2 + dy2
mix  = (dx * dy) >> 1
out  = d2 + mix
"""


def main() -> None:
    print("algorithmic source:")
    for line in SOURCE.strip().splitlines():
        print("   ", line)
    print()

    result = synthesize(SOURCE, resources={"ALU": 1, "MUL": 1, "SHIFT": 1})
    print(
        f"schedule: {len(result.dfg.op_nodes)} operations in "
        f"{result.schedule.makespan} control steps on "
        f"{sum(result.schedule.instances.values())} units "
        f"({result.allocation.temp_count} temp registers, "
        f"{result.allocation.bus_count} buses)"
    )
    for node in result.dfg.op_nodes:
        step = result.schedule.issue_step(node.ident)
        unit = "".join(map(str, result.schedule.binding[node.ident]))
        print(f"   cs{step:>2}: {node} on {unit} -> "
              f"{result.allocation.result_reg[node.ident]}")
    print()

    inputs = {"x0": 3, "x1": 10, "y0": 4, "y1": 8}
    outs = result.simulate(inputs)
    ref = result.reference(inputs)
    print(f"simulation on {inputs}:")
    for var in result.program.outputs:
        print(f"   {var} = {outs[var]}  (reference {ref[var]})")
    assert outs == ref
    print()

    outcomes = check_program_vs_model(
        result.program, result.model, result.output_regs
    )
    print("formal verification against the source program:")
    for outcome in outcomes:
        print(f"   {outcome}")
    assert all_equivalent(outcomes)
    print()

    translation = translate(result.model)
    report = check_equivalence(result.model, register_values=inputs)
    print(f"clocked translation: {report}")
    vhdl = emit_clocked_vhdl(translation)
    print(f"emitted {len(vhdl.splitlines())} lines of clocked VHDL "
          f"(first entity shown):")
    for line in vhdl.splitlines()[:12]:
        print("   " + line)


if __name__ == "__main__":
    main()
