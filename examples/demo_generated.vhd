-- generated from RT model 'demo'

entity ALU_UNIT is
  port (PH: in Phase;
        M_in1, M_in2: in Integer;
        M_op: in Integer;
        M_out: out Integer := DISC);
end ALU_UNIT;

architecture transfer of ALU_UNIT is
begin
  process
    variable V: Integer := DISC;
    variable FROZEN: Natural := 0;
  begin
    wait until PH = cm;
    if FROZEN = 1 then
      M_out <= ILLEGAL;
    else
      if M_in1 = ILLEGAL or M_in2 = ILLEGAL then
        V := ILLEGAL;
      elsif M_in1 = DISC and M_in2 = DISC then
        V := DISC;
      elsif M_in1 = DISC or M_in2 = DISC then
        V := ILLEGAL;
      else
        if M_op = DISC then
          V := (M_in1 + M_in2) mod 4294967296;
        elsif M_op = 0 then
          V := (M_in1 + M_in2) mod 4294967296;
        elsif M_op = 1 then
          V := (M_in1 - M_in2) mod 4294967296;
        else
          V := ILLEGAL;
        end if;
      end if;
      if V = ILLEGAL then
        FROZEN := 1;
      end if;
      M_out <= V;
    end if;
  end process;
end transfer;

entity MUL_UNIT is
  port (PH: in Phase;
        M_in1, M_in2: in Integer;
        M_out: out Integer := DISC);
end MUL_UNIT;

architecture transfer of MUL_UNIT is
begin
  process
    variable V: Integer := DISC;
    variable P0: Integer := DISC;
    variable P1: Integer := DISC;
    variable FROZEN: Natural := 0;
  begin
    wait until PH = cm;
    if FROZEN = 1 then
      M_out <= ILLEGAL;
    else
      M_out <= P1;
      if M_in1 = ILLEGAL or M_in2 = ILLEGAL then
        V := ILLEGAL;
      elsif M_in1 = DISC and M_in2 = DISC then
        V := DISC;
      elsif M_in1 = DISC or M_in2 = DISC then
        V := ILLEGAL;
      else
        V := (M_in1 * M_in2) mod 4294967296;
      end if;
      if V = ILLEGAL then
        FROZEN := 1;
      end if;
      P1 := P0;
      P0 := V;
    end if;
  end process;
end transfer;

entity demo is
end demo;

architecture transfer of demo is
  -- timing signals
  signal CS: Natural := 0;
  signal PH: Phase := cr;
  -- register ports
  signal X_in: resolved Integer := DISC;
  signal X_out: Integer := 7;
  signal Y_in: resolved Integer := DISC;
  signal Y_out: Integer := 5;
  signal DIFF_in: resolved Integer := DISC;
  signal DIFF_out: Integer := 0 - 1;
  signal PROD_in: resolved Integer := DISC;
  signal PROD_out: Integer := 0 - 1;
  -- module ports
  signal ALU_in1: resolved Integer := DISC;
  signal ALU_in2: resolved Integer := DISC;
  signal ALU_op: resolved Integer := DISC;
  signal ALU_out: Integer := DISC;
  signal MUL_in1: resolved Integer := DISC;
  signal MUL_in2: resolved Integer := DISC;
  signal MUL_out: Integer := DISC;
  -- buses
  signal B1: resolved Integer := DISC;
  signal B2: resolved Integer := DISC;
  -- operation-select constants (§3 extension)
  signal OPK1: Integer := 1;
begin
  -- registers
  X_proc: REG generic map (7) port map (PH, X_in, X_out);
  Y_proc: REG generic map (5) port map (PH, Y_in, Y_out);
  DIFF_proc: REG generic map (0 - 1) port map (PH, DIFF_in, DIFF_out);
  PROD_proc: REG generic map (0 - 1) port map (PH, PROD_in, PROD_out);
  -- modules
  ALU_proc: ALU_UNIT port map (PH, ALU_in1, ALU_in2, ALU_op, ALU_out);
  MUL_proc: MUL_UNIT port map (PH, MUL_in1, MUL_in2, MUL_out);
  -- transfers
  X_out_B1_1: TRANS generic map (1, ra) port map (CS, PH, X_out, B1);
  B1_ALU_in1_1: TRANS generic map (1, rb) port map (CS, PH, B1, ALU_in1);
  Y_out_B2_1: TRANS generic map (1, ra) port map (CS, PH, Y_out, B2);
  B2_ALU_in2_1: TRANS generic map (1, rb) port map (CS, PH, B2, ALU_in2);
  op_SUB_ALU_op_1: TRANS generic map (1, rb) port map (CS, PH, OPK1, ALU_op);
  ALU_out_B1_1: TRANS generic map (1, wa) port map (CS, PH, ALU_out, B1);
  B1_DIFF_in_1: TRANS generic map (1, wb) port map (CS, PH, B1, DIFF_in);
  X_out_B1_2: TRANS generic map (2, ra) port map (CS, PH, X_out, B1);
  B1_MUL_in1_2: TRANS generic map (2, rb) port map (CS, PH, B1, MUL_in1);
  Y_out_B2_2: TRANS generic map (2, ra) port map (CS, PH, Y_out, B2);
  B2_MUL_in2_2: TRANS generic map (2, rb) port map (CS, PH, B2, MUL_in2);
  MUL_out_B1_4: TRANS generic map (4, wa) port map (CS, PH, MUL_out, B1);
  B1_PROD_in_4: TRANS generic map (4, wb) port map (CS, PH, B1, PROD_in);
  -- controller
  CONTROL: CONTROLLER generic map (6) port map (CS, PH);
end transfer;
