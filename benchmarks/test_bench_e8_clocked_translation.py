"""E8 (§4): automatic translation of control steps to clocked RTL.

Reproduces: "The transformation into a usual synthesizable RT
description based on clock signals can be performed automatically" --
the decode-table translation, its per-step observational equivalence
with the clock-free model (the formal-correctness direction the paper
announces as ongoing work), and synthesizable-style VHDL emission.
Measures: translation cost, clocked-vs-clock-free simulation cost.
"""

import pytest

from repro.clocked import (
    check_equivalence,
    check_phase_accurate_equivalence,
    elaborate_clocked,
    emit_clocked_vhdl,
    simulate_cycles,
    simulate_phase_accurate,
    translate,
)
from repro.handshake import chain_rt_model
from repro.iks.flow import build_ik_model

from .conftest import fig1_model, wide_model


CORPUS = {
    "fig1": lambda: fig1_model(),
    "chain16": lambda: chain_rt_model(list(range(1, 17))),
    "wide8": lambda: wide_model(8, 9),
}


class TestTranslationReproduction:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_equivalence_over_corpus(self, name, report_lines):
        model = CORPUS[name]()
        report = check_equivalence(model)
        assert report.equivalent, str(report)
        report_lines.append(str(report))

    def test_equivalence_on_the_iks_chip(self, report_lines):
        model, _ = build_ik_model(2.5, 1.0)
        report = check_equivalence(model)
        assert report.equivalent, str(report)
        report_lines.append(str(report))

    def test_both_control_step_implementations(self, report_lines):
        """'There are different ways to implement control steps' (§2.2):
        the dense mapping (1 cycle/step, long combinational paths) and
        the phase-accurate mapping (6 cycles/step, single-hop paths)
        are both equivalent to the clock-free model."""
        model = CORPUS["fig1"]()
        dense = check_equivalence(model)
        accurate = check_phase_accurate_equivalence(model)
        assert dense.equivalent and accurate.equivalent
        run = simulate_phase_accurate(model)
        report_lines.append(
            f"dense mapping: {model.cs_max} clock cycles/run; "
            f"phase-accurate: {run.clock_cycles} "
            f"(6x, but single-hop combinational paths)"
        )

    def test_phase_accurate_equivalence_on_iks(self):
        model, _ = build_ik_model(1.0, 2.0)
        report = check_phase_accurate_equivalence(model)
        assert report.equivalent, str(report)

    def test_emitted_vhdl_is_synthesizable_style(self):
        text = emit_clocked_vhdl(translate(fig1_model()))
        assert "rising_edge(clk)" in text
        assert "case state is" in text

    def test_clock_free_needs_no_physical_time_clocked_does(self, report_lines):
        model = CORPUS["chain16"]()
        rt = model.elaborate().run()
        ck = elaborate_clocked(translate(model)).run()
        assert rt.sim.now.time == 0
        assert ck.sim.now.time == model.cs_max * 10  # 10 ns per cycle
        report_lines.append(
            f"clock-free: 0 ns, {rt.stats.delta_cycles} deltas; "
            f"clocked: {ck.sim.now.time} ns, "
            f"{ck.stats.process_resumes} process wakeups"
        )

    def test_clocked_wakes_every_register_every_cycle(self):
        # The cost asymmetry the subset avoids: idle registers wake on
        # every clock edge.
        model = CORPUS["chain16"]()
        ck = elaborate_clocked(translate(model)).run()
        n_regs = len(model.registers)
        # fsm + clkgen + registers + pipes all wake per edge.
        assert ck.stats.process_resumes >= model.cs_max * n_regs


class TestTranslationBenchmarks:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_bench_translate(self, benchmark, name):
        model = CORPUS[name]()
        translation = benchmark(translate, model)
        assert translation.cycles == model.cs_max

    def test_bench_cycle_simulation(self, benchmark):
        translation = translate(CORPUS["wide8"]())
        run = benchmark(simulate_cycles, translation)
        assert run.cycles == translation.cycles

    def test_bench_event_driven_clocked_simulation(self, benchmark):
        model = CORPUS["wide8"]()
        translation = translate(model)

        def run():
            return elaborate_clocked(translation).run()

        handle = benchmark(run)
        benchmark.extra_info["resumes"] = handle.stats.process_resumes

    def test_bench_full_equivalence_check(self, benchmark):
        model = CORPUS["chain16"]()
        report = benchmark(check_equivalence, model)
        assert report.equivalent
