"""E11 (ablation): why six phases?

The paper's phase partition gives every transfer hop its own delta
cycle.  This study compares it against the obvious cheaper
alternative -- a merged four-phase scheme where values move
register -> module port and module -> register directly:

* cost: the merged scheme spends 4 instead of 6 delta cycles per step
  (-33%), with identical final register values on clean schedules;
* diagnosability: the bus disappears as an observable resource --
  bus collisions and port collisions become indistinguishable, and
  the per-hop (step, phase) localization of §2.7 degrades.

The numbers quantify the design decision the paper made implicitly.
"""

import pytest

from repro.core import ILLEGAL, ModuleSpec, RTModel
from repro.core.ablation import (
    MERGED_SEQUENCE,
    elaborate_merged,
    localization_classes,
)

from .conftest import fig1_model, wide_model


def conflict_model():
    """A bus collision plus an operand-pairing error, for the
    localization comparison."""
    m = RTModel("conf", cs_max=6)
    for name, init in (("A", 1), ("B", 2), ("C", 3)):
        m.register(name, init=init)
    m.register("S1")
    m.register("S2")
    m.bus("B1")
    m.bus("B2")
    m.bus("B3")
    m.module(ModuleSpec("FU1", latency=1))
    m.module(ModuleSpec("FU2", latency=1))
    m.add_transfer("(A,B1,B,B2,2,FU1,3,B1,S1)")
    m.add_transfer("(C,B1,-,-,2,FU1,-,-,-)")  # bus collision on B1
    m.add_transfer("(A,B3,-,-,4,FU2,-,-,-)")  # half-fed module
    m.add_transfer("(-,-,-,-,-,FU2,5,B3,S2)")
    return m


class TestAblationReproduction:
    def test_merged_scheme_computes_the_same_results(self):
        model = fig1_model()
        six = model.elaborate().run()
        merged = elaborate_merged(model).run()
        assert six.registers == merged.registers

    def test_merged_scheme_saves_a_third_of_the_deltas(self, report_lines):
        model = fig1_model()
        six = model.elaborate().run()
        merged = elaborate_merged(model).run()
        assert six.stats.delta_cycles == model.cs_max * 6
        assert merged.stats.delta_cycles == model.cs_max * len(MERGED_SEQUENCE)
        report_lines.append(
            f"six-phase: {six.stats.delta_cycles} deltas; merged "
            f"four-phase: {merged.stats.delta_cycles} deltas (-33%)"
        )

    def test_wide_model_agrees_under_both_schemes(self):
        model = wide_model(6, 9)
        six = model.elaborate().run()
        merged = elaborate_merged(model).run()
        assert six.registers == merged.registers

    def test_localization_precision_degrades(self, report_lines):
        model = conflict_model()
        six = model.elaborate().run()
        merged = elaborate_merged(model).run()
        six_classes = localization_classes(six.conflicts)
        merged_classes = localization_classes(merged.conflicts)
        report_lines.append(f"six-phase conflict classes:  {sorted(six_classes)}")
        report_lines.append(f"merged conflict classes:     {sorted(merged_classes)}")
        # Six phases separate bus-level from port-level conflicts...
        assert any(kind == "bus" for kind, _ in six_classes)
        # ...the merged scheme cannot: no bus observation exists.
        assert not any(kind == "bus" for kind, _ in merged_classes)
        assert len(merged_classes) < len(six_classes)

    def test_both_schemes_still_detect_the_error(self):
        # The merged scheme is *less precise*, not blind: the poisoned
        # destination register shows ILLEGAL either way.
        model = conflict_model()
        assert model.elaborate().run()["S1"] == ILLEGAL
        assert elaborate_merged(model).run()["S1"] == ILLEGAL


class TestAblationBenchmarks:
    @pytest.mark.parametrize("scheme", ["six-phase", "merged"])
    def test_bench_scheme_cost(self, benchmark, scheme):
        model = wide_model(8, 15)
        if scheme == "six-phase":

            def run():
                return model.elaborate().run().stats

        else:

            def run():
                return elaborate_merged(model).run().stats

        stats = benchmark(run)
        benchmark.extra_info["delta_cycles"] = stats.delta_cycles
