"""E6 (Fig. 3): the IKS chip at the abstract register-transfer level.

Reproduces: the §3 case study -- the Fig.-3 RT structure (register
files R/J/M, accumulators P/X/Y/Z, r/zang, BusA/BusB plus direct
links desugared per the paper, non-pipelined adders, the 2-stage
pipelined multiplier, the CORDIC core), driven by a microprogram and
verified bottom-up against the algorithmic level: the RT simulation
must agree *bit-exactly* with the fixed-point IK reference.
Measures: chip build+translate time and full-program simulation time.
"""

import math
import time

import pytest

from repro.core import analyze
from repro.iks import (
    IKSConfig,
    crosscheck,
    forward_kinematics,
    run_ik_chip,
)
from repro.iks.flow import build_ik_model
from repro.observe import JsonlRecorder

TARGETS = [(2.5, 1.0), (1.0, 2.0), (-1.5, 2.0), (0.8, -1.2)]


class TestIKSReproduction:
    @pytest.mark.parametrize("px,py", TARGETS)
    def test_bit_exact_against_algorithmic_level(self, px, py):
        run, ref = crosscheck(px, py)
        assert run.clean
        assert (run.theta1, run.theta2) == (ref.theta1, ref.theta2)

    def test_angles_are_kinematically_correct(self, report_lines):
        for px, py in TARGETS:
            run = run_ik_chip(px, py)
            fx, fy = forward_kinematics(run.theta1_rad, run.theta2_rad)
            err = math.hypot(fx - px, fy - py)
            report_lines.append(
                f"target ({px:+.2f},{py:+.2f}) -> theta1={run.theta1_rad:+.4f} "
                f"theta2={run.theta2_rad:+.4f}  FK error {err:.5f}"
            )
            assert err < 0.02

    def test_schedule_is_statically_clean(self):
        model, _ = build_ik_model(2.5, 1.0)
        assert analyze(model).clean

    def test_resource_inventory_matches_fig3(self, report_lines):
        model, translation = build_ik_model(2.5, 1.0)
        units = set(model.modules) - {
            m for m in model.modules if m.startswith("CP_")
        }
        assert units == {"MULT", "X_ADD", "Y_ADD", "Z_ADD", "CORDIC"}
        direct = [b for b in model.buses.values() if b.direct_link]
        shared = [b for b in model.buses.values() if not b.direct_link]
        assert {b.name for b in shared} == {"BusA", "BusB"}
        assert direct  # the paper's direct links exist as extra buses
        report_lines.append(
            f"{len(model.registers)} registers, 2 shared buses, "
            f"{len(direct)} direct-link buses, "
            f"{len(units)} functional units, "
            f"{len(model.transfers)} transfers"
        )

    def test_delta_budget_matches_cost_model(self):
        cfg = IKSConfig()
        run = run_ik_chip(2.5, 1.0, cfg)
        assert run.simulation.stats.delta_cycles == cfg.cs_max * 6

    def test_fk_of_ik_closes_on_chip(self, report_lines):
        """Extension: the FK microprogram (CORDIC SIN/COS) feeds the
        IK result back through the chip and lands on the target."""
        from repro.iks import fk_of_ik

        for px, py in [(2.5, 1.0), (1.0, 2.0)]:
            ik, fk = fk_of_ik(px, py)
            err = math.hypot(fk.x_real - px, fk.y_real - py)
            report_lines.append(
                f"FK(IK({px},{py})) = ({fk.x_real:.4f},{fk.y_real:.4f}) "
                f"err={err:.4f}"
            )
            assert err < 0.02

    def test_three_dof_composition(self, report_lines):
        """Extension: position + orientation via prologue + unmodified
        IK body + epilogue, bit-exact against its reference."""
        from repro.iks import forward_kinematics3, run_ik3_chip, solve_ik3

        px, py, phi = 2.8, 1.2, 0.6
        run = run_ik3_chip(px, py, phi)
        ref = solve_ik3(px, py, phi)
        assert run.clean
        assert (run.theta1, run.theta2, run.theta3) == (
            ref.theta1, ref.theta2, ref.theta3,
        )
        fx, fy, fphi = forward_kinematics3(
            run.theta1_rad, run.theta2_rad, run.theta3_rad
        )
        report_lines.append(
            f"3-DOF ({px},{py})@{phi}: theta=({run.theta1_rad:.4f},"
            f"{run.theta2_rad:.4f},{run.theta3_rad:.4f}), "
            f"FK3 -> ({fx:.4f},{fy:.4f})@{fphi:.4f}, bit-exact"
        )


class TestCompiledBackendOnChip:
    """The compiled control-step backend on the paper's big model: same
    observable run as the event kernel, a fraction of the scheduler
    work (one fused dispatch per phase instead of one process wakeup
    per active component)."""

    @pytest.mark.parametrize("px,py", TARGETS)
    def test_bit_identical_to_event_kernel(self, px, py):
        run_ev = run_ik_chip(px, py, backend="event")
        run_co = run_ik_chip(px, py, backend="compiled")
        assert run_co.simulation.registers == run_ev.simulation.registers
        assert [
            (e.signal, e.at, e.sources) for e in run_co.simulation.conflicts
        ] == [
            (e.signal, e.at, e.sources) for e in run_ev.simulation.conflicts
        ]
        assert (
            run_co.simulation.stats.delta_cycles
            == run_ev.simulation.stats.delta_cycles
        )
        assert (run_co.theta1, run_co.theta2) == (run_ev.theta1, run_ev.theta2)

    def test_compiled_reduces_wakeups(self, report_lines):
        model, _ = build_ik_model(2.5, 1.0)
        ev = model.elaborate()
        t0 = time.perf_counter()
        ev.run()
        ev_wall = time.perf_counter() - t0
        co = model.elaborate(backend="compiled")
        t0 = time.perf_counter()
        co.run()
        co_wall = time.perf_counter() - t0
        assert co.registers == ev.registers
        assert co.stats.delta_cycles == ev.stats.delta_cycles
        ratio = ev.stats.process_resumes / co.stats.process_resumes
        report_lines.append(
            f"IKS chip: event {ev.stats.process_resumes} wakeups / "
            f"{ev_wall * 1e3:.1f} ms, compiled "
            f"{co.stats.process_resumes} dispatches / "
            f"{co_wall * 1e3:.1f} ms ({ratio:.1f}x fewer wakeups, "
            f"{ev_wall / co_wall:.1f}x wall)"
        )
        assert ratio >= 3.0


class TestObserverOverhead:
    """The observe= seam on the chip-scale model: free when absent,
    measured (not hidden) when recording."""

    REPEATS = 7

    @classmethod
    def _min_wall(cls, elaborate):
        best = float("inf")
        for _ in range(cls.REPEATS):
            sim = elaborate()
            t0 = time.perf_counter()
            sim.run()
            best = min(best, time.perf_counter() - t0)
        return best

    @classmethod
    def _min_wall_pair(cls, elaborate_a, elaborate_b):
        """Interleaved min-of-N for two variants, so slow machine
        phases (GC, frequency scaling) hit both sides equally."""
        best_a = best_b = float("inf")
        for _ in range(cls.REPEATS):
            for which, elaborate in ((0, elaborate_a), (1, elaborate_b)):
                sim = elaborate()
                t0 = time.perf_counter()
                sim.run()
                wall = time.perf_counter() - t0
                if which == 0:
                    best_a = min(best_a, wall)
                else:
                    best_b = min(best_b, wall)
        return best_a, best_b

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_disabled_path_is_structurally_free(self, backend):
        """observe=None must install nothing: the run is identical,
        kernel counter for kernel counter, to an elaboration that never
        mentioned the probe seam.  This is the deterministic part of
        the zero-cost claim -- any probe machinery leaking onto the
        disabled path would change process_resumes or events."""
        model, _ = build_ik_model(2.5, 1.0)
        plain = model.elaborate(backend=backend).run()
        off = model.elaborate(backend=backend, observe=None).run()
        assert off._probe is None
        assert off.registers == plain.registers
        assert off.stats.delta_cycles == plain.stats.delta_cycles
        assert off.stats.process_resumes == plain.stats.process_resumes
        assert off.stats.events == plain.stats.events

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_disabled_path_under_five_percent(self, backend, report_lines):
        """The wall-clock side of the claim: explicitly passing
        observe=None costs < 5% over omitting the keyword (min-of-N
        bounds scheduler noise)."""
        model, _ = build_ik_model(2.5, 1.0)
        # The runs are ~3 ms, so a single measurement round can still
        # be perturbed by suite-wide load; re-measure before failing.
        overhead = float("inf")
        for _ in range(3):
            base, off = self._min_wall_pair(
                lambda: model.elaborate(backend=backend),
                lambda: model.elaborate(backend=backend, observe=None),
            )
            overhead = min(overhead, off / base - 1.0)
            if overhead < 0.05:
                break
        report_lines.append(
            f"{backend}: no kwarg {base * 1e3:.2f} ms, observe=None "
            f"{off * 1e3:.2f} ms ({overhead * 100.0:+.1f}%)"
        )
        assert overhead < 0.05

    def test_jsonl_probe_cost_measured(self, report_lines, tmp_path):
        """Recording is allowed to cost -- the point is to know how
        much.  Full JSONL capture of the IKS run, per backend."""
        model, _ = build_ik_model(2.5, 1.0)
        for backend in ("event", "compiled"):
            path = tmp_path / f"e6-{backend}.jsonl"
            base, probed = self._min_wall_pair(
                lambda: model.elaborate(backend=backend),
                lambda: model.elaborate(
                    backend=backend, observe=JsonlRecorder(str(path))
                ),
            )
            report_lines.append(
                f"{backend}: bare {base * 1e3:.2f} ms, JSONL probe "
                f"{probed * 1e3:.2f} ms ({probed / base:.2f}x)"
            )
            assert path.exists()

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_disabled_monitor_under_five_percent(
        self, backend, report_lines
    ):
        """Satellite of the monitor PR: with the assertion subsystem
        loaded and a property set compiled, NOT attaching the monitor
        must stay under 5% wall over the pre-monitor observer
        baseline (observe=None, same seam PR 2 measured)."""
        from repro.observe import AssertionMonitor, default_properties

        model, _ = build_ik_model(2.5, 1.0)
        # Build the monitor up front: property compilation is paid at
        # construction, so the disabled path carries only whatever the
        # elaborate/run seam itself leaks -- which must be nothing.
        AssertionMonitor(default_properties(model))
        overhead = float("inf")
        for _ in range(3):
            base, off = self._min_wall_pair(
                lambda: model.elaborate(backend=backend),
                lambda: model.elaborate(backend=backend, observe=None),
            )
            overhead = min(overhead, off / base - 1.0)
            if overhead < 0.05:
                break
        report_lines.append(
            f"{backend}: observer baseline {base * 1e3:.2f} ms, "
            f"monitors loaded but disabled {off * 1e3:.2f} ms "
            f"({overhead * 100.0:+.1f}%)"
        )
        assert overhead < 0.05

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_disabled_coverage_is_structurally_free(self, backend):
        """Satellite of the coverage PR: with the coverage engine and
        metrics registry imported (and a CoverageModel derived for the
        chip), NOT attaching a CoverageProbe must leave the run
        identical, kernel counter for kernel counter, to one that never
        heard of coverage.  Metrics hooks fire after run() returns, so
        they cannot perturb the kernel counters either."""
        from repro.observe import CoverageModel
        from repro.engine.plan import lower

        model, _ = build_ik_model(2.5, 1.0)
        # Pay universe derivation up front, like monitor compilation.
        CoverageModel.from_plan(lower(model))
        plain = model.elaborate(backend=backend).run()
        off = model.elaborate(backend=backend, observe=None).run()
        assert off._probe is None
        assert off.registers == plain.registers
        assert off.stats.delta_cycles == plain.stats.delta_cycles
        assert off.stats.process_resumes == plain.stats.process_resumes
        assert off.stats.events == plain.stats.events

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_disabled_coverage_under_five_percent(
        self, backend, report_lines
    ):
        """Wall-clock side of the coverage/metrics zero-cost claim:
        with the observability layer loaded, the uninstrumented run
        stays under 5% over the bare baseline."""
        from repro.observe import CoverageModel
        from repro.engine.plan import lower

        model, _ = build_ik_model(2.5, 1.0)
        CoverageModel.from_plan(lower(model))
        overhead = float("inf")
        for _ in range(3):
            base, off = self._min_wall_pair(
                lambda: model.elaborate(backend=backend),
                lambda: model.elaborate(backend=backend, observe=None),
            )
            overhead = min(overhead, off / base - 1.0)
            if overhead < 0.05:
                break
        report_lines.append(
            f"{backend}: bare {base * 1e3:.2f} ms, coverage loaded but "
            f"disabled {off * 1e3:.2f} ms ({overhead * 100.0:+.1f}%)"
        )
        assert overhead < 0.05

    def test_coverage_probe_cost_measured(self, report_lines):
        """Enabling structural coverage is allowed to cost -- measure
        it.  Full-universe collection over the IKS run, per backend,
        against the bare run; the report itself is sanity-checked so
        the measured run did real work."""
        from repro.observe import CoverageProbe

        model, _ = build_ik_model(2.5, 1.0)
        for backend in ("event", "compiled"):
            probe = CoverageProbe()
            base, covered = self._min_wall_pair(
                lambda: model.elaborate(backend=backend),
                lambda: model.elaborate(backend=backend, observe=probe),
            )
            report = probe.report
            assert report is not None and report.hit_count > 0
            report_lines.append(
                f"{backend}: bare {base * 1e3:.2f} ms, coverage probe "
                f"{covered * 1e3:.2f} ms ({covered / base:.2f}x, "
                f"{report.hit_count}/{report.point_count} points)"
            )

    def test_span_tracer_cost_measured(self, report_lines):
        """Span tracing cost on the chip, per backend: one step span
        per control step plus six phase spans each."""
        from repro.observe import SpanTracer

        model, _ = build_ik_model(2.5, 1.0)
        for backend in ("event", "compiled"):
            tracer = SpanTracer()
            base, traced = self._min_wall_pair(
                lambda: model.elaborate(backend=backend),
                lambda: model.elaborate(backend=backend, observe=tracer),
            )
            spans = len(tracer.spans)
            assert spans > 0
            report_lines.append(
                f"{backend}: bare {base * 1e3:.2f} ms, span tracer "
                f"{traced * 1e3:.2f} ms ({traced / base:.2f}x, "
                f"{spans} spans)"
            )

    def test_monitor_cost_measured(self, report_lines):
        """Enabling the monitor is allowed to cost -- measure it.  The
        default property set (never_illegal + no_conflicts) over the
        full IKS run, per backend, against the bare run."""
        from repro.observe import AssertionMonitor, default_properties

        model, _ = build_ik_model(2.5, 1.0)
        for backend in ("event", "compiled"):
            monitor = AssertionMonitor(default_properties(model))
            base, monitored = self._min_wall_pair(
                lambda: model.elaborate(backend=backend),
                lambda: model.elaborate(backend=backend, observe=monitor),
            )
            assert monitor.report is not None and monitor.report.ok
            report_lines.append(
                f"{backend}: bare {base * 1e3:.2f} ms, monitored "
                f"{monitored * 1e3:.2f} ms ({monitored / base:.2f}x, "
                f"{monitor.report.cycles} cycles checked)"
            )


class TestIKSBenchmarks:
    def test_bench_full_chip_run(self, benchmark):
        def run():
            return run_ik_chip(2.5, 1.0)

        result = benchmark(run)
        benchmark.extra_info["delta_cycles"] = (
            result.simulation.stats.delta_cycles
        )
        assert result.clean

    def test_bench_build_and_translate(self, benchmark):
        def build():
            return build_ik_model(2.5, 1.0)

        model, translation = benchmark(build)
        benchmark.extra_info["transfers"] = len(model.transfers)

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_bench_simulation_only(self, benchmark, backend):
        model, _ = build_ik_model(2.5, 1.0)

        def run():
            return model.elaborate(backend=backend).run()

        sim = benchmark(run)
        benchmark.extra_info["resumes"] = sim.stats.process_resumes
        assert sim.clean

    @pytest.mark.parametrize(
        "probe", ["none", "jsonl", "monitor", "coverage", "tracer"]
    )
    def test_bench_observer_overhead(self, benchmark, tmp_path, probe):
        """Satellite of the observability PRs: no-probe, JSONL-probe,
        assertion-monitor, coverage-probe and span-tracer runs side by
        side in the benchmark table."""
        from repro.observe import (
            AssertionMonitor,
            CoverageProbe,
            SpanTracer,
            default_properties,
        )

        model, _ = build_ik_model(2.5, 1.0)
        path = tmp_path / "bench.jsonl"

        def make_probe():
            if probe == "jsonl":
                return JsonlRecorder(str(path))
            if probe == "monitor":
                return AssertionMonitor(default_properties(model))
            if probe == "coverage":
                return CoverageProbe()
            if probe == "tracer":
                return SpanTracer()
            return None

        def run():
            return model.elaborate(
                backend="compiled", observe=make_probe()
            ).run()

        sim = benchmark(run)
        assert sim.clean
