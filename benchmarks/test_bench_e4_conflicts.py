"""E4 (§2.7): conflict localization.

Reproduces: "simulation results allow easily to locate design errors
leading to resource conflicts: it would result to ILLEGAL values of
resolved signals in specific simulation cycles associated with a
specific phase of a specific control step" -- injected conflicts are
observed at exactly the predicted (step, phase), and the static
analysis predicts the same locations without simulating.
Measures: cost of dynamic detection (simulate + monitor) vs static
prediction over models with many injected conflicts.
"""

import random

import pytest

from repro.core import (
    ILLEGAL,
    ModuleSpec,
    Phase,
    RTModel,
    StepPhase,
    analyze,
)

from .conftest import fig1_model


def conflicted_model(n_lanes: int, conflict_steps: list[int]) -> RTModel:
    """Independent adder lanes plus deliberate bus collisions."""
    model = RTModel(f"conflicts_{n_lanes}", cs_max=2 * n_lanes + 2)
    model.register("X", init=99)
    for lane in range(n_lanes):
        model.register(f"A{lane}", init=lane + 1)
        model.register(f"B{lane}", init=lane + 2)
        model.register(f"S{lane}")
        model.bus(f"BA{lane}")
        model.bus(f"BB{lane}")
        model.module(ModuleSpec(f"FU{lane}", latency=1))
        step = 2 * lane + 1
        model.add_transfer(
            f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
            f"{step + 1},BA{lane},S{lane})"
        )
    for step in conflict_steps:
        lane = (step - 1) // 2
        # Second source onto the lane's read bus in the same step.
        model.add_transfer(f"(X,BA{lane},-,-,{step},FU{lane},-,-,-)")
    return model


class TestConflictReproduction:
    def test_clean_model_has_no_conflicts(self):
        sim = fig1_model().elaborate().run()
        assert sim.clean
        assert analyze(fig1_model()).clean

    def test_injected_conflict_observed_at_predicted_point(self, report_lines):
        model = conflicted_model(4, conflict_steps=[3])
        predicted = {
            (c.sink, c.observed_at) for c in analyze(model).conflicts
        }
        sim = model.elaborate().run()
        observed = {(c.signal, c.at) for c in sim.conflicts}
        # The bus collision itself: statically predicted, dynamically seen.
        assert ("BA1", StepPhase(3, Phase.RB)) in predicted
        assert ("BA1", StepPhase(3, Phase.RB)) in observed
        report_lines.append(
            "bus collision in cs3.ra -> ILLEGAL on BA1 observed at cs3.rb "
            "(predicted and observed)"
        )

    def test_every_dynamic_first_observation_is_predicted(self):
        model = conflicted_model(6, conflict_steps=[1, 5, 9])
        predicted = {
            (c.sink, c.observed_at) for c in analyze(model).conflicts
        }
        sim = model.elaborate().run()
        # The *earliest* conflict per signal must be a predicted point;
        # later ILLEGALs are downstream propagation.
        firsts = {}
        for event in sim.conflicts:
            firsts.setdefault(event.signal, event.at)
        bus_firsts = {
            (sig, at) for sig, at in firsts.items() if sig.startswith("BA")
        }
        assert bus_firsts <= predicted

    def test_illegal_propagates_to_destination_register(self):
        model = conflicted_model(3, conflict_steps=[3])
        sim = model.elaborate().run()
        assert sim["S1"] == ILLEGAL  # poisoned lane
        assert sim["S0"] != ILLEGAL  # untouched lanes stay clean
        assert sim["S2"] != ILLEGAL

    def test_conflict_sources_are_named(self):
        model = conflicted_model(2, conflict_steps=[1])
        sim = model.elaborate().run()
        event = next(c for c in sim.conflicts if c.signal == "BA0")
        owners = {owner for owner, _ in event.sources}
        assert owners == {"A0_out_BA0_1", "X_out_BA0_1"}


class TestCompiledBackendParity:
    """The compiled backend must tell the same conflict story: same
    signals, same (CS, PH) locations, same named sources."""

    @pytest.mark.parametrize(
        "lanes,steps", [(2, [1]), (4, [3]), (6, [1, 5, 9])]
    )
    def test_conflicts_bit_identical(self, lanes, steps):
        model = conflicted_model(lanes, conflict_steps=steps)
        ev = model.elaborate().run()
        co = model.elaborate(backend="compiled").run()
        assert co.registers == ev.registers
        assert [
            (e.signal, e.at, e.sources) for e in co.conflicts
        ] == [
            (e.signal, e.at, e.sources) for e in ev.conflicts
        ]
        assert not co.clean


class TestConflictBenchmarks:
    @pytest.mark.parametrize("lanes", [4, 16])
    def test_bench_static_analysis(self, benchmark, lanes):
        model = conflicted_model(lanes, conflict_steps=[1, 5])
        report = benchmark(analyze, model)
        benchmark.extra_info["predicted"] = len(report.conflicts)
        assert not report.clean

    @pytest.mark.parametrize("lanes", [4, 16])
    def test_bench_dynamic_detection(self, benchmark, lanes):
        model = conflicted_model(lanes, conflict_steps=[1, 5])

        def run():
            return model.elaborate().run()

        sim = benchmark(run)
        benchmark.extra_info["observed"] = len(sim.conflicts)
        assert sim.conflicts

    def test_bench_detection_overhead_on_clean_model(self, benchmark):
        # Monitoring costs nothing extra when nothing goes wrong.
        model = conflicted_model(8, conflict_steps=[])

        def run():
            return model.elaborate().run()

        sim = benchmark(run)
        assert sim.clean
