"""Shared fixtures and model factories for the benchmark harness.

Every experiment of DESIGN.md §3 has one module here; each both
*checks* the reproduced result (assertions on who-wins / exact values)
and *measures* it (pytest-benchmark timings, kernel statistics in
``extra_info``).
"""

from __future__ import annotations

import pytest

from repro.core import ModuleSpec, RTModel


def fig1_model(cs_max: int = 7, r1: int = 2, r2: int = 3) -> RTModel:
    """The paper's Fig. 1 example."""
    model = RTModel("example", cs_max=cs_max)
    model.register("R1", init=r1)
    model.register("R2", init=r2)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def wide_model(width: int, steps: int) -> RTModel:
    """``width`` independent adders all busy in every control step.

    The workload that amortizes the six delta cycles per step over
    many concurrent transfers (the regime the paper's speed claim is
    about).
    """
    model = RTModel(f"wide_{width}x{steps}", cs_max=steps + 1)
    model.module_count = width  # type: ignore[attr-defined]
    for lane in range(width):
        model.register(f"A{lane}", init=lane + 1)
        model.register(f"B{lane}", init=2 * lane + 1)
        model.register(f"S{lane}")
        model.bus(f"BA{lane}")
        model.bus(f"BB{lane}")
        model.module(ModuleSpec(f"FU{lane}", latency=1))
    for step in range(1, steps + 1, 2):
        for lane in range(width):
            model.add_transfer(
                f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
                f"{step + 1},BA{lane},S{lane})"
            )
    return model


@pytest.fixture
def report_lines(request):
    """Collects human-readable result lines and prints them at teardown
    so `pytest benchmarks -s` shows the paper-style tables."""
    lines: list[str] = []
    yield lines
    if lines:
        header = f"== {request.node.name} =="
        print("\n" + header)
        for line in lines:
            print("  " + line)
