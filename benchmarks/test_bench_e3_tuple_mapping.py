"""E3 (§2.7): the bidirectional tuple <-> TRANS-process mapping.

Reproduces: the paper's three derived tuples and six derived TRANS
instances for Fig. 1, and the claim that the mappings are mutually
inverse ("vice versa, if we know the transfer process, the tuples can
be easily constructed").
Measures: mapping throughput over synthetic schedules of growing size.
"""

import pytest

from repro.core import (
    ModuleSpec,
    RegisterTransfer,
    RTModel,
    expand_all,
    from_trans_specs,
    to_trans_specs,
)
from repro.verify import check_model_roundtrip

from .conftest import fig1_model


def synthetic_schedule(n_transfers: int) -> list[RegisterTransfer]:
    """A conflict-free schedule with one complete tuple per step pair."""
    transfers = []
    for i in range(n_transfers):
        step = 2 * i + 1
        transfers.append(
            RegisterTransfer(
                src1=f"A{i % 7}",
                bus1=f"BA{i % 3}",
                src2=f"B{i % 5}",
                bus2=f"BB{i % 3}",
                read_step=step,
                module=f"FU{i % 4}",
                write_step=step + 1,
                write_bus=f"BA{i % 3}",
                dest=f"A{i % 7}",
            )
        )
    return transfers


class TestMappingReproduction:
    def test_fig1_derives_six_instances(self, report_lines):
        model = fig1_model()
        specs = model.trans_specs()
        names = sorted(s.name for s in specs)
        assert names == sorted(
            [
                "R1_out_B1_5",
                "B1_ADD_in1_5",
                "R2_out_B2_5",
                "B2_ADD_in2_5",
                "ADD_out_B1_6",
                "B1_R1_in_6",
            ]
        )
        report_lines.append("tuple -> " + ", ".join(names))

    def test_inverse_produces_paper_partial_tuples(self, report_lines):
        specs = to_trans_specs(RegisterTransfer.parse("(R1,B1,R2,B2,5,ADD,6,B1,R1)"))
        partials = sorted(map(str, from_trans_specs(specs)))
        assert partials == [
            "(-,-,-,-,-,ADD,6,B1,R1)",
            "(R1,B1,R2,B2,5,ADD,-,-,-)",
        ]
        report_lines.extend("processes -> " + p for p in partials)

    def test_roundtrip_is_identity_on_fig1(self):
        assert check_model_roundtrip(fig1_model()).ok

    @pytest.mark.parametrize("n", [10, 100])
    def test_roundtrip_is_identity_on_synthetic(self, n):
        transfers = synthetic_schedule(n)
        specs = expand_all(transfers)
        back = from_trans_specs(specs, latency_of=lambda m: 1)
        assert sorted(map(str, back)) == sorted(map(str, transfers))


class TestMappingBenchmarks:
    @pytest.mark.parametrize("n", [10, 100, 1000])
    def test_bench_forward_mapping(self, benchmark, n):
        transfers = synthetic_schedule(n)
        specs = benchmark(expand_all, transfers)
        benchmark.extra_info["trans_instances"] = len(specs)
        assert len(specs) == 6 * n

    @pytest.mark.parametrize("n", [10, 100, 1000])
    def test_bench_inverse_mapping(self, benchmark, n):
        specs = expand_all(synthetic_schedule(n))

        def invert():
            return from_trans_specs(specs, latency_of=lambda m: 1)

        back = benchmark(invert)
        assert len(back) == n

    def test_bench_full_roundtrip(self, benchmark):
        transfers = synthetic_schedule(200)

        def roundtrip():
            return from_trans_specs(
                expand_all(transfers), latency_of=lambda m: 1
            )

        back = benchmark(roundtrip)
        assert sorted(map(str, back)) == sorted(map(str, transfers))
