"""E5 (§2.7): "Execution is very fast, because we need not to deal
with asynchronous handshake."

Reproduces: the three-way cost comparison behind the claim --
(a) the paper's control-step scheme, (b) the conventional
asynchronous-handshake style, (c) a clocked RTL model -- all on the
same kernel, on two workload shapes:

* **wide** (W independent operations per step): the regime RT models
  live in.  The control-step scheme amortizes its 6 delta cycles per
  step over all concurrent transfers, so its per-transfer cost *falls*
  with width, while the handshake pays ~10 signal events per value per
  edge no matter what.  Here the paper's claim must hold.
* **serial chain** (1 operation at a time): the degenerate worst case
  for control steps (idle registers still wake every CR).  An honest
  reproduction reports that the handshake wins this shape -- the claim
  is about realistic RT workloads, not pathological serial ones.

Measures: wall time, delta cycles, events and process resumptions per
style and shape; asserts the *shape* of the result (who wins where).
"""

import time

import pytest

from repro.clocked import elaborate_clocked, translate
from repro.core.values_np import have_numpy
from repro.engine import run_metrics
from repro.handshake import (
    Channel,
    HandshakeNetwork,
    TwoPhaseChannel,
    chain_expected,
    chain_fn,
    chain_network,
    chain_rt_model,
)
from repro.kernel import Simulator

from .conftest import wide_model


def wide_handshake(
    width: int, steps: int, channel_cls: type = Channel
) -> HandshakeNetwork:
    """The handshake version of the wide workload: ``width`` lanes,
    each streaming ``(steps+1)//2`` tokens through one operator."""
    net = HandshakeNetwork(channel_cls=channel_cls)
    tokens = (steps + 1) // 2
    for lane in range(width):
        net.source(f"a{lane}", [lane + 1] * tokens)
        net.source(f"b{lane}", [2 * lane + 1] * tokens)
        net.op(f"fu{lane}", lambda x, y: x + y, f"a{lane}", f"b{lane}")
        net.sink(f"s{lane}", f"fu{lane}")
    return net


def _timed_run(backend) -> dict[str, float]:
    """Run an elaborated backend and collect its unified metrics row.

    Every style conforms to :class:`repro.engine.Backend`, so one
    timing+collection path serves all of them (elaboration/build cost
    is excluded uniformly).
    """
    t0 = time.perf_counter()
    backend.run()
    return run_metrics(backend, wall=time.perf_counter() - t0)


def run_styles(width: int, steps: int) -> dict[str, dict[str, float]]:
    """Run all styles on the wide workload; return metrics per style."""
    results: dict[str, dict[str, float]] = {}
    transfers = width * ((steps + 1) // 2)

    model = wide_model(width, steps)
    results["control-step"] = _timed_run(model.elaborate())
    results["compiled"] = _timed_run(model.elaborate(backend="compiled"))

    for label, channel_cls in (
        ("handshake", Channel),
        ("handshake-2ph", TwoPhaseChannel),
    ):
        hs = wide_handshake(width, steps, channel_cls).elaborate()
        results[label] = _timed_run(hs)
        assert all(
            len(v) == (steps + 1) // 2 for v in hs.results.values()
        )

    results["clocked"] = _timed_run(elaborate_clocked(translate(model)))
    for row in results.values():
        row["transfers"] = transfers
    return results


class TestComparisonShape:
    def test_wide_workload_per_hop_cost(self, report_lines):
        """The claim's defensible core: moving one value over one
        resource costs fewer signal events under the static schedule
        (assert + release = ~2 events/hop) than under four-phase
        signaling (req up/down, ack up/down + data = ~5 events/hop).
        A control-step register transfer has 6 hops (through two buses
        and a module); a handshake op token traverses 3 channels."""
        metrics = run_styles(width=16, steps=21)
        report_lines.append(
            f"{'style':<14}{'events/hop':>11}{'events/xfer':>12}"
            f"{'deltas':>8}{'wall[ms]':>10}"
        )
        hops = {
            "control-step": 6,
            "compiled": 6,
            "handshake": 3,
            "handshake-2ph": 3,
            "clocked": 1,
        }
        for style, m in metrics.items():
            per_hop = m["events"] / (m["transfers"] * hops[style])
            report_lines.append(
                f"{style:<14}{per_hop:>11.2f}"
                f"{m['events'] / m['transfers']:>12.1f}"
                f"{m['deltas']:>8.0f}{m['wall'] * 1e3:>10.2f}"
            )
        cs, hs = metrics["control-step"], metrics["handshake"]
        cs_hop = cs["events"] / (cs["transfers"] * 6)
        hs_hop = hs["events"] / (hs["transfers"] * 3)
        assert cs_hop < hs_hop
        # The compiled backend synthesizes the same delta/event budget
        # (bit-identical accounting) with far fewer dispatches.
        co = metrics["compiled"]
        assert co["deltas"] == cs["deltas"]
        assert co["events"] == cs["events"]
        assert co["resumes"] * 3 <= cs["resumes"]

    def test_controlstep_deltas_are_width_independent(self, report_lines):
        """6 delta cycles per step no matter how many transfers share
        them -- the paper's cost model.  (Reported honestly: per *token*
        the handshake also stays flat on independent lanes; the subset's
        structural advantage is bounded, schedule-determined cost.)"""
        deltas = {}
        for width in (2, 8, 32):
            metrics = run_styles(width=width, steps=21)
            deltas[width] = metrics["control-step"]["deltas"]
        assert deltas[2] == deltas[8] == deltas[32]
        report_lines.append(
            f"control-step deltas at widths 2/8/32: "
            f"{deltas[2]:.0f}/{deltas[8]:.0f}/{deltas[32]:.0f} (constant)"
        )

    def test_amortization_improves_with_width(self, report_lines):
        per_transfer = {}
        for width in (2, 8, 32):
            metrics = run_styles(width=width, steps=11)
            cs = metrics["control-step"]
            hs = metrics["handshake"]
            per_transfer[width] = (
                cs["events"] / cs["transfers"],
                hs["events"] / hs["transfers"],
            )
            report_lines.append(
                f"width {width:>3}: control-step "
                f"{per_transfer[width][0]:.1f} events/xfer, handshake "
                f"{per_transfer[width][1]:.1f}"
            )
        # Control-step cost per transfer falls with width...
        assert per_transfer[32][0] < per_transfer[2][0]
        # ...while handshake cost per transfer stays flat (within 20%).
        assert abs(per_transfer[32][1] - per_transfer[2][1]) < 0.2 * per_transfer[2][1]

    def test_clocked_model_needs_physical_time(self):
        model = wide_model(4, 7)
        clocked = elaborate_clocked(translate(model))
        clocked.run()
        assert clocked.sim.now.time > 0
        rt = model.elaborate().run()
        assert rt.sim.now.time == 0

    def test_serial_chain_is_the_honest_counterexample(self, report_lines):
        # The degenerate serial shape: handshake wins.  Reported, not
        # hidden -- the paper's claim concerns realistic wide models.
        ops = list(range(3, 35))
        sim = Simulator()
        net = chain_network(ops, chain_fn("ADD"))
        sinks = net.build(sim)
        sim.run()
        assert sinks["out"] == [chain_expected(ops)]
        rt = chain_rt_model(ops).elaborate().run()
        assert rt["ACC"] == chain_expected(ops)
        report_lines.append(
            f"serial chain ({len(ops) - 1} ops): handshake "
            f"{sim.stats.events} events vs control-step "
            f"{rt.stats.events} -- handshake wins this shape"
        )
        assert sim.stats.events < rt.stats.events


class TestRealizationAblation:
    """X9: folded transfer engine vs process-per-TRANS (both faithful;
    the engine is what a compiled simulator would produce)."""

    def test_engine_reduces_scheduler_work(self, report_lines):
        model = wide_model(16, 21)
        engine = model.elaborate(transfer_engine=True).run()
        literal = model.elaborate(transfer_engine=False).run()
        assert engine.registers == literal.registers
        assert engine.stats.delta_cycles == literal.stats.delta_cycles
        report_lines.append(
            f"process-per-TRANS: {literal.stats.process_resumes} wakeups; "
            f"transfer engine: {engine.stats.process_resumes} "
            f"({literal.stats.process_resumes / engine.stats.process_resumes:.1f}x fewer)"
        )
        assert engine.stats.process_resumes < literal.stats.process_resumes

    @pytest.mark.parametrize("mode", ["engine", "per-instance"])
    def test_bench_realizations(self, benchmark, mode):
        model = wide_model(8, 11)
        use_engine = mode == "engine"

        def run():
            return model.elaborate(transfer_engine=use_engine).run().stats

        stats = benchmark(run)
        benchmark.extra_info["resumes"] = stats.process_resumes


class TestBatchedSweep:
    """The multi-vector regime: N stimulus vectors over the same wide
    schedule.  Sequential compiled pays the table walk N times; the
    batched backend pays it once and carries an (N, ports) plane."""

    N = 64

    @staticmethod
    def _vectors(model, n):
        import random

        rng = random.Random(42)
        regs = [r for r in model.registers if r.startswith(("A", "B"))]
        return [
            {r: rng.randrange(0, 1 << model.width) for r in regs}
            for _ in range(n)
        ]

    @pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
    def test_batched_amortizes_the_table_walk(self, report_lines):
        model = wide_model(8, 11)
        vectors = self._vectors(model, self.N)

        t0 = time.perf_counter()
        rows = [
            model.elaborate(register_values=v, backend="compiled").run()
            for v in vectors
        ]
        seq_wall = time.perf_counter() - t0

        batched = model.elaborate(
            register_values=vectors, backend="compiled-batched"
        )
        t0 = time.perf_counter()
        batched.run()
        bat_wall = time.perf_counter() - t0

        for i, scalar in enumerate(rows):
            assert batched.registers[i] == scalar.registers
        metrics = run_metrics(batched, wall=bat_wall)
        assert metrics["vectors"] == self.N
        assert metrics["deltas"] == rows[0].stats.delta_cycles
        report_lines.append(
            f"wide 8x11, {self.N} vectors: sequential compiled "
            f"{seq_wall * 1e3:.1f} ms, batched {bat_wall * 1e3:.1f} ms "
            f"({seq_wall / bat_wall:.1f}x)"
        )

    @pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
    @pytest.mark.parametrize("mode", ["sequential", "batched"])
    def test_bench_multi_vector_sweep(self, benchmark, mode):
        model = wide_model(8, 11)
        vectors = self._vectors(model, self.N)

        if mode == "sequential":

            def run():
                return [
                    model.elaborate(
                        register_values=v, backend="compiled"
                    ).run().registers
                    for v in vectors
                ]

        else:

            def run():
                return model.elaborate(
                    register_values=vectors, backend="compiled-batched"
                ).run().registers

        results = benchmark(run)
        benchmark.extra_info["vectors"] = self.N
        assert len(results) == self.N


class TestComparisonBenchmarks:
    @pytest.mark.parametrize(
        "style", ["control-step", "compiled", "handshake", "clocked"]
    )
    def test_bench_wide_workload(self, benchmark, style):
        width, steps = 8, 11
        if style in ("control-step", "compiled"):
            model = wide_model(width, steps)
            backend = "event" if style == "control-step" else "compiled"

            def run():
                return model.elaborate(backend=backend).run().stats

        elif style == "handshake":

            def run():
                sim = Simulator()
                wide_handshake(width, steps).build(sim)
                sim.run()
                return sim.stats

        else:
            model = wide_model(width, steps)
            translation = translate(model)

            def run():
                return elaborate_clocked(translation).run().stats

        stats = benchmark(run)
        benchmark.extra_info["events"] = stats.events
        benchmark.extra_info["delta_cycles"] = stats.delta_cycles
