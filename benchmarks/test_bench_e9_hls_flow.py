"""E9 (§4): high-level synthesis results translated into the subset.

Reproduces: "High level synthesis results are translated into our
subset and can then be simulated at a high level before the next
synthesis steps" -- the full parse -> DFG -> schedule -> allocate ->
emit -> simulate flow on representative kernels (FIR filter,
polynomial evaluation, the IK distance computation), including the
classic resource/latency trade-off sweep.
Measures: synthesis time and simulation time as the DFG grows.
"""

import random
import time

import pytest

from repro.core import analyze
from repro.core.values_np import have_numpy
from repro.engine import run_metrics
from repro.hls import build_dataflow, parse_program, synthesize


def fir_program(taps: int) -> str:
    """A ``taps``-tap FIR filter on scalar inputs x0..x{n-1}."""
    lines = []
    terms = []
    for i in range(taps):
        lines.append(f"p{i} = x{i} * c{i}")
        terms.append(f"p{i}")
    acc = terms[0]
    for i, term in enumerate(terms[1:], start=1):
        lines.append(f"s{i} = {acc} + {term}")
        acc = f"s{i}"
    lines.append(f"y = {acc} + 0")
    return "\n".join(lines)


def polynomial_program(degree: int) -> str:
    """Horner evaluation of a degree-n polynomial."""
    lines = ["acc = c0 + 0"]
    for i in range(1, degree + 1):
        lines.append(f"acc = acc * x")
        lines.append(f"acc = acc + c{i}")
    return "\n".join(lines)


DISTANCE_SQUARED = """
dx = x1 - x0
dy = y1 - y0
dx2 = dx * dx
dy2 = dy * dy
d2 = dx2 + dy2
"""


def random_inputs(program_src: str, seed: int) -> dict:
    rng = random.Random(seed)
    program = parse_program(program_src)
    return {name: rng.randrange(0, 4096) for name in program.inputs}


class TestHlsReproduction:
    @pytest.mark.parametrize(
        "name,source",
        [
            ("fir4", fir_program(4)),
            ("poly5", polynomial_program(5)),
            ("dist2", DISTANCE_SQUARED),
        ],
    )
    def test_kernels_synthesize_and_verify(self, name, source):
        result = synthesize(source, name=name)
        assert analyze(result.model).clean
        inputs = random_inputs(source, seed=hash(name) % 1000)
        assert result.simulate(inputs) == result.reference(inputs)

    def test_resource_latency_tradeoff(self, report_lines):
        """The canonical HLS table: more units -> shorter schedules,
        same results."""
        source = fir_program(8)
        inputs = random_inputs(source, seed=3)
        reference = None
        report_lines.append(f"{'ALUs':>5}{'MULs':>5}{'makespan':>10}{'temps':>7}{'buses':>7}")
        spans = []
        for alus, muls in [(1, 1), (2, 2), (4, 4)]:
            result = synthesize(source, resources={"ALU": alus, "MUL": muls})
            outs = result.simulate(inputs)
            if reference is None:
                reference = outs
            assert outs == reference
            spans.append(result.schedule.makespan)
            report_lines.append(
                f"{alus:>5}{muls:>5}{result.schedule.makespan:>10}"
                f"{result.allocation.temp_count:>7}"
                f"{result.allocation.bus_count:>7}"
            )
        assert spans[0] >= spans[1] >= spans[2]
        assert spans[2] < spans[0]  # parallel hardware genuinely helps

    def test_critical_path_lower_bounds_makespan(self):
        from repro.hls.scheduling import class_latency

        source = polynomial_program(6)
        dfg = build_dataflow(parse_program(source))
        critical = dfg.critical_path_length(class_latency)
        result = synthesize(source, resources={"ALU": 8, "MUL": 8})
        assert result.schedule.makespan >= critical


class TestHlsBenchmarks:
    @pytest.mark.parametrize("taps", [4, 8, 16])
    def test_bench_synthesis_scaling(self, benchmark, taps):
        source = fir_program(taps)
        result = benchmark(synthesize, source)
        benchmark.extra_info["ops"] = len(result.dfg.op_nodes)
        benchmark.extra_info["makespan"] = result.schedule.makespan

    def test_bench_synthesized_model_simulation(self, benchmark):
        source = fir_program(8)
        result = synthesize(source)
        inputs = random_inputs(source, seed=1)

        def run():
            return result.simulate(inputs)

        outs = benchmark(run)
        assert outs == result.reference(inputs)

    def test_compiled_backend_bit_identical_on_synthesized_model(self):
        source = fir_program(8)
        result = synthesize(source)
        inputs = random_inputs(source, seed=1)
        values = {
            name: inputs[name] & ((1 << result.model.width) - 1)
            for name in result.program.inputs
        }
        ev = result.model.elaborate(register_values=values).run()
        co = result.model.elaborate(
            register_values=values, backend="compiled"
        ).run()
        assert co.registers == ev.registers
        assert co.conflicts == ev.conflicts == []
        assert co.stats.delta_cycles == ev.stats.delta_cycles
        assert {
            var: co[reg] for var, reg in result.output_regs.items()
        } == result.reference(inputs)

    def test_bench_scheduling_only(self, benchmark):
        from repro.hls import list_schedule

        dfg = build_dataflow(parse_program(fir_program(16)))
        schedule = benchmark(list_schedule, dfg, {"ALU": 2, "MUL": 2})
        assert schedule.makespan > 0


@pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
class TestBatchedValidationSweep:
    """The post-synthesis validation sweep as one batched run: N random
    stimulus vectors through the synthesized model per table walk."""

    N = 128

    def _vectors(self, source: str) -> list[dict]:
        return [random_inputs(source, seed=s) for s in range(self.N)]

    def test_batched_sweep_matches_reference(self, report_lines):
        source = fir_program(8)
        result = synthesize(source)
        vectors = self._vectors(source)
        t0 = time.perf_counter()
        outs = result.simulate_batch(vectors)
        wall = time.perf_counter() - t0
        for vec, out in zip(vectors, outs):
            assert out == result.reference(vec)
        report_lines.append(
            f"fir8 sweep: {self.N} vectors in {wall * 1e3:.1f} ms "
            f"({self.N / wall:.0f} vectors/s, one batched run)"
        )

    def test_batched_sweep_metrics_row(self):
        source = fir_program(4)
        result = synthesize(source)
        mask = (1 << result.model.width) - 1
        batch = [
            {name: vec[name] & mask for name in result.program.inputs}
            for vec in self._vectors(source)[:32]
        ]
        sim = result.model.elaborate(
            register_values=batch, backend="compiled-batched"
        )
        t0 = time.perf_counter()
        sim.run()
        row = run_metrics(sim, wall=time.perf_counter() - t0)
        assert row["vectors"] == 32
        assert row["conflicts"] == 0
        scalar = result.model.elaborate(
            register_values=batch[0], backend="compiled"
        ).run()
        assert row["deltas"] == scalar.stats.delta_cycles

    @pytest.mark.parametrize("mode", ["sequential", "batched"])
    def test_bench_validation_sweep(self, benchmark, mode):
        source = fir_program(8)
        result = synthesize(source)
        vectors = self._vectors(source)
        backend = "compiled" if mode == "sequential" else "compiled-batched"

        def run():
            return result.simulate_batch(vectors, backend=backend)

        outs = benchmark(run)
        benchmark.extra_info["vectors"] = self.N
        assert len(outs) == self.N
