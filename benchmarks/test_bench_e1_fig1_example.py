"""E1 (Fig. 1): the concrete register transfer (R1,B1,R2,B2,5,ADD,6,B1,R1).

Reproduces: the worked example -- R1 receives R1 + R2 via bus B1/B2 and
the pipelined adder, with the exact per-phase bus occupancy of §2.4,
and the full run costing CS_MAX * 6 = 42 delta cycles.
Measures: time to build + elaborate + simulate the example.
"""

from repro.core import DISC, Phase

from .conftest import fig1_model


def run_fig1():
    sim = fig1_model().elaborate().run()
    return sim


class TestFig1Reproduction:
    def test_result_value(self):
        sim = run_fig1()
        assert sim["R1"] == 5
        assert sim["R2"] == 3
        assert sim.clean

    def test_exact_delta_cost(self):
        sim = run_fig1()
        assert sim.stats.delta_cycles == 7 * 6

    def test_phase_accurate_bus_occupancy(self, report_lines):
        sim = fig1_model().elaborate(trace=True).run()
        t = sim.tracer
        # The tuple's six TRANS instances, hop by hop:
        assert t.at(5, Phase.RB)["B1"] == 2  # R1 -> B1 (ra), seen in rb
        assert t.at(5, Phase.RB)["B2"] == 3  # R2 -> B2
        assert t.at(5, Phase.CM)["ADD_in1"] == 2  # B1 -> ADD_in1 (rb)
        assert t.at(5, Phase.CM)["ADD_in2"] == 3
        assert t.at(6, Phase.WA)["ADD_out"] == 5  # pipelined: one step later
        assert t.at(6, Phase.WB)["B1"] == 5  # ADD_out -> B1 (wa)
        assert t.at(6, Phase.CR)["R1_in"] == 5  # B1 -> R1_in (wb)
        assert t.at(7, Phase.RA)["R1_out"] == 5  # latched at (6, cr)
        # Buses idle outside their scheduled hops.
        assert t.at(4, Phase.RB)["B1"] == DISC
        assert t.at(7, Phase.RB)["B1"] == DISC
        report_lines.append("hop-by-hop trace matches paper Fig. 1 / §2.4")
        report_lines.append("R1 = 5 after cs6; 42 delta cycles (= CS_MAX*6)")


class TestFig1CompiledParity:
    def test_compiled_backend_is_bit_identical(self):
        model = fig1_model()
        ev = model.elaborate(trace=True).run()
        co = model.elaborate(trace=True, backend="compiled").run()
        assert co.registers == ev.registers
        assert co.tracer.samples == ev.tracer.samples
        assert co.stats.delta_cycles == ev.stats.delta_cycles == 42


class TestFig1Benchmarks:
    def test_bench_fig1_full_run(self, benchmark):
        sim = benchmark(run_fig1)
        benchmark.extra_info["delta_cycles"] = sim.stats.delta_cycles
        benchmark.extra_info["events"] = sim.stats.events
        assert sim["R1"] == 5

    def test_bench_fig1_simulation_only(self, benchmark):
        def run():
            sim = fig1_model().elaborate()
            sim.run()
            return sim

        sim = benchmark(run)
        assert sim["R1"] == 5
