"""E10 (§2.7/§4): the automatic proving procedure.

Reproduces: the paper's verification story -- symbolic execution
relates the RT model to the algorithmic description ("formal register
transfer models can be easily translated to the VHDL register transfer
model and vice versa"), the tuple <-> TRANS mapping round-trips, and
wrong designs are refuted with counterexamples.
Measures: verification cost as the design grows.
"""

import pytest

from repro.hls import parse_program, synthesize
from repro.verify import (
    all_equivalent,
    check_model_roundtrip,
    check_program_vs_model,
    symbolic_run,
)

from .test_bench_e9_hls_flow import fir_program, polynomial_program


class TestVerificationReproduction:
    @pytest.mark.parametrize(
        "source",
        [fir_program(4), polynomial_program(4), "s = (a + b) * (a - b)\n"],
        ids=["fir4", "poly4", "difference-of-squares"],
    )
    def test_hls_designs_verify(self, source):
        result = synthesize(source)
        outcomes = check_program_vs_model(
            result.program, result.model, result.output_regs
        )
        assert all_equivalent(outcomes)

    def test_normal_form_decides_reassociation(self, report_lines):
        result = synthesize("s = a + (b + (c + d))\n")
        variant = parse_program("s = ((d + c) + b) + a\n")
        outcomes = check_program_vs_model(
            variant, result.model, result.output_regs
        )
        assert all_equivalent(outcomes)
        assert outcomes[0].method == "normal-form"
        report_lines.append(
            "re-associated source proven equivalent by normal form "
            "(no testing needed)"
        )

    def test_wrong_design_refuted_with_counterexample(self, report_lines):
        result = synthesize("s = a + b\n")
        wrong = parse_program("s = a + (b + 1)\n")
        outcomes = check_program_vs_model(
            wrong, result.model, result.output_regs
        )
        assert not all_equivalent(outcomes)
        assert outcomes[0].counterexample is not None
        report_lines.append(f"refuted: {outcomes[0]}")

    def test_symbolic_execution_of_iks_fragment(self):
        # The symbolic engine handles multi-op modules and pipelined
        # units (a slice of the chip's structure).
        result = synthesize("d2 = (x1 - x0) * (x1 - x0)\n")
        run = symbolic_run(
            result.model, symbolic_registers=list(result.program.inputs)
        )
        expr = run.expr(result.output_regs["d2"])
        assert run.concrete(
            result.output_regs["d2"], {"x0": 3, "x1": 10}
        ) == 49

    def test_roundtrip_over_growing_models(self):
        for taps in (2, 6, 12):
            model = synthesize(fir_program(taps)).model
            assert check_model_roundtrip(model).ok


class TestBitLevelEquivalence:
    """Extension: ROBDD-based bit-level operation equivalence (the
    decision-diagram machinery of the paper's verification context)."""

    def test_unit_operations_proven_against_word_semantics(self, report_lines):
        from repro.verify import check_operation_equivalence
        from repro.core import standard_operation

        for name in ("ADD", "SUB", "XOR"):
            result = check_operation_equivalence(
                standard_operation(name), name, width=5
            )
            assert result.equivalent, str(result)
        report_lines.append(
            "ADD/SUB/XOR proven equal to ripple-carry/bitwise word "
            "semantics at width 5 (BDD identity)"
        )

    def test_iks_fused_adder_proven(self, report_lines):
        from repro.core.modules_lib import Operation
        from repro.iks.chip import adder_operations
        from repro.iks.fixedpoint import FxFormat
        from repro.verify import check_operation_equivalence

        fmt = FxFormat(width=5, frac=2)
        ops = adder_operations(fmt)
        composed = Operation(
            "COMPOSED", 2, lambda a, b: fmt.add(a, fmt.arshift(b, 2))
        )
        result = check_operation_equivalence(ops["ADD_SHR2"], composed, 5)
        assert result.equivalent
        report_lines.append(
            "IKS fused ADD_SHR2 == arshift-then-saturating-add "
            "(bit-level proof at width 5)"
        )

    def test_bench_bdd_equivalence(self, benchmark):
        from repro.core import standard_operation
        from repro.verify import check_operation_equivalence

        result = benchmark(
            check_operation_equivalence,
            standard_operation("ADD"),
            "ADD",
            5,
        )
        assert result.equivalent


class TestVerificationBenchmarks:
    @pytest.mark.parametrize("taps", [4, 8, 16])
    def test_bench_equivalence_check_scaling(self, benchmark, taps):
        result = synthesize(fir_program(taps))

        def verify():
            return check_program_vs_model(
                result.program, result.model, result.output_regs
            )

        outcomes = benchmark(verify)
        benchmark.extra_info["outputs"] = len(outcomes)
        assert all_equivalent(outcomes)

    def test_bench_symbolic_execution(self, benchmark):
        result = synthesize(polynomial_program(8))

        def run():
            return symbolic_run(
                result.model, symbolic_registers=list(result.program.inputs)
            )

        run_result = benchmark(run)
        assert run_result.registers

    def test_bench_roundtrip_proof(self, benchmark):
        model = synthesize(fir_program(12)).model
        report = benchmark(check_model_roundtrip, model)
        assert report.ok
