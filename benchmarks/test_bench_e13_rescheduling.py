"""E13 (extension): automatic embedding into the control-step scheme.

Paper §2.1 names "the scheduling task": determine the register
transfers and properly embed them into the control-step scheme
observing the timing of the functional units.  The reproduction
automates it: :func:`repro.core.reschedule.reschedule` re-embeds a
model's transfers into the earliest feasible steps, preserving the
step-level read/write semantics.

Reproduced/extended results:

* the compacted schedule produces identical final register values
  (checked over the corpus and by the cross-cutting property suite);
* it *beats the hand schedule*: the hand-written 49-instruction IKS
  microprogram compacts by several control steps (work overlaps with
  the CORDIC core's latency);
* occupancy improves correspondingly.

Measures: rescheduling cost over growing schedules.
"""

import pytest

from repro.core import analyze, occupancy, reschedule
from repro.core.reschedule import RescheduleResult
from repro.hls import synthesize
from repro.iks.flow import build_ik_model

from .test_bench_e9_hls_flow import fir_program


class TestReschedulingReproduction:
    def test_iks_microprogram_compacts(self, report_lines):
        model, _ = build_ik_model(2.5, 1.0)
        result = reschedule(model)
        assert result.new_cs_max < model.cs_max
        before = model.elaborate().run()
        after = result.model.elaborate().run()
        assert before.registers == after.registers
        assert after.clean
        old_util = occupancy(model).utilization()["module"]
        new_util = occupancy(result.model).utilization()["module"]
        report_lines.append(
            f"IKS microprogram: {model.cs_max} -> {result.new_cs_max} "
            f"steps ({result.saved_steps} saved); module utilization "
            f"{old_util:.1%} -> {new_util:.1%}"
        )
        assert new_util > old_util

    def test_delta_cost_falls_with_the_schedule(self):
        model, _ = build_ik_model(1.0, 2.0)
        result = reschedule(model)
        before = model.elaborate().run().stats.delta_cycles
        after = result.model.elaborate().run().stats.delta_cycles
        # +1 when the compacted schedule latches a register in the
        # final step's CR (the E2 nuance: applying that output update
        # costs one more delta cycle).
        assert after in (result.new_cs_max * 6, result.new_cs_max * 6 + 1)
        assert after < before

    def test_compacted_schedule_is_statically_clean(self):
        model, _ = build_ik_model(0.8, -1.2)
        result = reschedule(model)
        assert analyze(result.model).clean

    def test_hls_output_is_near_optimal_already(self, report_lines):
        # The list scheduler's output should not compact further (it
        # already packs greedily) -- rescheduling is idempotent there.
        res = synthesize(fir_program(6))
        result = reschedule(res.model)
        report_lines.append(
            f"6-tap FIR from HLS: {res.model.cs_max} -> "
            f"{result.new_cs_max} steps"
        )
        assert result.new_cs_max <= res.model.cs_max


class TestReschedulingBenchmarks:
    def test_bench_reschedule_iks(self, benchmark):
        model, _ = build_ik_model(2.5, 1.0)
        result: RescheduleResult = benchmark(reschedule, model)
        benchmark.extra_info["saved_steps"] = result.saved_steps

    @pytest.mark.parametrize("taps", [4, 12])
    def test_bench_reschedule_scaling(self, benchmark, taps):
        model = synthesize(fir_program(taps)).model
        result = benchmark(reschedule, model)
        benchmark.extra_info["transfers"] = len(model.transfers)
        assert result.new_cs_max <= model.cs_max
