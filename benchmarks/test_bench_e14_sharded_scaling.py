"""E14: sharded multi-process execution at control-step barriers.

The paper's six-phase scheme needs no synchronization *within* a
control step -- register outputs are stable for the whole step and
register inputs only matter at CR -- so a model partitions across
worker processes with exactly one barrier per step.  This experiment
measures what that buys and what it costs:

* **identity**: the sharded run is bit-identical to the compiled
  reference on the wide workload at every shard count (the invariant
  the differential suite proves exhaustively; re-asserted here on the
  benchmark shapes).
* **barrier accounting**: syncs per shard == CS_MAX, and the bytes
  exchanged per barrier stay bounded by the boundary-register set --
  *not* the model size -- which is the whole point of cutting at
  step boundaries.
* **overhead shape**: per-step barrier cost is real (pickling + pipe
  round-trips), so tiny models lose; an honest reproduction records
  the crossover regime rather than claiming a universal speedup.
"""

import time

import pytest

from repro.engine import run_metrics, shard_metrics_rows

from .conftest import wide_model


def _timed_run(backend) -> dict[str, float]:
    t0 = time.perf_counter()
    backend.run()
    return run_metrics(backend, wall=time.perf_counter() - t0)


class TestShardedIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_wide_workload_bit_identical(self, shards):
        model = wide_model(8, 9)
        reference = model.elaborate(backend="compiled").run()
        sharded = model.elaborate(backend="sharded", shards=shards).run()
        assert sharded.registers == reference.registers
        assert sharded.clean == reference.clean
        assert sharded.stats.delta_cycles == reference.stats.delta_cycles


class TestBarrierAccounting:
    def test_one_sync_per_control_step(self):
        model = wide_model(8, 9)
        sim = model.elaborate(backend="sharded", shards=4).run()
        for row in shard_metrics_rows(sim):
            assert row["syncs"] == model.cs_max

    def test_barrier_traffic_scales_with_boundary_not_model(self):
        """Doubling lanes at fixed shard count roughly doubles bytes
        (the boundary registers double); the *per-shard* traffic stays
        proportional to that shard's slice, not to the whole model."""
        small = wide_model(4, 9).elaborate(backend="sharded", shards=2)
        large = wide_model(8, 9).elaborate(backend="sharded", shards=2)
        small.run()
        large.run()
        small_bytes = sum(
            r["bytes_from_worker"] for r in shard_metrics_rows(small)
        )
        large_bytes = sum(
            r["bytes_from_worker"] for r in shard_metrics_rows(large)
        )
        assert small_bytes < large_bytes < 4 * small_bytes

    def test_metrics_row_reports_shard_columns(self):
        sim = wide_model(4, 5).elaborate(backend="sharded", shards=2)
        row = _timed_run(sim)
        assert row["shards"] == 2
        assert row["syncs"] == sim.model.cs_max
        assert row["sync_bytes"] > 0


class TestOverheadShape:
    def test_crossover_report(self, report_lines):
        """Record the wall-time shape; assert only what is structural.

        Worker startup + per-step pickling dominate at these sizes, so
        the single-process run wins -- the honest result.  The numbers
        document the overhead budget a model must amortize (more work
        per (step, shard), e.g. chip-scale units) before K > 1 pays.
        """
        model = wide_model(16, 11)
        compiled_row = _timed_run(model.elaborate(backend="compiled"))
        report_lines.append(
            f"compiled     : {compiled_row['wall'] * 1e3:8.2f} ms"
        )
        for shards in (1, 2, 4):
            sim = model.elaborate(backend="sharded", shards=shards)
            row = _timed_run(sim)
            per_sync = row["wall"] / row["syncs"]
            report_lines.append(
                f"sharded K={shards} : {row['wall'] * 1e3:8.2f} ms "
                f"({per_sync * 1e6:6.1f} us/barrier, "
                f"{row['sync_bytes'] / row['syncs']:.0f} B/barrier)"
            )
            # Structural floor: every run pays CS_MAX barriers.
            assert row["syncs"] == model.cs_max
