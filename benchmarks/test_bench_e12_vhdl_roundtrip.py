"""E12 (§2.7): the subset is *executable VHDL*.

Reproduces: the defining property of the contribution -- models written
in (or emitted to) the subset parse, pass the conformance check,
elaborate, and simulate with the same results and the same delta-cycle
count as the native Python elaboration.  The corpus includes the
paper's own §2.7 example source.
Measures: lexer/parser/elaborator throughput and interpreted-vs-native
simulation cost.
"""

import pytest

from repro.handshake import chain_rt_model
from repro.hls import synthesize
from repro.vhdl import (
    EXAMPLE_FIG1,
    PAPER_LIBRARY,
    Elaborator,
    check_subset,
    emit_model_vhdl,
    parse_file,
    roundtrip_model,
    tokenize,
)

from .conftest import fig1_model, wide_model


class TestRoundTripReproduction:
    def test_paper_source_runs_and_matches_claims(self, report_lines):
        design = Elaborator(EXAMPLE_FIG1).elaborate("example").run()
        assert design.signal("r1_out").value == 5
        assert design.sim.stats.delta_cycles == 42
        assert design.sim.now.time == 0
        report_lines.append(
            "paper §2.7 source: R1=5, 42 delta cycles, zero physical time"
        )

    def test_paper_library_conforms(self):
        assert check_subset(PAPER_LIBRARY, include_paper_library=False).conformant

    @pytest.mark.parametrize(
        "name,factory",
        [
            ("fig1", fig1_model),
            ("chain8", lambda: chain_rt_model(list(range(1, 9)))),
            ("wide4", lambda: wide_model(4, 5)),
            ("hls", lambda: synthesize("t = (a + b) * (c - d)\nout = t + t\n",
                                       name="hlsdesign").model),
        ],
    )
    def test_emit_parse_elaborate_simulate(self, name, factory):
        model = factory()
        native = model.elaborate().run().registers
        via_vhdl = roundtrip_model(model)
        assert via_vhdl == native

    def test_interpreted_delta_count_matches_native(self):
        model = fig1_model()
        native = model.elaborate()
        native.run()
        text = emit_model_vhdl(model)
        design = Elaborator(text).elaborate(model.name).run()
        assert (
            design.sim.stats.delta_cycles == native.stats.delta_cycles
        )

    def test_emitted_source_conforms(self):
        report = check_subset(emit_model_vhdl(wide_model(3, 5)))
        assert report.conformant, str(report)


class TestFrontEndBenchmarks:
    def test_bench_tokenize_paper_library(self, benchmark):
        tokens = benchmark(tokenize, PAPER_LIBRARY + EXAMPLE_FIG1)
        benchmark.extra_info["tokens"] = len(tokens)

    def test_bench_parse_paper_library(self, benchmark):
        design = benchmark(parse_file, PAPER_LIBRARY + EXAMPLE_FIG1)
        assert len(design.units) > 5

    def test_bench_elaborate_fig1(self, benchmark):
        def build():
            return Elaborator(EXAMPLE_FIG1).elaborate("example")

        design = benchmark(build)
        assert "r1_out" in design.signals

    def test_bench_interpreted_simulation(self, benchmark):
        elaborator = Elaborator(EXAMPLE_FIG1)

        def run():
            return elaborator.elaborate("example").run()

        design = benchmark(run)
        assert design.signal("r1_out").value == 5

    def test_bench_native_vs_interpreted(self, benchmark, report_lines):
        # Interpreted VHDL vs native elaboration of the same design:
        # the benchmark times the interpreted path; the native cost is
        # recorded for comparison in extra_info.
        import time

        model = fig1_model()
        t0 = time.perf_counter()
        model.elaborate().run()
        native = time.perf_counter() - t0
        text = emit_model_vhdl(model)
        elaborator = Elaborator(text)

        def run():
            return elaborator.elaborate(model.name).run()

        benchmark(run)
        benchmark.extra_info["native_seconds"] = native

    def test_bench_emit_large_model(self, benchmark):
        model = wide_model(8, 9)
        text = benchmark(emit_model_vhdl, model)
        benchmark.extra_info["chars"] = len(text)
