"""E2 (Fig. 2): the six-phase control-step timing scheme.

Reproduces: "the simulation of each control step takes 6 delta
simulation cycles.  The complete simulation takes CS_MAX * 6 delta
simulation cycles" -- verified exactly over a CS_MAX sweep, for the
bare controller and for populated models.
Measures: controller cycling throughput (delta cycles per second).
"""

import pytest

from repro.core import Phase, make_controller
from repro.kernel import Simulator, wait_on

from .conftest import fig1_model, wide_model


def controller_only(cs_max: int) -> Simulator:
    sim = Simulator()
    cs = sim.signal("CS", init=0)
    ph = sim.signal("PH", init=Phase.high())
    make_controller(sim, cs, ph, cs_max)
    return sim


class TestDeltaClaim:
    @pytest.mark.parametrize("cs_max", [1, 10, 100, 1000])
    def test_bare_controller_costs_exactly_6_per_step(self, cs_max):
        sim = controller_only(cs_max)
        sim.run()
        assert sim.stats.delta_cycles == 6 * cs_max
        assert sim.now.time == 0  # no physical time, ever

    def test_populated_model_costs_the_same(self):
        # TRANS/REG/module activity rides on the same phase-change
        # cycles: adding them does not add delta cycles.
        sim = fig1_model().elaborate().run()
        assert sim.stats.delta_cycles == 7 * 6

    def test_wide_model_costs_the_same(self, report_lines):
        model = wide_model(width=8, steps=10)
        sim = model.elaborate().run()
        assert sim.stats.delta_cycles == model.cs_max * 6
        report_lines.append(
            f"8-lane model, {model.cs_max} steps: "
            f"{sim.stats.delta_cycles} deltas = CS_MAX*6 "
            f"({sim.stats.events} events amortized into them)"
        )

    def test_phase_sequence_is_figure_2(self):
        sim = controller_only(2)
        cs = sim.signals["CS"]
        ph = sim.signals["PH"]
        seen = []

        def observer():
            while True:
                yield wait_on(ph)
                seen.append((cs.value, ph.value.vhdl_name))

        sim.add_process("observer", observer)
        sim.run()
        assert seen == [
            (1, "ra"), (1, "rb"), (1, "cm"), (1, "wa"), (1, "wb"), (1, "cr"),
            (2, "ra"), (2, "rb"), (2, "cm"), (2, "wa"), (2, "wb"), (2, "cr"),
        ]


class TestTimingBenchmarks:
    @pytest.mark.parametrize("cs_max", [100, 1000])
    def test_bench_controller_cycling(self, benchmark, cs_max):
        def run():
            sim = controller_only(cs_max)
            sim.run()
            return sim

        sim = benchmark(run)
        benchmark.extra_info["delta_cycles"] = sim.stats.delta_cycles
        assert sim.stats.delta_cycles == 6 * cs_max

    def test_bench_populated_step_cost(self, benchmark):
        model = wide_model(width=4, steps=20)

        def run():
            return model.elaborate().run()

        sim = benchmark(run)
        benchmark.extra_info["delta_cycles"] = sim.stats.delta_cycles
        benchmark.extra_info["events"] = sim.stats.events
