"""E7 (§3 table): microcode -> register-transfer translation.

Reproduces: the paper's worked decode of microprogram-store address 7
with the opc1=20 / opc2=2 code maps -- the derived routes
``(J[6],BusA,y2,1)`` and ``(Y,direct,x2,1)`` and the unit operations
``Z := 0 + 0``, ``X := 0 + Rshift(x2,i)``, ``Y := 0 + y2``, ``F := 1``
("This could be easily automated.  We have written a C program...").
Measures: translation throughput over generated microprograms.
"""

import pytest

from repro.iks import (
    IKSConfig,
    build_chip,
    ik_microprogram,
    paper_addr7_instruction,
    paper_code_maps,
)
from repro.iks.chip import ACCUMULATORS
from repro.microcode import (
    MicrocodeTable,
    MicrocodeTranslator,
    parse_text,
)


def translate_addr7():
    model = build_chip(IKSConfig(cs_max=12))
    table = MicrocodeTable()
    table.add(paper_addr7_instruction())
    translator = MicrocodeTranslator(model, ACCUMULATORS)
    return translator.translate(table, paper_code_maps())


class TestAddr7Reproduction:
    def test_derived_forms_match_paper_exactly(self, report_lines):
        result = translate_addr7()
        forms = result.paper_forms()
        expected = [
            "(J[6],BusA,y2,1)",
            "(Y,direct,x2,1)",
            "Z := 0 + 0",
            "X := 0 + Rshift(x2,2)",
            "Y := 0 + y2",
            "F := 1",
        ]
        for form in expected:
            assert form in forms, f"missing {form}; got {forms}"
        report_lines.append("addr 7 decodes to: " + "; ".join(expected))

    def test_each_action_is_a_wellformed_transfer(self):
        result = translate_addr7()
        assert len(result.actions) == 6
        kinds = sorted(a.kind for a in result.actions)
        assert kinds == ["direct", "flag", "route", "unit_op", "unit_op", "unit_op"]

    def test_textual_table_round_trips(self):
        # The paper's table row in textual form translates identically.
        table = parse_text(
            "fields: m J R1 MR\n"
            "7 1 20 2 2 6 0 0\n"
        )
        model = build_chip(IKSConfig(cs_max=12))
        translator = MicrocodeTranslator(model, ACCUMULATORS)
        result = translator.translate(table, paper_code_maps())
        assert "(J[6],BusA,y2,1)" in result.paper_forms()


class TestTranslationBenchmarks:
    def test_bench_addr7_translation(self, benchmark):
        def run():
            return translate_addr7()

        result = benchmark(run)
        assert len(result.actions) == 6

    def test_bench_full_ik_program_translation(self, benchmark):
        table, maps = ik_microprogram()

        def run():
            model = build_chip(IKSConfig())
            translator = MicrocodeTranslator(model, ACCUMULATORS)
            return translator.translate(table, maps)

        result = benchmark(run)
        benchmark.extra_info["instructions"] = len(table)
        benchmark.extra_info["actions"] = len(result.actions)
        assert result.steps_used == len(table)

    @pytest.mark.parametrize("copies", [5, 20])
    def test_bench_translation_scales_linearly(self, benchmark, copies):
        # Translate `copies` concatenated instances of the addr-7 row.
        maps = paper_code_maps()

        def run():
            model = build_chip(IKSConfig(cs_max=copies + 1))
            table = MicrocodeTable()
            for i in range(copies):
                instr = paper_addr7_instruction()
                table.add(
                    type(instr)(
                        addr=i + 1,
                        opc1=instr.opc1,
                        opc2=instr.opc2,
                        fields=instr.fields,
                    )
                )
            translator = MicrocodeTranslator(model, ACCUMULATORS)
            return translator.translate(table, maps)

        result = benchmark(run)
        assert len(result.actions) == 6 * copies
