"""Static analysis of transfer schedules.

The paper detects resource conflicts *dynamically*: colliding sources
resolve to ILLEGAL during simulation, localizable to a (step, phase).
Because the schedule is fully static -- every TRANS instance carries
its step and phase as generics -- the same conflicts can be predicted
*without simulating*.  :func:`analyze` does so, and the benchmarks (E4)
confirm that the static prediction matches the dynamic observation on
injected conflicts.

Checks performed:

* **sink conflicts** -- two TRANS instances driving the same bus/port
  at the same (step, phase); the ILLEGAL becomes observable one phase
  later, which is the location the report carries;
* **operand pairing** -- a two-input module fed on only one input port
  in a step produces ILLEGAL (paper §2.6);
* **op-select conflicts** -- two different operations selected on the
  same module in the same step;
* **latency mismatches** -- a complete tuple whose ``write_step`` is
  not ``read_step + latency`` reads a stale or DISC output (warning,
  not conflict: the simulation stays legal but almost surely wrong);
* **pipeline violations** -- operands offered to a non-pipelined module
  while it is busy;
* **horizon violations** -- transfers scheduled beyond ``cs_max`` never
  execute (warning).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .model import RTModel
from .phases import Phase, StepPhase


@dataclass(frozen=True)
class PredictedConflict:
    """A conflict the static analysis expects the simulation to show.

    ``observed_at`` is where the ILLEGAL value will appear: one phase
    after the colliding drive (the assignment takes a delta cycle), on
    signal ``sink``.
    """

    sink: str
    observed_at: StepPhase
    sources: tuple[str, ...]
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.sink} ILLEGAL at {self.observed_at}: {self.reason} "
            f"({', '.join(self.sources)})"
        )


@dataclass
class ScheduleReport:
    """Outcome of the static schedule analysis."""

    conflicts: list[PredictedConflict] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no conflict was predicted (warnings may remain)."""
        return not self.conflicts

    def __str__(self) -> str:
        lines = []
        if self.conflicts:
            lines.append(f"{len(self.conflicts)} predicted conflict(s):")
            lines.extend(f"  {c}" for c in self.conflicts)
        else:
            lines.append("no conflicts predicted")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        return "\n".join(lines)


def analyze(model: RTModel) -> ScheduleReport:
    """Statically analyze a model's transfer schedule."""
    report = ScheduleReport()
    _check_sink_conflicts(model, report)
    _check_operand_pairing(model, report)
    _check_latencies(model, report)
    _check_pipelining(model, report)
    _check_horizon(model, report)
    return report


def _check_sink_conflicts(model: RTModel, report: ScheduleReport) -> None:
    writers: dict[tuple[int, Phase, str], list[str]] = defaultdict(list)
    for spec in model.trans_specs():
        writers[(spec.step, spec.phase, spec.sink)].append(spec.source)
    for (step, phase, sink), sources in sorted(writers.items()):
        distinct = sorted(set(sources))
        if len(sources) > 1 and not _same_op_literals(distinct):
            observed = StepPhase(step, phase).succ()
            report.conflicts.append(
                PredictedConflict(
                    sink=sink,
                    observed_at=observed,
                    sources=tuple(distinct),
                    reason=f"{len(sources)} sources drive it in "
                    f"cs{step}.{phase.vhdl_name}",
                )
            )


def _same_op_literals(sources: list[str]) -> bool:
    """Identical op literals on an op port resolve without conflict only
    if there is exactly one distinct literal... which VHDL resolution
    does NOT allow either (two non-DISC drivers always collide).  Kept
    as an explicit function to document the decision: duplicates are
    conflicts, matching the resolution function."""
    return False


def _check_operand_pairing(model: RTModel, report: ScheduleReport) -> None:
    fed: dict[tuple[int, str], dict[int, str]] = defaultdict(dict)
    ops: dict[tuple[int, str], list[str]] = defaultdict(list)
    for transfer in model.transfers:
        if not transfer.has_read:
            continue
        key = (transfer.read_step, transfer.module)
        if transfer.src1 is not None:
            fed[key][1] = transfer.src1
        if transfer.src2 is not None:
            fed[key][2] = transfer.src2
        if transfer.op is not None:
            ops[key].append(transfer.op)
    for (step, module), slots in sorted(fed.items()):
        spec = model.modules[module]
        op_names = ops.get((step, module), [])
        arity = (
            spec.operations[op_names[0]].arity
            if len(op_names) == 1 and op_names[0] in spec.operations
            else spec.operations[spec.default_op].arity
        )
        if arity == 2 and len(slots) == 1:
            port = 2 if 1 in slots else 1
            report.conflicts.append(
                PredictedConflict(
                    sink=f"{module}_out",
                    observed_at=_result_phase(spec, step),
                    sources=tuple(slots.values()),
                    reason=f"two-input module fed on one port only "
                    f"(in{port} stays DISC) in cs{step}",
                )
            )
    for (step, module), names in sorted(ops.items()):
        if len(names) > 1:
            report.conflicts.append(
                PredictedConflict(
                    sink=f"{module}_op",
                    observed_at=StepPhase(step, Phase.CM),
                    sources=tuple(sorted(names)),
                    reason=f"{len(names)} operations selected in cs{step}",
                )
            )


def _result_phase(spec, read_step: int) -> StepPhase:
    """Where an ILLEGAL combined at ``read_step`` reaches the output."""
    out_step = read_step + spec.latency
    return StepPhase(out_step, Phase.WA)


def _check_latencies(model: RTModel, report: ScheduleReport) -> None:
    for transfer in model.transfers:
        if not transfer.complete:
            continue
        spec = model.modules[transfer.module]
        expected = transfer.read_step + spec.latency
        if transfer.write_step != expected:
            report.warnings.append(
                f"{transfer}: module {transfer.module!r} has latency "
                f"{spec.latency}; result is written in cs{transfer.write_step} "
                f"but available in cs{expected} -- the transfer moves a "
                f"stale or DISC value"
            )


def _check_pipelining(model: RTModel, report: ScheduleReport) -> None:
    reads: dict[str, list[int]] = defaultdict(list)
    for transfer in model.transfers:
        if transfer.has_read:
            reads[transfer.module].append(transfer.read_step)
    for module, steps in sorted(reads.items()):
        spec = model.modules[module]
        if spec.pipelined or spec.latency <= 1:
            continue
        steps.sort()
        for prev, nxt in zip(steps, steps[1:]):
            # A non-pipelined unit delivers at prev + latency and can
            # accept new operands from prev + latency + 1 on.
            if nxt - prev <= spec.latency:
                report.conflicts.append(
                    PredictedConflict(
                        sink=f"{module}_out",
                        observed_at=_result_phase(spec, prev),
                        sources=(f"cs{prev}", f"cs{nxt}"),
                        reason=f"non-pipelined module {module!r} "
                        f"(latency {spec.latency}) receives operands in "
                        f"cs{nxt} while busy since cs{prev}",
                    )
                )


def _check_horizon(model: RTModel, report: ScheduleReport) -> None:
    last_useful = 0
    for transfer in model.transfers:
        spec = model.modules[transfer.module]
        if transfer.has_read and not transfer.has_write:
            result_at = transfer.read_step + spec.latency
            if result_at > model.cs_max:
                report.warnings.append(
                    f"{transfer}: result becomes available in cs{result_at}, "
                    f"beyond cs_max={model.cs_max}; it is never observable"
                )
        for step in (transfer.read_step, transfer.write_step):
            if step is not None:
                last_useful = max(last_useful, step)
    if last_useful < model.cs_max:
        report.warnings.append(
            f"cs_max={model.cs_max} but the last scheduled transfer is in "
            f"cs{last_useful}; trailing steps only cost delta cycles"
        )
