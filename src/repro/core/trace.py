"""Signal tracing over (control step, phase) time.

The abstract RT level has no physical time, so waveforms are indexed by
``(control step, phase)`` -- one sample per simulation cycle.  The
tracer doubles as a debugging aid (the paper's §2.7 argues the model's
regular structure makes simulations easy to read) and as the data
source for the equivalence checks between the clock-free and the
clocked model.

A small VCD export is included so traces can be inspected in standard
waveform viewers; phases are mapped onto a synthetic timescale of one
tick per phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, TextIO

from ..kernel import Signal, Simulator, wait_on
from .phases import PHASES_PER_STEP, Phase, StepPhase
from .values import format_value


@dataclass
class TraceSample:
    """All watched signal values at one (step, phase) point."""

    at: StepPhase
    values: dict[str, int]

    def __getitem__(self, name: str) -> int:
        return self.values[name]


class TraceLog:
    """Backend-independent store of (step, phase) samples.

    Holds the recorded waveform plus every query and rendering helper;
    how samples get in is the subclass's business.  The event-kernel
    :class:`Tracer` fills it from a phase-sensitive process; the
    compiled backend appends one sample per executed cycle directly.
    """

    def __init__(self, watched_names: Sequence[str]) -> None:
        self.watched_names = list(watched_names)
        self.samples: list[TraceSample] = []

    def append(self, at: StepPhase, values: Mapping[str, int]) -> None:
        """Record one sample (values must cover every watched name)."""
        self.samples.append(TraceSample(at, dict(values)))

    def reset(self) -> None:
        """Drop every recorded sample, keeping the watch list.

        Clears in place so holders of this object (generated-kernel
        observation hooks bind the tracer at elaboration time) see the
        reset -- the re-arm path of the compiled backends relies on it.
        """
        self.samples.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def at(self, step: int, phase: Phase) -> Optional[TraceSample]:
        """The sample taken at (step, phase), or None if never reached."""
        for sample in self.samples:
            if sample.at.step == step and sample.at.phase is phase:
                return sample
        return None

    def history(self, signal: str) -> list[tuple[StepPhase, int]]:
        """The (time, value) sequence of one signal, change-compressed."""
        out: list[tuple[StepPhase, int]] = []
        last: Optional[int] = None
        for sample in self.samples:
            value = sample.values[signal]
            if value != last:
                out.append((sample.at, value))
                last = value
        return out

    def step_values(self, signal: str, phase: Phase = Phase.CR) -> dict[int, int]:
        """Per-control-step value of ``signal`` sampled at ``phase``."""
        return {
            sample.at.step: sample.values[signal]
            for sample in self.samples
            if sample.at.phase is phase
        }

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def format_table(self, signals: Optional[Iterable[str]] = None) -> str:
        """An ASCII table: rows = (step, phase), columns = signals."""
        names = list(signals) if signals is not None else list(
            self.watched_names
        )
        header = ["cs.ph"] + names
        rows = [header]
        for sample in self.samples:
            rows.append(
                [str(sample.at)]
                + [format_value(sample.values[n]) for n in names]
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in rows
        ]
        return "\n".join(lines)

    def write_vcd(self, out: TextIO, design_name: str = "rt_model") -> None:
        """Write the trace as a VCD file (one tick per phase).

        DISC is emitted as ``z`` (high impedance) and ILLEGAL as ``x``,
        matching their intuitive std-logic analogues.  The first sample
        is written as a ``$dumpvars`` initialization block covering
        *every* watched signal, so a DISC signal reads back ``z`` from
        tick 0 and stays distinguishable from a wire the file never
        values at all (which VCD semantics leave uninitialized = ``x``).
        """
        names = list(self.watched_names)
        idents = {name: _vcd_ident(i) for i, name in enumerate(names)}
        out.write("$date reproduction of Mutz DATE'98 $end\n")
        out.write("$timescale 1ns $end\n")
        out.write(f"$scope module {design_name} $end\n")
        for name in names:
            out.write(f"$var integer 32 {idents[name]} {name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        last: dict[str, Optional[int]] = {name: None for name in names}
        first = True
        for sample in self.samples:
            tick = (sample.at.step - 1) * PHASES_PER_STEP + int(sample.at.phase)
            changes = []
            for name in names:
                value = sample.values[name]
                if value != last[name]:
                    last[name] = value
                    changes.append((name, value))
            if first:
                out.write(f"#{max(tick, 0)}\n$dumpvars\n")
                for name, value in changes:
                    out.write(f"{_vcd_value(value)} {idents[name]}\n")
                out.write("$end\n")
                first = False
            elif changes:
                out.write(f"#{max(tick, 0)}\n")
                for name, value in changes:
                    out.write(f"{_vcd_value(value)} {idents[name]}\n")


class Tracer(TraceLog):
    """Records watched signals at every phase change (event kernel).

    Parameters
    ----------
    sim, cs, ph:
        The kernel simulator and the control-step/phase signals.
    watched:
        Signals to record.  Defaults (in :class:`RTSimulation`) to all
        buses and functional-unit ports.
    """

    def __init__(
        self,
        sim: Simulator,
        cs: Signal,
        ph: Signal,
        watched: Sequence[Signal],
        name: str = "tracer",
    ) -> None:
        super().__init__([s.name for s in watched])
        self._cs = cs
        self._ph = ph
        self._watched = list(watched)
        sim.add_process(name, self._process)

    def _process(self):
        while True:
            yield wait_on(self._ph)
            at = StepPhase(self._cs.value, Phase(self._ph.value))
            self.append(at, {s.name: s.value for s in self._watched})


def _vcd_ident(index: int) -> str:
    """Short printable VCD identifier for the index-th variable."""
    alphabet = "".join(chr(c) for c in range(33, 127))
    ident = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(alphabet))
        ident = alphabet[rem] + ident
    return ident


def _vcd_value(value: int) -> str:
    from .values import DISC, ILLEGAL

    if value == DISC:
        return "bz"
    if value == ILLEGAL:
        return "bx"
    return "b" + bin(value)[2:]
