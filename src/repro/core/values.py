"""Values and the paper's resolution function (paper §2.3).

The subset models port and bus values as VHDL ``Integer`` extended with
two special values::

    constant DISC:    Integer := -1;   -- "no value" (disconnected)
    constant ILLEGAL: Integer := -2;   -- conflict / error

Regular data values are **natural numbers** (>= 0).  Buses and the input
ports of functional units are resolved signals; the resolution function
combines the contributions of all drivers:

* all drivers DISC                          -> DISC
* any driver ILLEGAL                        -> ILLEGAL
* two or more drivers that are not DISC     -> ILLEGAL
* exactly one non-DISC driver, rest DISC    -> that driver's value

A resolved signal therefore carries a natural number exactly when one
source is driving it, and a resource conflict is directly visible as
ILLEGAL in a specific simulation cycle.

Wider data (signed fixed point for the IKS chip) is encoded into
naturals by :mod:`repro.iks.fixedpoint`, keeping this layer exactly as
the paper defines it.
"""

from __future__ import annotations

from typing import Iterable

#: "No value": the source is disconnected from the bus/port.
DISC: int = -1

#: Conflict: two sources drove the same sink, or an error propagated.
ILLEGAL: int = -2


def is_data(value: int) -> bool:
    """True for a regular data value (a natural number)."""
    return value >= 0


def is_disc(value: int) -> bool:
    """True for the DISC ("no value") marker."""
    return value == DISC


def is_illegal(value: int) -> bool:
    """True for the ILLEGAL (conflict) marker."""
    return value == ILLEGAL


def check_value(value: int, context: str = "value") -> int:
    """Validate that ``value`` is representable in the subset.

    Accepts naturals, DISC and ILLEGAL; rejects anything else (the
    subset reserves all other negatives).
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{context}: expected int, got {type(value).__name__}")
    if value < ILLEGAL:
        raise ValueError(
            f"{context}: {value} is not representable (naturals, "
            f"DISC={DISC} and ILLEGAL={ILLEGAL} only)"
        )
    return value


def resolve_rt(values: Iterable[int]) -> int:
    """The paper's resolution function for buses and input ports.

    See the module docstring for the truth table.  An empty driver list
    resolves to DISC (a sink with no sources carries no value).
    """
    result = DISC
    for value in values:
        if value == DISC:
            continue
        if value == ILLEGAL or result != DISC:
            return ILLEGAL
        result = value
    return result


def format_value(value: int) -> str:
    """Human-readable form: ``DISC``, ``ILLEGAL``, or the number."""
    if value == DISC:
        return "DISC"
    if value == ILLEGAL:
        return "ILLEGAL"
    return str(value)
