"""The clock-free register-transfer level (the paper's contribution).

Public surface:

* values and resolution: :data:`DISC`, :data:`ILLEGAL`,
  :func:`resolve_rt` (§2.3);
* timing: :class:`Phase`, :class:`StepPhase`, six phases per control
  step (§2.2);
* transfers: :class:`RegisterTransfer` 9-tuples, :class:`TransSpec`
  TRANS instances, and the bidirectional mapping between them (§2.4,
  §2.7);
* models: :class:`RTModel` builder and :class:`RTSimulation` execution
  (§2.7);
* analysis: static :func:`analyze` and dynamic
  :class:`ConflictMonitor` conflict localization.
"""

from .components import make_controller, make_reg, make_trans
from .diagnostics import ConflictEvent, ConflictLog, ConflictMonitor
from .model import BusDecl, ModelError, RegisterDecl, RTModel
from .modules_lib import (
    DEFAULT_WIDTH,
    ModuleSpec,
    Operation,
    alu_spec,
    make_module,
    standard_operation,
)
from .occupancy import OccupancyReport, ResourceUsage, occupancy
from .phases import PHASES_PER_STEP, Phase, StepPhase, iter_schedule
from .reschedule import RescheduleError, RescheduleResult, reschedule
from .schedule import PredictedConflict, ScheduleReport, analyze
from .simulator import RTSimulation
from .trace import TraceLog, Tracer, TraceSample
from .transfer import (
    RegisterTransfer,
    TransferError,
    TransSpec,
    expand_all,
    from_trans_specs,
    to_trans_specs,
)
from .values import DISC, ILLEGAL, format_value, is_data, is_disc, is_illegal, resolve_rt

__all__ = [
    "BusDecl",
    "ConflictEvent",
    "ConflictLog",
    "ConflictMonitor",
    "DEFAULT_WIDTH",
    "DISC",
    "ILLEGAL",
    "ModelError",
    "ModuleSpec",
    "OccupancyReport",
    "Operation",
    "PHASES_PER_STEP",
    "Phase",
    "PredictedConflict",
    "RTModel",
    "RTSimulation",
    "RegisterDecl",
    "RegisterTransfer",
    "RescheduleError",
    "RescheduleResult",
    "ResourceUsage",
    "ScheduleReport",
    "StepPhase",
    "TraceLog",
    "Tracer",
    "TraceSample",
    "TransSpec",
    "TransferError",
    "alu_spec",
    "analyze",
    "expand_all",
    "format_value",
    "from_trans_specs",
    "is_data",
    "is_disc",
    "is_illegal",
    "iter_schedule",
    "make_controller",
    "make_module",
    "make_reg",
    "make_trans",
    "occupancy",
    "reschedule",
    "resolve_rt",
    "standard_operation",
    "to_trans_specs",
]
