"""The register-transfer model builder (paper §2.1, §2.7).

A concrete register-transfer model consists of

* a set of **registers**,
* a set of **modules** performing arithmetical/logical operations,
* a set of **buses** used for transfers of values, and
* the **timing of transfers**, given as 9-tuples embedded in the
  control-step scheme.

:class:`RTModel` is the declarative builder for such models.  It
validates the structure as it is built, desugars the paper's §3 idioms
(direct links become dedicated buses and COPY modules -- "it is better
to model more resources than to extend the VHDL subset"), and
elaborates into a running kernel simulation
(:class:`repro.core.simulator.RTSimulation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

from .modules_lib import DEFAULT_WIDTH, ModuleSpec, alu_spec, standard_operation
from .transfer import RegisterTransfer, TransSpec, expand_all
from .values import DISC, check_value


class ModelError(ValueError):
    """Raised for structural errors in a register-transfer model."""


@dataclass(frozen=True)
class RegisterDecl:
    """A register resource; ``init`` presets its output port."""

    name: str
    init: int = DISC


@dataclass(frozen=True)
class BusDecl:
    """A bus resource.  ``direct_link`` marks buses introduced by the
    §3 desugaring of direct register/module connections."""

    name: str
    direct_link: bool = False


class RTModel:
    """Builder for a clock-free register-transfer model.

    Example (the paper's Fig. 1)::

        m = RTModel("example", cs_max=7)
        m.register("R1", init=2)
        m.register("R2", init=3)
        m.bus("B1")
        m.bus("B2")
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
        sim = m.elaborate()
        sim.run()
        assert sim.registers["R1"] == 5
    """

    def __init__(self, name: str, cs_max: int, width: int = DEFAULT_WIDTH) -> None:
        if cs_max < 1:
            raise ModelError(f"cs_max must be >= 1, got {cs_max}")
        self.name = name
        self.cs_max = cs_max
        self.width = width
        self.registers: dict[str, RegisterDecl] = {}
        self.buses: dict[str, BusDecl] = {}
        self.modules: dict[str, ModuleSpec] = {}
        self.transfers: list[RegisterTransfer] = []

    # ------------------------------------------------------------------
    # resource declaration
    # ------------------------------------------------------------------
    def register(self, name: str, init: int = DISC) -> str:
        """Declare a register; returns its name for convenience."""
        self._check_fresh(name)
        if init != DISC:
            check_value(init, f"register {name} init")
            init %= 1 << self.width
        self.registers[name] = RegisterDecl(name, init)
        return name

    def input_port(self, name: str, value: int = DISC) -> str:
        """Declare a design input.

        At this abstraction level an input port behaves exactly like a
        register preloaded with the environment's value (the paper's
        example entity routes its ``x_in``-style ports into registers).
        """
        return self.register(name, init=value)

    def output_port(self, name: str) -> str:
        """Declare a design output: a register the environment reads
        after the run."""
        return self.register(name)

    def bus(self, name: str, direct_link: bool = False) -> str:
        """Declare a bus; returns its name."""
        self._check_fresh(name)
        self.buses[name] = BusDecl(name, direct_link)
        return name

    def module(
        self,
        spec: Union[ModuleSpec, str],
        ops: Optional[Sequence[str]] = None,
        latency: int = 1,
        pipelined: bool = True,
        default_op: Optional[str] = None,
    ) -> str:
        """Declare a functional unit.

        Either pass a full :class:`ModuleSpec`, or a name plus standard
        operation names (``ops``), latency and pipelining, e.g.
        ``m.module("XADD", ops=["ADD", "SUB"], latency=0)``.
        """
        if isinstance(spec, str):
            if ops is None:
                ops = ["ADD"]
            spec = alu_spec(
                spec,
                ops,
                default_op=default_op,
                latency=latency,
                pipelined=pipelined,
                width=self.width,
            )
        self._check_fresh(spec.name)
        if spec.width != self.width:
            spec = ModuleSpec(
                name=spec.name,
                operations=spec.operations,
                default_op=spec.default_op,
                latency=spec.latency,
                pipelined=spec.pipelined,
                width=self.width,
                sticky_illegal=spec.sticky_illegal,
            )
        self.modules[spec.name] = spec
        return spec.name

    def direct_link_bus(self, source: str, module: str, port: int) -> str:
        """Desugar a direct register-to-module link (paper §3).

        "For the direct link from register P to module input port
        Z_ADD a bus P_Z_ADD_in2 is introduced."  Returns the name of
        the dedicated bus; transfers over the link simply name it.
        """
        self._require_register(source)
        self._require_module(module)
        name = f"{source}_{module}_in{port}"
        if name not in self.buses:
            self.bus(name, direct_link=True)
        return name

    def copy_path(self, source: str, dest: str) -> tuple[str, str, str]:
        """Desugar a direct register-to-register link (paper §3).

        "For the direct link from Z to the register file R two extra
        buses and one extra module, which just copies the input to the
        output, are introduced."  Returns ``(bus_in, copy_module,
        bus_out)``; use :meth:`copy_transfer` to schedule the move.
        """
        self._require_register(source)
        self._require_register(dest)
        copier = f"CP_{source}_{dest}"
        bus_in = f"{source}_{copier}"
        bus_out = f"{copier}_{dest}"
        if copier not in self.modules:
            self.module(
                ModuleSpec(
                    copier,
                    operations={"COPY": standard_operation("COPY")},
                    latency=0,
                    width=self.width,
                )
            )
        if bus_in not in self.buses:
            self.bus(bus_in, direct_link=True)
        if bus_out not in self.buses:
            self.bus(bus_out, direct_link=True)
        return bus_in, copier, bus_out

    def copy_transfer(self, source: str, dest: str, step: int) -> RegisterTransfer:
        """Schedule a register-to-register move over its copy path."""
        bus_in, copier, bus_out = self.copy_path(source, dest)
        return self.add_transfer(
            RegisterTransfer(
                src1=source,
                bus1=bus_in,
                read_step=step,
                module=copier,
                write_step=step,
                write_bus=bus_out,
                dest=dest,
            )
        )

    def move(self, source: str, bus: str, dest: str, step: int) -> RegisterTransfer:
        """Schedule a register-to-register move *via a shared bus*.

        The IKS microcode (§3) derives moves such as ``(J[6],BusA,y2,1)``:
        a value travels from a register over one of the chip's shared
        buses into another register.  Within the subset every transfer
        passes through a functional unit, so the move desugars -- per
        the paper's own "model more resources" rule -- into a COPY
        module attached to the bus plus a dedicated bus into the
        destination::

            src --(ra)-> bus --(rb)-> CP_bus --(wa)-> CP_bus_dest --(wb)-> dest

        Conflicts on the shared bus remain fully observable because the
        source still travels over it in the RA phase of ``step``.
        """
        self._require_register(source)
        self._require_bus(bus)
        self._require_register(dest)
        copier = f"CP_{bus}"
        if copier not in self.modules:
            self.module(
                ModuleSpec(
                    copier,
                    operations={"COPY": standard_operation("COPY")},
                    latency=0,
                    width=self.width,
                )
            )
        out_bus = f"{copier}_{dest}"
        if out_bus not in self.buses:
            self.bus(out_bus, direct_link=True)
        return self.add_transfer(
            RegisterTransfer(
                src1=source,
                bus1=bus,
                read_step=step,
                module=copier,
                write_step=step,
                write_bus=out_bus,
                dest=dest,
            )
        )

    def constant(self, value: int) -> str:
        """A register preloaded with ``value`` (idempotent).

        The subset has no literal constants on buses; modeling them as
        preset registers keeps every transfer in the canonical
        reg->bus->module->bus->reg shape (the IKS microcode needs a
        constant 0 for ops like ``Z := 0 + 0`` and constant shift
        amounts for ``Rshift(x2, i)``).
        """
        check_value(value, "constant")
        name = f"K{value}"
        if name not in self.registers:
            self.register(name, init=value)
        return name

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def add_transfer(
        self, transfer: Union[RegisterTransfer, str]
    ) -> RegisterTransfer:
        """Add a register transfer (a tuple object or its printed form)."""
        if isinstance(transfer, str):
            transfer = RegisterTransfer.parse(transfer)
        self._validate_transfer(transfer)
        self.transfers.append(transfer)
        return transfer

    def transfer(self, **fields) -> RegisterTransfer:
        """Convenience keyword form of :meth:`add_transfer`."""
        return self.add_transfer(RegisterTransfer(**fields))

    def compute(
        self,
        module: str,
        dest: str,
        step: int,
        src1: Optional[str] = None,
        bus1: Optional[str] = None,
        src2: Optional[str] = None,
        bus2: Optional[str] = None,
        write_bus: Optional[str] = None,
        op: Optional[str] = None,
    ) -> RegisterTransfer:
        """High-level helper: read operands at ``step``, write the module
        result to ``dest`` at ``step + latency`` (0-latency modules write
        in the same step)."""
        spec = self._require_module(module)
        write_step = step + max(spec.latency, 0)
        if write_bus is None:
            if bus1 is None:
                raise ModelError(
                    f"compute({module}): give write_bus or at least bus1"
                )
            write_bus = bus1
        return self.add_transfer(
            RegisterTransfer(
                src1=src1,
                bus1=bus1,
                src2=src2,
                bus2=bus2,
                read_step=step,
                module=module,
                write_step=write_step,
                write_bus=write_bus,
                dest=dest,
                op=op,
            )
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def trans_specs(self) -> list[TransSpec]:
        """All TRANS process instances of the model (paper §2.7)."""
        return expand_all(self.transfers)

    def resource_names(self) -> set[str]:
        """All declared resource names (registers, buses, modules)."""
        return set(self.registers) | set(self.buses) | set(self.modules)

    def describe(self) -> str:
        """A human-readable inventory of the model."""
        lines = [f"RT model {self.name!r}: cs_max={self.cs_max}, width={self.width}"]
        lines.append(f"  registers ({len(self.registers)}):")
        for reg in self.registers.values():
            init = "" if reg.init == DISC else f" := {reg.init}"
            lines.append(f"    {reg.name}{init}")
        lines.append(f"  buses ({len(self.buses)}):")
        for bus in self.buses.values():
            kind = "  (direct link)" if bus.direct_link else ""
            lines.append(f"    {bus.name}{kind}")
        lines.append(f"  modules ({len(self.modules)}):")
        for spec in self.modules.values():
            ops = "/".join(sorted(spec.operations))
            pipe = "pipelined" if spec.pipelined else "non-pipelined"
            lines.append(
                f"    {spec.name}: {ops}, latency={spec.latency}, {pipe}"
            )
        lines.append(f"  transfers ({len(self.transfers)}):")
        for transfer in self.transfers:
            lines.append(f"    {transfer}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # elaboration
    # ------------------------------------------------------------------
    def elaborate(
        self,
        register_values: Optional[Mapping[str, int]] = None,
        trace: bool = False,
        watch: Optional[Iterable[str]] = None,
        max_deltas: int = 1_000_000,
        transfer_engine: bool = True,
        backend: str = "event",
        observe=None,
        shards: Optional[int] = None,
        partition: Optional[Mapping[str, int]] = None,
        plan=None,
        plan_cache=None,
    ):
        """Build an executable simulation for this model.

        Parameters
        ----------
        register_values:
            Per-run overrides of register presets (for parameter
            sweeps without rebuilding the model).  The
            ``"compiled-batched"`` backend also accepts a *sequence*
            of such mappings -- one register-value vector per batch
            lane, all swept in a single run.
        trace:
            Record a full (step, phase) waveform of every bus and port.
        watch:
            Signal names to trace.  On the compiled backends this is a
            subset fast path: only the watched ports are sampled
            (``trace=True`` without ``watch`` still records all).
        transfer_engine:
            Realize the TRANS instances as one folded engine process
            (default) or one kernel process each (the literal paper
            structure); observationally identical, see
            :class:`repro.core.simulator.RTSimulation`.  Only
            meaningful for the event backend.
        backend:
            Which simulation engine executes the model: ``"event"``
            (the delta-cycle kernel, default), ``"compiled"`` (the
            per-(step, phase) action-table executor) or
            ``"compiled-batched"`` (the same tables walked once for N
            input vectors over a numpy value plane; batch-shaped
            results -- ``registers[i]``, ``conflicts[i]``,
            ``clean_mask``); see :mod:`repro.engine`.  All are
            bit-identical per vector in registers, traces and
            conflict localization.
        observe:
            A :class:`repro.observe.Probe` receiving the run's event
            stream (phase boundaries, bus drives, register latches,
            conflicts) in the same canonical order on every backend.
            None (the default) installs nothing and costs nothing.
        shards / partition:
            ``"sharded"``-backend only: worker-process count (default
            2) and an optional resource-name -> shard-index mapping
            overriding the planner heuristic (see
            :mod:`repro.engine.partition`).  Passing either with any
            other backend is an error.
        plan / plan_cache:
            Compiled backends only.  ``plan`` supplies a pre-lowered
            :class:`repro.engine.plan.Plan` for this model (skipping
            lowering entirely); ``plan_cache`` enables the on-disk
            content-addressed plan cache -- ``True`` for the default
            root (``$REPRO_PLAN_CACHE`` or ``~/.cache/repro``), a path,
            or a :class:`repro.engine.plan.PlanCache`.  The event
            backend interprets the model directly and accepts neither.

        Returns a :class:`repro.engine.Backend` -- an
        :class:`repro.core.simulator.RTSimulation` for the default
        event backend.
        """
        from ..engine import create_backend  # local import: avoid cycle

        kwargs = dict(
            register_values=register_values,
            trace=trace,
            watch=watch,
            max_deltas=max_deltas,
            transfer_engine=transfer_engine,
            observe=observe,
        )
        if backend == "sharded":
            kwargs["shards"] = 2 if shards is None else shards
            if partition is not None:
                kwargs["partition"] = partition
        elif shards is not None or partition is not None:
            raise ModelError(
                "shards/partition apply to backend='sharded' only "
                f"(got backend={backend!r})"
            )
        if plan is not None or plan_cache not in (None, False):
            if backend == "event":
                raise ModelError(
                    "plan/plan_cache apply to the compiled backends only "
                    "(got backend='event')"
                )
            kwargs["plan"] = plan
            kwargs["plan_cache"] = plan_cache
        return create_backend(backend, self, **kwargs)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_fresh(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ModelError(f"resource name must be a non-empty string: {name!r}")
        if name in self.resource_names():
            raise ModelError(f"duplicate resource name {name!r}")

    def _require_register(self, name: str) -> RegisterDecl:
        try:
            return self.registers[name]
        except KeyError:
            raise ModelError(f"unknown register {name!r}") from None

    def _require_bus(self, name: str) -> BusDecl:
        try:
            return self.buses[name]
        except KeyError:
            raise ModelError(f"unknown bus {name!r}") from None

    def _require_module(self, name: str) -> ModuleSpec:
        try:
            return self.modules[name]
        except KeyError:
            raise ModelError(f"unknown module {name!r}") from None

    def _validate_transfer(self, transfer: RegisterTransfer) -> None:
        spec = self._require_module(transfer.module)
        for src in (transfer.src1, transfer.src2):
            if src is not None:
                self._require_register(src)
        for bus in (transfer.bus1, transfer.bus2, transfer.write_bus):
            if bus is not None:
                self._require_bus(bus)
        if transfer.dest is not None:
            self._require_register(transfer.dest)
        for step in (transfer.read_step, transfer.write_step):
            if step is not None and step > self.cs_max:
                raise ModelError(
                    f"{transfer}: control step {step} exceeds cs_max="
                    f"{self.cs_max}"
                )
        if transfer.src2 is not None and spec.arity < 2:
            raise ModelError(
                f"{transfer}: module {spec.name!r} has a single input port"
            )
        if transfer.op is not None:
            if not spec.multi_op:
                raise ModelError(
                    f"{transfer}: module {spec.name!r} implements a single "
                    f"operation; op select is not applicable"
                )
            spec.op_code(transfer.op)  # raises KeyError -> surface as is
