"""Elaboration and execution of register-transfer models.

:class:`RTSimulation` turns an :class:`repro.core.model.RTModel` into a
kernel design -- one signal per port/bus, one process per component,
exactly as the paper's §2.7 concrete models instantiate CONTROLLER,
REG, module and TRANS entities -- and runs it to quiescence.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..kernel import SimStats, Simulator, Signal
from .components import make_controller, make_reg, make_trans
from .diagnostics import ConflictEvent, ConflictMonitor
from .model import ModelError, RTModel
from .modules_lib import make_module
from .phases import Phase
from .trace import Tracer
from .transfer import TransSpec
from .values import DISC, ILLEGAL, resolve_rt


class RTSimulation:
    """A ready-to-run elaboration of a register-transfer model.

    Usually obtained via :meth:`RTModel.elaborate`.  After :meth:`run`:

    * :attr:`registers` maps register names to final output values;
    * :attr:`conflicts` lists observed ILLEGAL episodes with their
      ``(control step, phase)`` location;
    * :attr:`stats` carries the kernel counters (the paper's
      ``CS_MAX * 6`` delta claim is checked against
      ``stats.delta_cycles``).

    ``observe`` optionally attaches a :class:`repro.observe.Probe`:
    conflicts stream through the monitor's record listener, and a
    drain process (:class:`repro.observe.KernelProbeAdapter`) stamps
    phase boundaries, bus drives and register latches with their
    ``(CS, PH)``.  When None (the default) nothing is installed -- the
    unobserved run costs exactly what it did before.
    """

    #: Engine kind reported to observers (see repro.observe).
    backend_name = "event"

    def __init__(
        self,
        model: RTModel,
        register_values: Optional[Mapping[str, int]] = None,
        trace: bool = False,
        watch: Optional[Iterable[str]] = None,
        max_deltas: int = 1_000_000,
        transfer_engine: bool = True,
        observe=None,
    ) -> None:
        self.model = model
        self.sim = Simulator(max_deltas_per_time=max_deltas)
        overrides = dict(register_values or {})
        unknown = set(overrides) - set(model.registers)
        if unknown:
            raise ModelError(
                f"register_values for unknown registers: {sorted(unknown)}"
            )

        # -- timing signals ------------------------------------------------
        self.cs: Signal = self.sim.signal("CS", init=0)
        self.ph: Signal = self.sim.signal("PH", init=Phase.high())
        # Per-phase tick signals let registers (CR) and modules (CM)
        # wake once per step instead of polling all six phase changes;
        # the tick event coincides with the corresponding PH event, so
        # behaviour is identical (see make_controller).
        tick_cm = self.sim.signal("TICK_CM", init=0)
        tick_cr = self.sim.signal("TICK_CR", init=0)
        make_controller(
            self.sim,
            self.cs,
            self.ph,
            model.cs_max,
            ticks={Phase.CM: tick_cm, Phase.CR: tick_cr},
        )

        # -- ports and buses ----------------------------------------------
        self._ports: dict[str, Signal] = {}
        for bus in model.buses.values():
            self._ports[bus.name] = self.sim.signal(
                bus.name, init=DISC, resolution=resolve_rt
            )
        self._reg_out: dict[str, Signal] = {}
        for reg in model.registers.values():
            init = overrides.get(reg.name, reg.init)
            if init != DISC:
                init %= 1 << model.width
            r_in = self.sim.signal(f"{reg.name}_in", init=DISC, resolution=resolve_rt)
            r_out = self.sim.signal(f"{reg.name}_out", init=init)
            self._ports[r_in.name] = r_in
            self._ports[r_out.name] = r_out
            self._reg_out[reg.name] = r_out
            make_reg(
                self.sim, self.ph, r_in, r_out, name=reg.name, init=init,
                tick=tick_cr,
            )
        for spec in model.modules.values():
            inputs = []
            for i in range(1, spec.arity + 1):
                sig = self.sim.signal(
                    f"{spec.name}_in{i}", init=DISC, resolution=resolve_rt
                )
                self._ports[sig.name] = sig
                inputs.append(sig)
            output = self.sim.signal(f"{spec.name}_out", init=DISC)
            self._ports[output.name] = output
            op_port = None
            if spec.multi_op:
                op_port = self.sim.signal(
                    f"{spec.name}_op", init=DISC, resolution=resolve_rt
                )
                self._ports[op_port.name] = op_port
            make_module(
                self.sim, spec, self.ph, inputs, output, op_port, tick=tick_cm
            )

        # -- transfer processes ---------------------------------------------
        # Two equivalent realizations of the TRANS instances:
        #
        # * ``transfer_engine=False`` instantiates one kernel process
        #   per TRANS, the literal structure of the paper's VHDL;
        # * ``transfer_engine=True`` (default) folds all instances into
        #   one engine process that performs the assignments due at
        #   each (step, phase) through the *same per-instance drivers*.
        #   Observable behaviour -- assignment cycles, resolution,
        #   conflict attribution by instance name -- is identical, but
        #   scheduler work drops from O(instances x steps) wakeups to
        #   one wakeup per phase (what a compiled VHDL simulator
        #   achieves); the E5 benchmark quantifies the difference.
        self._specs: list[TransSpec] = model.trans_specs()
        if transfer_engine:
            self._build_transfer_engine()
        else:
            for spec in self._specs:
                sink = self._port(spec.sink)
                if spec.source.startswith("op:"):
                    code = self._op_code(spec)
                    make_trans(
                        self.sim,
                        self.cs,
                        self.ph,
                        spec.step,
                        spec.phase,
                        source=None,
                        sink=sink,
                        name=spec.name,
                        source_value=code,
                    )
                else:
                    make_trans(
                        self.sim,
                        self.cs,
                        self.ph,
                        spec.step,
                        spec.phase,
                        source=self._port(spec.source),
                        sink=sink,
                        name=spec.name,
                    )

        # -- observers -------------------------------------------------------
        resolved = [sig for sig in self._ports.values() if sig.resolved]
        self._probe = observe
        self.monitor = ConflictMonitor(
            self.sim, self.cs, self.ph, resolved,
            listener=observe.on_conflict if observe is not None else None,
        )
        self.tracer: Optional[Tracer] = None
        if trace or watch:
            watched = list(self._ports.values())
            for extra in watch or ():
                if extra not in self._ports:
                    raise ModelError(f"cannot watch unknown signal {extra!r}")
            self.tracer = Tracer(self.sim, self.cs, self.ph, watched)
        if observe is not None:
            # Created after the monitor: its drain then runs later in
            # the same cycle, so conflicts precede the phase record --
            # the canonical order the compiled backend also emits.
            from ..observe.attach import KernelProbeAdapter

            KernelProbeAdapter(
                self.sim,
                self.cs,
                self.ph,
                buses=[self._ports[b] for b in model.buses],
                reg_outs=[
                    (name, sig) for name, sig in self._reg_out.items()
                ],
                probe=observe,
            )
        self._ran = False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> "RTSimulation":
        """Run the model to quiescence (all ``cs_max`` control steps)."""
        from ..observe.metrics import record_backend_run

        if self._probe is None:
            self.sim.run()
            self._ran = True
            record_backend_run(self)
            return self
        import time as _time

        self._probe.on_run_start(self)
        t0 = _time.perf_counter()
        self.sim.run()
        self._ran = True
        self._probe.on_run_end(self, _time.perf_counter() - t0)
        record_backend_run(self)
        return self

    def run_steps(self, steps: int) -> "RTSimulation":
        """Run only the first ``steps`` control steps (for debugging)."""
        while self.cs.value < steps or not self.sim.initialized:
            if not self.sim.step():
                break
            if self.cs.value >= steps and self.ph.value is Phase.high():
                break
        self._ran = True
        return self

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def registers(self) -> dict[str, int]:
        """Current value of every register's output port."""
        return {name: sig.value for name, sig in self._reg_out.items()}

    def __getitem__(self, register: str) -> int:
        """Value of one register (``sim["R1"]``)."""
        try:
            return self._reg_out[register].value
        except KeyError:
            raise KeyError(f"unknown register {register!r}") from None

    @property
    def conflicts(self) -> list[ConflictEvent]:
        """Observed ILLEGAL episodes, localized to (step, phase)."""
        return self.monitor.events

    @property
    def clean(self) -> bool:
        """True when the run produced no ILLEGAL value anywhere."""
        return self.monitor.clean and not any(
            value == ILLEGAL for value in self.registers.values()
        )

    @property
    def stats(self) -> SimStats:
        """Kernel statistics for the run so far."""
        return self.sim.stats

    def signal(self, name: str) -> Signal:
        """Access a port/bus signal by name (e.g. ``"ADD_out"``)."""
        try:
            return self._ports[name]
        except KeyError:
            raise KeyError(f"unknown signal {name!r}") from None

    def _port(self, name: str) -> Signal:
        try:
            return self._ports[name]
        except KeyError:
            raise ModelError(
                f"transfer references unknown port or bus {name!r}"
            ) from None

    def _op_code(self, spec: TransSpec) -> int:
        op_name = spec.source[3:]
        module_name = spec.sink.rsplit("_op", 1)[0]
        return self.model.modules[module_name].op_code(op_name)

    def _build_transfer_engine(self) -> None:
        """Fold all TRANS instances into one phase-driven engine."""
        from ..kernel import wait_on

        asserts: dict[tuple[int, Phase], list] = {}
        releases: dict[tuple[int, Phase], list] = {}
        for spec in self._specs:
            sink = self._port(spec.sink)
            drv = self.sim.driver(sink, owner=spec.name, init=DISC)
            if spec.source.startswith("op:"):
                source, const = None, self._op_code(spec)
            else:
                source, const = self._port(spec.source), None
            asserts.setdefault((spec.step, spec.phase), []).append(
                (drv, source, const)
            )
            releases.setdefault((spec.step, spec.phase.succ()), []).append(drv)
        cs, ph = self.cs, self.ph

        def engine():
            while True:
                yield wait_on(ph)
                key = (cs.value, ph.value)
                for drv, source, const in asserts.get(key, ()):
                    drv.set(source.value if source is not None else const)
                for drv in releases.get(key, ()):
                    drv.set(DISC)

        self.sim.add_process("transfer_engine", engine)
