"""Resource-occupancy analysis of transfer schedules.

Because the schedule of a clock-free RT model is fully static (paper
§2.1: "at this abstract level of timing resource conflicts can be
detected"), resource *usage* is statically known too.  This module
computes, per control step, which buses carry values, which units
compute and which registers are written -- and renders the result as
an ASCII occupancy chart (a Gantt view of the datapath) plus
utilization figures.

Used by the CLI's ``analyze`` command and by the scheduling layers to
judge binding quality.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Mapping

from .model import RTModel


@dataclass
class ResourceUsage:
    """Per-step activity of one resource."""

    name: str
    kind: str  # "bus" | "module" | "register"
    #: step -> short labels of what happens there
    steps: dict[int, list[str]] = field(default_factory=dict)

    def busy_steps(self) -> int:
        return len(self.steps)

    def utilization(self, cs_max: int) -> float:
        return self.busy_steps() / cs_max if cs_max else 0.0


@dataclass
class OccupancyReport:
    """The complete occupancy picture of a model."""

    cs_max: int
    buses: dict[str, ResourceUsage] = field(default_factory=dict)
    modules: dict[str, ResourceUsage] = field(default_factory=dict)
    registers: dict[str, ResourceUsage] = field(default_factory=dict)

    def utilization(self) -> dict[str, float]:
        """Average utilization per resource kind."""
        out = {}
        for kind, table in (
            ("bus", self.buses),
            ("module", self.modules),
            ("register", self.registers),
        ):
            if table:
                out[kind] = sum(
                    usage.utilization(self.cs_max) for usage in table.values()
                ) / len(table)
            else:
                out[kind] = 0.0
        return out

    def peak_step(self) -> tuple[int, int]:
        """(step, number of simultaneously active resources) maximum."""
        counts: dict[int, int] = defaultdict(int)
        for table in (self.buses, self.modules, self.registers):
            for usage in table.values():
                for step in usage.steps:
                    counts[step] += 1
        if not counts:
            return (0, 0)
        step = max(counts, key=lambda s: (counts[s], -s))
        return step, counts[step]

    def chart(self, width: int = 0) -> str:
        """ASCII occupancy chart: one row per resource, one column per
        control step; ``#`` marks activity."""
        steps = width or self.cs_max
        lines = []
        name_width = max(
            (
                len(name)
                for table in (self.buses, self.modules, self.registers)
                for name in table
            ),
            default=4,
        )
        header = " " * name_width + " " + "".join(
            str((s // 10) % 10) if s % 10 == 0 else " "
            for s in range(1, steps + 1)
        )
        ruler = " " * name_width + " " + "".join(
            str(s % 10) for s in range(1, steps + 1)
        )
        lines.append(header)
        lines.append(ruler)
        for title, table in (
            ("buses", self.buses),
            ("modules", self.modules),
            ("registers", self.registers),
        ):
            if not table:
                continue
            lines.append(f"-- {title}")
            for name in sorted(table):
                usage = table[name]
                row = "".join(
                    "#" if s in usage.steps else "."
                    for s in range(1, steps + 1)
                )
                lines.append(f"{name:<{name_width}} {row}")
        return "\n".join(lines)

    def describe(self) -> str:
        util = self.utilization()
        step, peak = self.peak_step()
        lines = [
            f"occupancy over {self.cs_max} control steps:",
            f"  bus utilization      {util['bus']:6.1%}",
            f"  module utilization   {util['module']:6.1%}",
            f"  register-write util. {util['register']:6.1%}",
            f"  peak activity        {peak} resources in cs{step}",
        ]
        return "\n".join(lines)


def occupancy(model: RTModel) -> OccupancyReport:
    """Compute the static occupancy of a model's schedule."""
    report = OccupancyReport(cs_max=model.cs_max)
    for bus in model.buses:
        report.buses[bus] = ResourceUsage(bus, "bus")
    for module in model.modules:
        report.modules[module] = ResourceUsage(module, "module")
    for register in model.registers:
        report.registers[register] = ResourceUsage(register, "register")

    def mark(table: Mapping[str, ResourceUsage], name: str, step: int, what: str):
        table[name].steps.setdefault(step, []).append(what)

    for transfer in model.transfers:
        spec = model.modules[transfer.module]
        if transfer.has_read:
            step = transfer.read_step
            if transfer.bus1:
                mark(report.buses, transfer.bus1, step, f"{transfer.src1}->")
            if transfer.bus2:
                mark(report.buses, transfer.bus2, step, f"{transfer.src2}->")
            # The unit is busy from the read step through its latency.
            for busy in range(step, step + max(spec.latency, 1)):
                if busy <= model.cs_max:
                    mark(
                        report.modules, transfer.module, busy,
                        transfer.op or spec.default_op,
                    )
        if transfer.has_write:
            step = transfer.write_step
            if transfer.write_bus:
                mark(
                    report.buses, transfer.write_bus, step,
                    f"->{transfer.dest}",
                )
            mark(report.registers, transfer.dest, step, f"<-{transfer.module}")
    return report
