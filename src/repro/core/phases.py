"""Control steps and the six-phase timing scheme (paper §2.2, Fig. 2).

A control step is partitioned into six phases that occur cyclically::

    type Phase is (ra, rb, cm, wa, wb, cr);

    ra  register output ports -> buses
    rb  buses -> module input ports
    cm  modules compute (input ports -> internal state -> output ports)
    wa  module output ports -> buses
    wb  buses -> register input ports
    cr  registers latch (input port -> output port)

The phase signal changes with delta delay only; each control step
therefore costs exactly ``len(Phase)`` = 6 delta cycles, which is the
paper's headline timing property.

:class:`StepPhase` is the composite "time" of the abstract RT level: a
``(control step, phase)`` pair with lexicographic ordering, used
throughout the scheduling and diagnostic layers.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import Iterator


class Phase(enum.IntEnum):
    """The six control-step phases, in their cyclic order."""

    RA = 0  #: register output ports to buses
    RB = 1  #: buses to module input ports
    CM = 2  #: modules compute
    WA = 3  #: module output ports to buses
    WB = 4  #: buses to register input ports
    CR = 5  #: register input to output ports

    @property
    def vhdl_name(self) -> str:
        """The identifier used in the paper's VHDL source (``ra`` ... ``cr``)."""
        return _VHDL_NAMES[self]

    def succ(self) -> "Phase":
        """``Phase'Succ`` with wrap-around from CR back to RA."""
        return Phase((self + 1) % len(Phase))

    def pred(self) -> "Phase":
        """``Phase'Pred`` with wrap-around from RA back to CR."""
        return Phase((self - 1) % len(Phase))

    @classmethod
    def low(cls) -> "Phase":
        """``Phase'Low`` -- the first phase of a step (RA)."""
        return cls.RA

    @classmethod
    def high(cls) -> "Phase":
        """``Phase'High`` -- the last phase of a step (CR)."""
        return cls.CR

    @classmethod
    def from_vhdl_name(cls, name: str) -> "Phase":
        """Parse the paper's lower-case phase identifiers."""
        try:
            return _BY_VHDL_NAME[name.lower()]
        except KeyError:
            raise ValueError(
                f"unknown phase {name!r}; expected one of "
                f"{', '.join(_VHDL_NAMES.values())}"
            ) from None


_VHDL_NAMES = {
    Phase.RA: "ra",
    Phase.RB: "rb",
    Phase.CM: "cm",
    Phase.WA: "wa",
    Phase.WB: "wb",
    Phase.CR: "cr",
}
_BY_VHDL_NAME = {name: phase for phase, name in _VHDL_NAMES.items()}

#: Number of phases per control step (and delta cycles per step).
PHASES_PER_STEP: int = len(Phase)

#: Phases in which *transfer* processes may be activated (paper §2.4):
#: ra/rb move register outputs toward module inputs, wa/wb move module
#: outputs back toward register inputs.  cm and cr belong to the
#: functional units themselves.
TRANSFER_PHASES = (Phase.RA, Phase.RB, Phase.WA, Phase.WB)


@functools.total_ordering
@dataclass(frozen=True)
class StepPhase:
    """A point in abstract RT time: ``(control step, phase)``.

    Control steps are numbered from 1 (the controller's initialization
    bumps CS from 0 to 1 before the first ra phase, as in the paper's
    CONTROLLER source).
    """

    step: int
    phase: Phase

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"control step must be >= 0, got {self.step}")

    def succ(self) -> "StepPhase":
        """The next (step, phase) point in the cyclic schedule."""
        if self.phase is Phase.high():
            return StepPhase(self.step + 1, Phase.low())
        return StepPhase(self.step, self.phase.succ())

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, StepPhase):
            return NotImplemented
        return (self.step, int(self.phase)) < (other.step, int(other.phase))

    def __str__(self) -> str:
        return f"cs{self.step}.{self.phase.vhdl_name}"


def iter_schedule(cs_max: int) -> Iterator[StepPhase]:
    """Iterate all (step, phase) points of a ``cs_max``-step schedule.

    Yields ``cs_max * 6`` points: steps 1..cs_max, phases ra..cr --
    exactly the delta cycles the simulation will execute.
    """
    if cs_max < 1:
        raise ValueError(f"cs_max must be >= 1, got {cs_max}")
    for step in range(1, cs_max + 1):
        for phase in Phase:
            yield StepPhase(step, phase)


#: Memoized full schedules: the points depend only on ``cs_max`` and
#: StepPhase is frozen, so hot elaboration paths (one elaboration per
#: service request) share one tuple instead of re-walking the grid.
_SCHEDULES: dict = {}


def schedule_points(cs_max: int) -> "tuple[StepPhase, ...]":
    """The full schedule of :func:`iter_schedule` as a shared tuple."""
    points = _SCHEDULES.get(cs_max)
    if points is None:
        points = tuple(iter_schedule(cs_max))
        _SCHEDULES[cs_max] = points
    return points
