"""Numpy-vectorized value plane: N vectors of subset values at once.

The paper's value domain (naturals plus the DISC/ILLEGAL sentinels of
:mod:`repro.core.values`) and its resolution function are pointwise --
nothing about them couples different input vectors.  The control-step
schedule is *static* (activation tables are input-independent), so a
batch of N register-value vectors can be swept through one walk of the
schedule if the value plane itself vectorizes.  This module provides
that plane:

* :class:`BatchValueStore` -- an ``(N, num_ports)`` int64 array holding
  one row per input vector, DISC/ILLEGAL encoded exactly as in the
  scalar layer (``-1``/``-2``);
* :func:`resolve_rt_batch` -- the paper's resolution function over an
  ``(N, drivers)`` contribution array, by mask arithmetic: all-DISC
  rows resolve to DISC, exactly-one-driver rows to that driver's value,
  everything else to ILLEGAL;
* :func:`combine_batch` -- the all-or-none operand rule of
  :func:`repro.core.modules_lib._combine` over ``(N,)`` operand columns,
  dispatching to vectorized implementations of the standard operation
  library (modulo ``2**width`` arithmetic in uint64, exact for
  ``width <= 63``).

Numpy is an *optional* dependency (the ``repro[fast]`` extra): the
scalar backends never import this module, and :func:`require_numpy`
turns its absence into an actionable error instead of an ImportError
deep inside an elaboration.

Only operations created by :func:`repro.core.modules_lib._standard_operations`
carry a ``vector_key`` and take the vectorized path; custom operations
(e.g. the IKS chip's CORDIC library) fall back to an element-wise loop
over ``Operation.apply``, which keeps results bit-identical at reduced
speedup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

try:  # pragma: no cover - exercised via require_numpy/have_numpy
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .modules_lib import Operation

from .values import DISC, ILLEGAL

#: Widest data width the int64 value plane represents exactly.
MAX_BATCH_WIDTH = 63


class BatchSupportError(RuntimeError):
    """Raised when the vectorized value plane cannot be used."""


def have_numpy() -> bool:
    """True when the vectorized value plane is importable."""
    return _np is not None


def require_numpy(feature: str = "the compiled-batched backend"):
    """Return the numpy module, or raise an actionable error.

    The error names the pure-python alternative so callers hitting it
    in a numpy-less environment know the sequential path still works.
    """
    if _np is None:
        raise BatchSupportError(
            f"{feature} requires numpy, which is not installed; "
            f"install the fast extra (pip install 'repro[fast]') or run "
            f"the pure-python 'compiled' backend once per vector instead"
        )
    return _np


class BatchValueStore:
    """``(N, num_ports)`` int64 value plane with DISC/ILLEGAL sentinels.

    Row ``i`` is input vector ``i``'s complete port state; column ``j``
    is port ``j`` across the batch.  Ports are declared in the same
    order the scalar backends declare them, so column indices are
    interchangeable with the compiled backend's port table.
    """

    def __init__(
        self,
        batch_size: int,
        names: Sequence[str],
        inits: Sequence[int],
        resolved: Optional[set] = None,
    ) -> None:
        np = require_numpy("BatchValueStore")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if len(names) != len(inits):
            raise ValueError("names and inits must have equal length")
        self.batch_size = batch_size
        self.names: List[str] = list(names)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.resolved = set(resolved or ())
        row = np.asarray(list(inits), dtype=np.int64)
        self.values = np.tile(row, (batch_size, 1))

    @property
    def num_ports(self) -> int:
        return len(self.names)

    def column(self, idx: int):
        """The ``(N,)`` value column of one port (a live view)."""
        return self.values[:, idx]

    def vector(self, i: int) -> dict:
        """One input vector's named port values, as plain ints."""
        row = self.values[i]
        return {name: int(row[j]) for j, name in enumerate(self.names)}


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def resolve_rt_batch(contribs):
    """Vectorized resolution (paper §2.3) over ``(N, drivers)`` rows.

    Truth table per row, via mask arithmetic:

    * no non-DISC driver            -> DISC
    * any ILLEGAL driver            -> ILLEGAL
    * two or more non-DISC drivers  -> ILLEGAL
    * exactly one non-DISC driver   -> that driver's value

    An empty driver axis resolves to DISC, like the scalar function.
    """
    np = require_numpy("resolve_rt_batch")
    contribs = np.asarray(contribs)
    if contribs.ndim != 2:
        raise ValueError(f"expected (N, drivers) array, got {contribs.shape}")
    n = contribs.shape[0]
    out = np.full(n, ILLEGAL, dtype=np.int64)
    if contribs.shape[1] == 0:
        out[:] = DISC
        return out
    driving = contribs != DISC
    count = driving.sum(axis=1)
    any_illegal = (contribs == ILLEGAL).any(axis=1)
    # Sum of the driving entries: with exactly one driver this *is* the
    # driver's value (DISC entries are zeroed out of the sum).
    single = np.where(driving, contribs, 0).sum(axis=1)
    out[count == 0] = DISC
    one = (count == 1) & ~any_illegal
    out[one] = single[one]
    return out


# ----------------------------------------------------------------------
# vectorized standard operations
# ----------------------------------------------------------------------
# Each implementation receives uint64 operand columns already known to
# be regular data values (< 2**width) and the data width; it returns a
# uint64 column which the caller reduces modulo 2**width.  uint64
# arithmetic wraps modulo 2**64, and 2**width divides 2**64 for
# width <= 63, so the reduction is exact.

def _vec_rshift(args, width):
    np = _np
    return args[0] >> np.minimum(args[1], width)


def _vec_lshift(args, width):
    np = _np
    return args[0] << np.minimum(args[1], width)


def _vec_arshift(args, width):
    np = _np
    mask = np.uint64((1 << width) - 1)
    shift = np.minimum(args[1], width)
    sign = (args[0] >> np.uint64(width - 1)) & np.uint64(1)
    shifted = args[0] >> shift
    fill = mask & ~(mask >> shift)
    return np.where(sign.astype(bool), shifted | fill, shifted)


def _vec_neg(args, width):
    # Operands are < 2**width, so two's complement needs no wrap-around.
    return _np.uint64(1 << width) - args[0]


VECTOR_OPS: Dict[str, Callable] = {}


def _install_vector_ops() -> None:
    np = _np
    VECTOR_OPS.update(
        {
            "ADD": lambda a, w: a[0] + a[1],
            "SUB": lambda a, w: a[0] - a[1],
            "MULT": lambda a, w: a[0] * a[1],
            "AND": lambda a, w: a[0] & a[1],
            "OR": lambda a, w: a[0] | a[1],
            "XOR": lambda a, w: a[0] ^ a[1],
            "MIN": lambda a, w: np.minimum(a[0], a[1]),
            "MAX": lambda a, w: np.maximum(a[0], a[1]),
            "RSHIFT": _vec_rshift,
            "ARSHIFT": _vec_arshift,
            "LSHIFT": _vec_lshift,
            "PASS": lambda a, w: a[0],
            "COPY": lambda a, w: a[0],
            "NEG": _vec_neg,
            "INC": lambda a, w: a[0] + np.uint64(1),
            "DEC": lambda a, w: a[0] - np.uint64(1),
        }
    )


if _np is not None:
    _install_vector_ops()


def apply_operation_batch(op: "Operation", operands, width: int):
    """Vectorized ``op.apply`` over ``(N,)`` operand columns.

    ``operands`` must already contain regular data values only (the
    caller masks out DISC/ILLEGAL rows -- see :func:`combine_batch`).
    Standard operations (tagged with ``vector_key``) run as uint64
    array arithmetic; anything else falls back to an element-wise loop
    so custom operation libraries stay bit-identical.
    """
    np = require_numpy("apply_operation_batch")
    fn = VECTOR_OPS.get(getattr(op, "vector_key", None) or "")
    if fn is None:
        rows = zip(*[col.tolist() for col in operands])
        return np.fromiter(
            (op.apply(row, width) for row in rows),
            dtype=np.int64,
            count=len(operands[0]),
        )
    mask = np.uint64((1 << width) - 1)
    args = [col.astype(np.uint64) for col in operands]
    return (fn(args, width) & mask).astype(np.int64)


def combine_batch(op: "Operation", operands, width: int):
    """The all-or-none operand rule, vectorized over the batch.

    Mirrors :func:`repro.core.modules_lib._combine` per row: any
    ILLEGAL operand poisons the row, all-DISC rows stay DISC, partially
    connected rows are ILLEGAL, fully connected rows compute ``op``.
    """
    np = require_numpy("combine_batch")
    used = list(operands[: op.arity])
    any_illegal = used[0] == ILLEGAL
    all_disc = used[0] == DISC
    any_disc = all_disc.copy()
    for col in used[1:]:
        any_illegal = any_illegal | (col == ILLEGAL)
        disc = col == DISC
        all_disc = all_disc & disc
        any_disc = any_disc | disc
    safe = [np.where(col >= 0, col, 0) for col in used]
    data = apply_operation_batch(op, safe, width)
    out = np.where(any_disc, ILLEGAL, data)
    out = np.where(all_disc, DISC, out)
    return np.where(any_illegal, ILLEGAL, out)
