"""JSON (de)serialization of register-transfer models.

A designer's-exchange format for the subset: resources and the
transfer schedule as a plain JSON document, so models can be stored in
repositories, diffed, and passed between tools (the CLI uses it).

Functional units serialize by their *standard operation names*
(:func:`repro.core.modules_lib.standard_operation`); units with custom
Python operation bodies (e.g. the IKS CORDIC core) are not expressible
in a data file and raise :class:`SerializeError` -- emit those models
as VHDL instead, where the behaviour travels as source text.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .model import RTModel
from .modules_lib import ModuleSpec, _standard_operations
from .transfer import RegisterTransfer
from .values import DISC

#: Format identifier written into every document.
FORMAT = "repro-rt-model"
VERSION = 1


class SerializeError(ValueError):
    """Raised when a model cannot be (de)serialized."""


def model_to_dict(model: RTModel) -> dict:
    """The JSON-ready dictionary form of a model."""
    standard = _standard_operations(model.width)
    modules = []
    for spec in model.modules.values():
        for name, op in spec.operations.items():
            reference = standard.get(name)
            if reference is None or reference.arity != op.arity:
                raise SerializeError(
                    f"module {spec.name!r}: operation {name!r} is not a "
                    f"standard operation and cannot travel in a data "
                    f"file; emit the model as VHDL instead"
                )
        modules.append(
            {
                "name": spec.name,
                "operations": sorted(spec.operations),
                "default_op": spec.default_op,
                "latency": spec.latency,
                "pipelined": spec.pipelined,
                "sticky_illegal": spec.sticky_illegal,
            }
        )
    return {
        "format": FORMAT,
        "version": VERSION,
        "name": model.name,
        "cs_max": model.cs_max,
        "width": model.width,
        "registers": [
            {"name": reg.name, **({"init": reg.init} if reg.init != DISC else {})}
            for reg in model.registers.values()
        ],
        "buses": [
            {"name": bus.name, **({"direct_link": True} if bus.direct_link else {})}
            for bus in model.buses.values()
        ],
        "modules": modules,
        "transfers": [str(t) for t in model.transfers],
    }


def model_from_dict(data: Mapping[str, Any]) -> RTModel:
    """Rebuild a model from its dictionary form."""
    if data.get("format") != FORMAT:
        raise SerializeError(
            f"not a {FORMAT} document (format={data.get('format')!r})"
        )
    if data.get("version") != VERSION:
        raise SerializeError(
            f"unsupported version {data.get('version')!r} "
            f"(this library reads version {VERSION})"
        )
    try:
        model = RTModel(
            data["name"], cs_max=data["cs_max"], width=data.get("width", 32)
        )
        for reg in data.get("registers", ()):
            model.register(reg["name"], init=reg.get("init", DISC))
        for bus in data.get("buses", ()):
            model.bus(bus["name"], direct_link=bus.get("direct_link", False))
        standard = _standard_operations(model.width)
        for mod in data.get("modules", ()):
            ops = {}
            for op_name in mod["operations"]:
                try:
                    ops[op_name] = standard[op_name]
                except KeyError:
                    raise SerializeError(
                        f"module {mod['name']!r}: unknown standard "
                        f"operation {op_name!r}"
                    ) from None
            model.module(
                ModuleSpec(
                    mod["name"],
                    operations=ops,
                    default_op=mod.get("default_op"),
                    latency=mod.get("latency", 1),
                    pipelined=mod.get("pipelined", True),
                    width=model.width,
                    sticky_illegal=mod.get("sticky_illegal", True),
                )
            )
        for text in data.get("transfers", ()):
            model.add_transfer(RegisterTransfer.parse(text))
    except KeyError as exc:
        raise SerializeError(f"missing field {exc}") from None
    return model


def dumps(model: RTModel, indent: int = 2) -> str:
    """Serialize a model to a JSON string."""
    return json.dumps(model_to_dict(model), indent=indent)


def loads(text: str) -> RTModel:
    """Deserialize a model from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializeError(f"invalid JSON: {exc}") from None
    return model_from_dict(data)


def dump(model: RTModel, path) -> None:
    """Write a model to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(model))
        handle.write("\n")


def load(path) -> RTModel:
    """Read a model from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
