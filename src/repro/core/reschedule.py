"""Automatic re-embedding of transfers into the control-step scheme.

Paper §2.1: "The scheduling task is to determine the register
transfers and to properly embed them into the control step scheme
observing the timing of the functional units."

:func:`reschedule` performs that embedding automatically: given a
model whose transfers are *complete* 9-tuples (read and write halves
present), it extracts the data dependences implied by the original
program order, then list-schedules the transfers into the earliest
feasible control steps, observing

* **RAW**: a transfer reading register R waits for the step after the
  write that last defined R;
* **WAW**: writes to the same register keep their order, one step
  apart (two same-step writes would collide on the register input);
* **WAR**: a write may land in the same step as an earlier read of the
  old value (reads sample in RA, writes latch in CR), but not before;
* **unit timing**: one issue per module per step; non-pipelined units
  block for ``latency + 1`` steps (their initiation interval);
* **bus exclusivity**: per step, a bus carries at most one operand
  read and at most one result write (the two may coexist -- they
  occupy different phases, as in the paper's Fig. 1);
* **write-step normalization**: a transfer's write step is pinned to
  ``read step + unit latency`` (the step its unit actually delivers).

The result is a new model with the same resources and (provably, see
the property tests) the same final register values, usually in fewer
control steps -- e.g. it compacts the hand-scheduled IKS microprogram
by overlapping work with the CORDIC core's latency.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .model import RTModel
from .transfer import RegisterTransfer


class RescheduleError(ValueError):
    """Raised when a model cannot be rescheduled."""


@dataclass
class RescheduleResult:
    """Outcome of a rescheduling run."""

    model: RTModel
    original_cs_max: int
    new_cs_max: int
    #: index in program order -> (old read step, new read step)
    moves: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def saved_steps(self) -> int:
        return self.original_cs_max - self.new_cs_max

    def describe(self) -> str:
        lines = [
            f"rescheduled {len(self.moves)} transfers: "
            f"{self.original_cs_max} -> {self.new_cs_max} control steps "
            f"({self.saved_steps} saved)"
        ]
        for index in sorted(self.moves):
            old, new = self.moves[index]
            if old != new:
                lines.append(f"  transfer #{index}: cs{old} -> cs{new}")
        return "\n".join(lines)


def reschedule(model: RTModel, keep_cs_max: bool = False) -> RescheduleResult:
    """Re-embed ``model``'s transfers into the fewest control steps.

    Program order (the intended dataflow) is the original order of the
    transfers sorted by read step; the new schedule preserves every
    data dependence of that order.  ``keep_cs_max`` retains the
    original horizon instead of shrinking it (useful when the model is
    one fragment of a larger composition).
    """
    for transfer in model.transfers:
        if not transfer.complete:
            raise RescheduleError(
                f"{transfer}: rescheduling needs complete tuples "
                f"(read and write halves)"
            )

    # -- step-semantics dependence extraction ------------------------------
    # Register values are read in RA and latched in CR, so a read in
    # step s observes the write with the greatest write step < s; a
    # write landing exactly in s is invisible to that read.  The
    # extracted constraints are edges j -> i with a minimum gap g,
    # meaning read_i >= read_j + g (g may be negative for WAR edges
    # against writers still in flight at the read).
    latency_of = {
        name: spec.latency for name, spec in model.modules.items()
    }
    preds: dict[int, list[tuple[int, int]]] = defaultdict(list)
    writers_of: dict[str, list[tuple[int, int]]] = defaultdict(list)
    readers_of: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for index, transfer in enumerate(model.transfers):
        writers_of[transfer.dest].append((transfer.write_step, index))
        for source in (transfer.src1, transfer.src2):
            if source is not None:
                readers_of[source].append((transfer.read_step, index))
    for register, writers in writers_of.items():
        writers.sort()
        # WAW: keep write order, one step apart.
        for (w_j, j), (w_k, k) in zip(writers, writers[1:]):
            if w_j == w_k:
                raise RescheduleError(
                    f"register {register!r} written twice in cs{w_j}"
                )
            gap = (
                latency_of[model.transfers[j].module]
                + 1
                - latency_of[model.transfers[k].module]
            )
            preds[k].append((j, gap))
        for s_i, i in readers_of.get(register, ()):
            defining = None
            first_later = None
            for w_j, j in writers:
                if w_j < s_i:
                    defining = j
                elif first_later is None:
                    first_later = j
            if defining is not None and defining != i:
                # RAW: read_i >= write_def + 1.
                gap = latency_of[model.transfers[defining].module] + 1
                preds[i].append((defining, gap))
            if first_later is not None and first_later != i:
                # WAR: the next write must not land before the read:
                # write_k >= read_i  ->  read_k >= read_i - latency_k.
                # (A transfer that reads and writes the same register
                # trivially satisfies its own constraint: its write is
                # read + latency.)
                gap = -latency_of[model.transfers[first_later].module]
                preds[first_later].append((i, gap))

    # Placement must follow a topological order of the constraint
    # graph (WAR edges can point against original read order when a
    # long-latency write is in flight across the read).
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(model.transfers)))
    for i, edges in preds.items():
        for j, _gap in edges:
            graph.add_edge(j, i)
    try:
        order = list(
            nx.lexicographical_topological_sort(
                graph, key=lambda i: (model.transfers[i].read_step, i)
            )
        )
    except nx.NetworkXUnfeasible:  # pragma: no cover - incoherent input
        raise RescheduleError(
            "cyclic dependence constraints; the original schedule is "
            "not coherent"
        ) from None

    # -- resource-constrained placement -----------------------------------
    new_read: dict[int, int] = {}
    module_busy_until: dict[str, int] = defaultdict(int)
    module_issue_steps: dict[str, set[int]] = defaultdict(set)
    bus_reads: dict[tuple[str, int], int] = defaultdict(int)
    bus_writes: dict[tuple[str, int], int] = defaultdict(int)
    reg_writes: dict[tuple[str, int], int] = defaultdict(int)

    for index in order:
        transfer = model.transfers[index]
        spec = model.modules[transfer.module]
        earliest = 1
        for j, gap in preds[index]:
            earliest = max(earliest, new_read[j] + gap)
        step = earliest
        while not _placeable(
            transfer, spec, step,
            module_busy_until, module_issue_steps,
            bus_reads, bus_writes, reg_writes,
        ):
            step += 1
            if step > 100_000:  # pragma: no cover - safety net
                raise RescheduleError("rescheduling did not converge")
        new_read[index] = step
        module_issue_steps[transfer.module].add(step)
        if not spec.pipelined and spec.latency > 0:
            module_busy_until[transfer.module] = step + spec.latency
        for bus in (transfer.bus1, transfer.bus2):
            if bus is not None:
                bus_reads[(bus, step)] += 1
        write_step = step + spec.latency
        bus_writes[(transfer.write_bus, write_step)] += 1
        reg_writes[(transfer.dest, write_step)] += 1

    # -- rebuild the model --------------------------------------------------
    new_horizon = max(
        new_read[i] + model.modules[model.transfers[i].module].latency
        for i in order
    )
    cs_max = model.cs_max if keep_cs_max else new_horizon
    rebuilt = RTModel(model.name, cs_max=max(cs_max, 1), width=model.width)
    for reg in model.registers.values():
        rebuilt.register(reg.name, init=reg.init)
    for bus in model.buses.values():
        rebuilt.bus(bus.name, direct_link=bus.direct_link)
    for spec in model.modules.values():
        rebuilt.module(spec)
    result = RescheduleResult(
        model=rebuilt,
        original_cs_max=model.cs_max,
        new_cs_max=rebuilt.cs_max,
    )
    for index, transfer in enumerate(model.transfers):
        step = new_read[index]
        spec = model.modules[transfer.module]
        rebuilt.add_transfer(
            RegisterTransfer(
                src1=transfer.src1,
                bus1=transfer.bus1,
                src2=transfer.src2,
                bus2=transfer.bus2,
                read_step=step,
                module=transfer.module,
                write_step=step + spec.latency,
                write_bus=transfer.write_bus,
                dest=transfer.dest,
                op=transfer.op,
            )
        )
        result.moves[index] = (transfer.read_step, step)
    return result


def _placeable(
    transfer: RegisterTransfer,
    spec,
    step: int,
    module_busy_until,
    module_issue_steps,
    bus_reads,
    bus_writes,
    reg_writes,
) -> bool:
    if step < 1:
        return False
    if step <= module_busy_until[transfer.module]:
        return False
    if step in module_issue_steps[transfer.module]:
        return False
    buses = [b for b in (transfer.bus1, transfer.bus2) if b is not None]
    if len(buses) == 2 and buses[0] == buses[1]:
        return False  # cannot carry both operands on one bus
    for bus in buses:
        if bus_reads[(bus, step)]:
            return False
    write_step = step + spec.latency
    if bus_writes[(transfer.write_bus, write_step)]:
        return False
    if reg_writes[(transfer.dest, write_step)]:
        return False
    return True
