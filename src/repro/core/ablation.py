"""Phase-partition ablation: why the paper uses six phases (E11).

The six-phase control step gives every transfer hop its own delta
cycle: register->bus (ra), bus->module (rb), compute (cm),
module->bus (wa), bus->register (wb), latch (cr).  That is what makes
a conflict localizable to a *hop*: a bus collision shows up on the bus
signal in rb, a module-port collision on the port in cm, a register
collision on the input in cr.

This module implements the obvious "cheaper" alternative -- a
**merged four-phase scheme** where values move register->module-port
directly in ra and module->register directly in wa, skipping the bus
hops (phases rb and wb are simply never entered):

* a control step costs 4 delta cycles instead of 6 (-33%);
* but the bus as an observable resource disappears: a shared-bus
  collision and a module-port collision both surface on the *port* in
  the cm cycle, and nothing distinguishes which interconnect resource
  was oversubscribed.

The E11 benchmark quantifies both sides of the trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..kernel import Signal, Simulator, wait_on, wait_until
from .components import make_reg
from .diagnostics import ConflictMonitor
from .model import RTModel
from .modules_lib import make_module
from .phases import Phase
from .values import DISC, resolve_rt

#: The merged scheme's phase sequence (4 of the 6 phases).
MERGED_SEQUENCE: tuple[Phase, ...] = (Phase.RA, Phase.CM, Phase.WA, Phase.CR)


def make_seq_controller(
    sim: Simulator,
    cs: Signal,
    ph: Signal,
    cs_max: int,
    sequence: Sequence[Phase],
    name: str = "CONTROL",
) -> None:
    """A controller cycling through an arbitrary phase sequence.

    With ``sequence = list(Phase)`` this is exactly the paper's
    CONTROLLER; shorter sequences implement merged schemes.  ``ph``
    must be initialized to the *last* phase of the sequence.
    """
    if cs_max < 1:
        raise ValueError(f"CS_MAX must be >= 1, got {cs_max}")
    seq = list(sequence)
    if not seq:
        raise ValueError("phase sequence must not be empty")
    cs_drv = sim.driver(cs, owner=name)
    ph_drv = sim.driver(ph, owner=name)
    index_of = {phase: i for i, phase in enumerate(seq)}

    def controller():
        while True:
            position = index_of[ph.value]
            if position == len(seq) - 1:
                if cs.value < cs_max:
                    cs_drv.set(cs.value + 1)
                    ph_drv.set(seq[0])
            else:
                ph_drv.set(seq[position + 1])
            yield wait_on(ph)

    sim.add_process(name, controller)


def make_direct_trans(
    sim: Simulator,
    cs: Signal,
    ph: Signal,
    step: int,
    phase: Phase,
    release: Phase,
    source: Signal,
    sink: Signal,
    name: str,
    source_value: Optional[int] = None,
) -> None:
    """A TRANS variant parameterized by its release phase.

    The six-phase TRANS always releases at ``phase.succ()``; the merged
    scheme's transfers release at the *next phase of the merged
    sequence* instead.
    """
    drv = sim.driver(sink, owner=name, init=DISC)

    def trans():
        # Same staged wait as repro.core.components.make_trans.
        while cs.value != step:
            yield wait_until(lambda: cs.value == step, cs)
        while ph.value is not phase:
            yield wait_on(ph)
        drv.set(source.value if source_value is None else source_value)
        while ph.value is not release:
            yield wait_on(ph)
        drv.set(DISC)

    sim.add_process(name, trans)


@dataclass
class MergedSimulation:
    """An RT model elaborated under the merged four-phase scheme."""

    sim: Simulator
    cs: Signal
    ph: Signal
    monitor: ConflictMonitor
    _reg_out: dict[str, Signal] = field(default_factory=dict)

    def run(self) -> "MergedSimulation":
        self.sim.run()
        return self

    @property
    def registers(self) -> dict[str, int]:
        return {name: sig.value for name, sig in self._reg_out.items()}

    def __getitem__(self, register: str) -> int:
        return self._reg_out[register].value

    @property
    def conflicts(self):
        return self.monitor.events

    @property
    def stats(self):
        return self.sim.stats


def elaborate_merged(
    model: RTModel,
    register_values: Optional[Mapping[str, int]] = None,
) -> MergedSimulation:
    """Elaborate ``model`` under the merged scheme.

    Transfers move operands register->module-port at RA (release CM)
    and results module->register at WA (release CR); the declared
    buses are not instantiated.  Schedules valid under six phases are
    valid here too -- the point of the ablation is what is *lost*, not
    what breaks.
    """
    sim = Simulator()
    overrides = dict(register_values or {})
    cs = sim.signal("CS", init=0)
    ph = sim.signal("PH", init=MERGED_SEQUENCE[-1])
    make_seq_controller(sim, cs, ph, model.cs_max, MERGED_SEQUENCE)

    ports: dict[str, Signal] = {}
    reg_out: dict[str, Signal] = {}
    for reg in model.registers.values():
        init = overrides.get(reg.name, reg.init)
        r_in = sim.signal(f"{reg.name}_in", init=DISC, resolution=resolve_rt)
        r_out = sim.signal(f"{reg.name}_out", init=init)
        ports[r_in.name] = r_in
        ports[r_out.name] = r_out
        reg_out[reg.name] = r_out
        make_reg(sim, ph, r_in, r_out, name=reg.name, init=init)
    for spec in model.modules.values():
        inputs = []
        for i in range(1, spec.arity + 1):
            sig = sim.signal(f"{spec.name}_in{i}", init=DISC, resolution=resolve_rt)
            ports[sig.name] = sig
            inputs.append(sig)
        output = sim.signal(f"{spec.name}_out", init=DISC)
        ports[output.name] = output
        op_port = None
        if spec.multi_op:
            op_port = sim.signal(
                f"{spec.name}_op", init=DISC, resolution=resolve_rt
            )
            ports[op_port.name] = op_port
        make_module(sim, spec, ph, inputs, output, op_port)

    counter = 0
    for transfer in model.transfers:
        counter += 1
        spec = model.modules[transfer.module]
        if transfer.src1 is not None:
            make_direct_trans(
                sim, cs, ph, transfer.read_step, Phase.RA, Phase.CM,
                ports[f"{transfer.src1}_out"],
                ports[f"{transfer.module}_in1"],
                name=f"d{counter}_{transfer.src1}_{transfer.module}_in1",
            )
        if transfer.src2 is not None:
            make_direct_trans(
                sim, cs, ph, transfer.read_step, Phase.RA, Phase.CM,
                ports[f"{transfer.src2}_out"],
                ports[f"{transfer.module}_in2"],
                name=f"d{counter}_{transfer.src2}_{transfer.module}_in2",
            )
        if transfer.op is not None:
            make_direct_trans(
                sim, cs, ph, transfer.read_step, Phase.RA, Phase.CM,
                None,
                ports[f"{transfer.module}_op"],
                name=f"d{counter}_op_{transfer.module}",
                source_value=spec.op_code(transfer.op),
            )
        if transfer.dest is not None:
            make_direct_trans(
                sim, cs, ph, transfer.write_step, Phase.WA, Phase.CR,
                ports[f"{transfer.module}_out"],
                ports[f"{transfer.dest}_in"],
                name=f"d{counter}_{transfer.module}_{transfer.dest}_in",
            )
    resolved = [sig for sig in ports.values() if sig.resolved]
    monitor = ConflictMonitor(sim, cs, ph, resolved)
    return MergedSimulation(
        sim=sim, cs=cs, ph=ph, monitor=monitor, _reg_out=reg_out
    )


def localization_classes(conflicts: Iterable) -> set[tuple[str, str]]:
    """The distinct (signal kind, phase) classes conflicts appear in.

    Six phases separate bus conflicts (bus signal, rb) from port
    conflicts (module port, cm) and register collisions (reg input,
    cr); the merged scheme folds the first two together -- this set
    quantifies the difference.
    """
    classes: set[tuple[str, str]] = set()
    for event in conflicts:
        if event.signal.endswith(("_in1", "_in2", "_op")):
            kind = "module-port"
        elif event.signal.endswith("_in"):
            kind = "register-input"
        elif event.signal.endswith("_out"):
            kind = "output"
        else:
            kind = "bus"
        classes.add((kind, event.at.phase.vhdl_name))
    return classes
