"""Kernel process factories for the subset's structural components.

Each factory transliterates one of the paper's VHDL design entities
(CONTROLLER §2.2, TRANS §2.4, REG §2.5) into a kernel process.  The
module entities of §2.6 live in :mod:`repro.core.modules_lib`.

All signal updates use zero-delay (delta) assignments only, so the
models contain no physical time -- the defining property of the subset.
"""

from __future__ import annotations

from typing import Optional  # noqa: F401 - used in signatures

from ..kernel import Driver, Signal, Simulator, wait_on, wait_until  # noqa: F401
from .phases import Phase
from .values import DISC


def make_controller(
    sim: Simulator,
    cs: Signal,
    ph: Signal,
    cs_max: int,
    name: str = "CONTROL",
    ticks: Optional[dict[Phase, Signal]] = None,
) -> None:
    """Instantiate the CONTROLLER process (paper §2.2).

    Drives the cyclic phase sequence with delta delay::

        process (PH)
        begin
          if (PH = Phase'High) then
            if (CS < CS_MAX) then
              CS <= CS + 1;  PH <= Phase'Low;
            end if;
          else
            PH <= Phase'Succ(PH);
          end if;
        end;

    ``cs`` must be initialized to 0 and ``ph`` to ``Phase'High`` (CR);
    the initialization run then bumps the model into step 1, phase RA.
    Once CS reaches ``cs_max`` at phase CR no further assignment is
    made and the simulation quiesces -- the paper's stop condition.

    ``ticks`` optionally maps phases to *tick signals*: whenever the
    controller schedules a transition into phase p, it also schedules
    an event on ``ticks[p]`` in the same delta cycle.  A component
    interested only in phase p can then wait on its tick instead of
    polling every PH event -- observationally identical (the tick
    event coincides with PH becoming p), but one wakeup per step
    instead of six.  This is the activation indexing a compiled VHDL
    simulator derives from ``wait until PH = p``.
    """
    if cs_max < 1:
        raise ValueError(f"CS_MAX must be >= 1, got {cs_max}")
    cs_drv = sim.driver(cs, owner=name)
    ph_drv = sim.driver(ph, owner=name)
    tick_drvs = {
        phase: sim.driver(sig, owner=f"{name}_tick_{phase.vhdl_name}")
        for phase, sig in (ticks or {}).items()
    }
    tick_counts = {phase: 0 for phase in tick_drvs}

    def advance(next_phase: Phase) -> None:
        ph_drv.set(next_phase)
        drv = tick_drvs.get(next_phase)
        if drv is not None:
            tick_counts[next_phase] += 1
            drv.set(tick_counts[next_phase])

    def controller():
        while True:
            if ph.value is Phase.high():
                if cs.value < cs_max:
                    cs_drv.set(cs.value + 1)
                    advance(Phase.low())
            else:
                advance(ph.value.succ())
            yield wait_on(ph)

    sim.add_process(name, controller)


def make_trans(
    sim: Simulator,
    cs: Signal,
    ph: Signal,
    step: int,
    phase: Phase,
    source: Signal,
    sink: Signal,
    name: Optional[str] = None,
    source_value: Optional[int] = None,
) -> Driver:
    """Instantiate a TRANS process (paper §2.4).

    ::

        entity TRANS is
          generic (S: Natural; P: Phase);
          port (CS: in Natural; PH: in Phase;
                InS: in Integer; OutS: out Integer := DISC);
        end TRANS;

    At phase ``P`` of step ``S`` the process drives the sink with the
    source value; at the succeeding phase it drives DISC again,
    releasing the sink.  The sink must be a resolved signal (it is the
    target of potentially many TRANS instances).

    ``source_value`` supports the operation-select extension (§3):
    when given, the instance drives that constant instead of reading a
    source signal (used for op codes), and ``source`` may be None.

    Returns the driver, mainly for tests.
    """
    if name is None:
        src_name = source.name if source is not None else f"op={source_value}"
        name = f"{src_name}_{sink.name}_{step}"
    drv = sim.driver(sink, owner=name, init=DISC)
    release_phase = phase.succ()
    if release_phase is Phase.low():
        raise ValueError(
            f"TRANS {name}: phase {phase.vhdl_name} is the last phase of a "
            f"step; a transfer cannot release across a step boundary"
        )

    def trans():
        # Semantically this is the paper's single
        # ``wait until CS = S and PH = P``, staged so the process polls
        # once per *step* (CS event) instead of once per *phase* while
        # its step has not arrived -- a 6x reduction in scheduler work
        # for large models, with identical observable behaviour (the
        # assignment still happens in the same delta cycle).
        while cs.value != step:
            yield wait_until(lambda: cs.value == step, cs)
        while ph.value is not phase:
            yield wait_on(ph)
        if source_value is not None:
            drv.set(source_value)
        else:
            drv.set(source.value)
        # Phases advance one per delta cycle, so the succeeding phase
        # (the release point) is exactly the next PH event.
        yield wait_on(ph)
        drv.set(DISC)

    sim.add_process(name, trans)
    return drv


def make_reg(
    sim: Simulator,
    ph: Signal,
    r_in: Signal,
    r_out: Signal,
    name: str,
    init: int = DISC,
    tick: Optional[Signal] = None,
) -> Driver:
    """Instantiate a REG process (paper §2.5).

    ::

        process
        begin
          wait until PH = cR;
          if R_in /= DISC then
            R_out <= R_in;
          end if;
        end process;

    The register fetches a new value in every CR phase in which some
    transfer drives its input port, and keeps its old value otherwise.
    ``init`` presets the register's output (DISC in the paper's source;
    concrete models may preload operands, which is equivalent to having
    transferred them in an earlier step).

    ``tick``, when given, must be the controller's CR tick signal (see
    :func:`make_controller`): the process then wakes exactly once per
    step instead of polling every phase change.
    """
    drv = sim.driver(r_out, owner=name, init=init)

    def reg():
        while True:
            if tick is not None:
                yield wait_on(tick)
            else:
                yield wait_until(lambda: ph.value is Phase.CR, ph)
            if r_in.value != DISC:
                drv.set(r_in.value)

    sim.add_process(name, reg)
    return drv


def make_output_port_probe(
    sim: Simulator,
    ph: Signal,
    bus: Signal,
    port: Signal,
    name: str,
) -> Driver:
    """Connect a design output port to a bus (paper §2.7 entity ports).

    The example entity exposes ``x_out, y_out: out Integer := DISC``.
    An output port behaves like a register input sampled in the WB
    phase: whenever the bus carries a value during WB, the port takes
    it and holds it.
    """
    drv = sim.driver(port, owner=name, init=DISC)

    def probe():
        while True:
            yield wait_until(lambda: ph.value is Phase.WB, ph)
            if bus.value != DISC:
                drv.set(bus.value)

    sim.add_process(name, probe)
    return drv
