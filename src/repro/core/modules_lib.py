"""Functional-unit (module) processes and the standard operation library.

Paper §2.6 shows the pipelined adder::

    process
      variable M: Integer := DISC;
    begin
      wait until PH = cM;
      M_out <= M;
      if M /= ILLEGAL then
        if M_in1 = DISC and M_in2 = DISC then
          M := DISC;
        elsif M_in1 /= DISC and M_in2 /= DISC then
          M := M_in1 + M_in2;
        else
          M := ILLEGAL;
        end if;
      end if;
    end process;

Key semantic points reproduced here:

* modules act only in the CM phase; all combinational behaviour is
  expressed in variable assignments within one activation (the paper
  explicitly forbids cascades of combinational processes linked by
  signals, because that would spend delta cycles on something other
  than phase changes);
* a *pipelined* module of latency L holds an L-deep variable pipeline:
  results appear on the output port L control steps after the operands;
* operands must arrive all-or-none: a step in which only one input of a
  two-input module carries a value produces ILLEGAL;
* ILLEGAL is sticky through the pipeline stage that saw it (the paper's
  adder freezes on ILLEGAL; we propagate it through the pipe so the
  conflict reaches the output and a register, where diagnostics see it);
* §3 extension: a module may implement several operations; the
  operation for a step is selected by a value on the module's op port,
  driven by an extra TRANS instance of the transfer.

Arithmetic is performed modulo ``2**width`` so that results stay
natural numbers (the subset's regular values); signed data is handled
by two's-complement encoding at a higher layer
(:mod:`repro.iks.fixedpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from ..kernel import Signal, Simulator, wait_on, wait_until
from .phases import Phase
from .values import DISC, ILLEGAL

#: An operation body: takes the operand naturals, returns an int (the
#: framework reduces it modulo 2**width).
OpFn = Callable[..., int]


@dataclass(frozen=True)
class Operation:
    """One operation a module can perform.

    ``vector_key`` names a vectorized implementation in
    :mod:`repro.core.values_np` (set only by the standard library;
    custom operations leave it None and are evaluated element-wise by
    the batched backend, which keeps arbitrary ``fn`` bodies exact).
    """

    name: str
    arity: int
    fn: OpFn
    vector_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arity not in (1, 2):
            raise ValueError(f"operation arity must be 1 or 2, got {self.arity}")

    def apply(self, operands: Sequence[int], width: int) -> int:
        """Apply to regular operand values, reducing modulo 2**width."""
        return self.fn(*operands) % (1 << width)


def _standard_operations(width: int) -> dict[str, Operation]:
    mask = (1 << width) - 1

    def rshift(a: int, b: int) -> int:
        return a >> min(b, width)

    def lshift(a: int, b: int) -> int:
        return (a << min(b, width)) & mask

    def arshift(a: int, b: int) -> int:
        # Arithmetic right shift on a two's-complement encoded natural.
        sign = a >> (width - 1)
        shifted = a >> min(b, width)
        if sign:
            shifted |= mask & ~(mask >> min(b, width))
        return shifted

    table = {
        "ADD": Operation("ADD", 2, lambda a, b: a + b),
        "SUB": Operation("SUB", 2, lambda a, b: a - b),
        "MULT": Operation("MULT", 2, lambda a, b: a * b),
        "AND": Operation("AND", 2, lambda a, b: a & b),
        "OR": Operation("OR", 2, lambda a, b: a | b),
        "XOR": Operation("XOR", 2, lambda a, b: a ^ b),
        "MIN": Operation("MIN", 2, min),
        "MAX": Operation("MAX", 2, max),
        "RSHIFT": Operation("RSHIFT", 2, rshift),
        "ARSHIFT": Operation("ARSHIFT", 2, arshift),
        "LSHIFT": Operation("LSHIFT", 2, lshift),
        "PASS": Operation("PASS", 1, lambda a: a),
        "COPY": Operation("COPY", 1, lambda a: a),
        "NEG": Operation("NEG", 1, lambda a: -a),
        "INC": Operation("INC", 1, lambda a: a + 1),
        "DEC": Operation("DEC", 1, lambda a: a - 1),
    }
    # Standard operations are safe to vectorize by name; custom
    # Operation instances (which may reuse these names with different
    # bodies, e.g. the IKS fixed-point MULT) keep vector_key=None.
    return {
        name: Operation(op.name, op.arity, op.fn, vector_key=name)
        for name, op in table.items()
    }


#: Default data width of module arithmetic (bits).
DEFAULT_WIDTH = 32


def standard_operation(name: str) -> Operation:
    """Look up one of the built-in operations by name."""
    ops = _standard_operations(DEFAULT_WIDTH)
    try:
        return ops[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown standard operation {name!r}; available: "
            f"{', '.join(sorted(ops))}"
        ) from None


@dataclass(frozen=True)
class ModuleSpec:
    """Static description of a functional unit.

    Parameters
    ----------
    name:
        Instance name, e.g. ``"ADD"`` or ``"Z_ADD"``.
    operations:
        The operations the unit implements, keyed by name.  A
        single-operation unit needs no op port; a multi-operation unit
        gets one (§3 extension).
    default_op:
        Operation used when the op port is DISC (or absent).
    latency:
        Control steps between operand read (RB) and result availability
        for WA.  0 means combinational within the step (the IKS adders);
        1 is the paper's pipelined adder; 2 the IKS multiplier.
    pipelined:
        Whether new operands may be accepted every step.  Only
        meaningful for latency >= 1; a non-pipelined unit flags operands
        that arrive while it is busy by producing ILLEGAL.
    width:
        Data width in bits; results are reduced modulo ``2**width``.
    sticky_illegal:
        The paper's adder guards its pipeline variable with
        ``if M /= ILLEGAL then ...``: once a conflict has been captured
        the module freezes to ILLEGAL permanently, keeping the error
        visible for the rest of the run.  True (the paper's behaviour)
        by default; set False for modules that should recover after a
        poisoned step (used by the phase-ablation study).
    """

    name: str
    operations: Mapping[str, Operation] = field(default_factory=dict)
    default_op: Optional[str] = None
    latency: int = 1
    pipelined: bool = True
    width: int = DEFAULT_WIDTH
    sticky_illegal: bool = True

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        ops = dict(self.operations)
        if not ops:
            ops = {"ADD": standard_operation("ADD")}
        object.__setattr__(self, "operations", ops)
        if self.default_op is None:
            object.__setattr__(self, "default_op", next(iter(ops)))
        if self.default_op not in ops:
            raise ValueError(
                f"module {self.name!r}: default op {self.default_op!r} not "
                f"among operations {sorted(ops)}"
            )
        arities = {op.arity for op in ops.values()}
        object.__setattr__(self, "_max_arity", max(arities))

    @property
    def arity(self) -> int:
        """Maximum operand count over all operations (port count)."""
        return self._max_arity  # type: ignore[attr-defined]

    @property
    def multi_op(self) -> bool:
        """Whether the unit needs an operation-select port."""
        return len(self.operations) > 1

    def op_code(self, op_name: str) -> int:
        """Encode an operation name as the natural driven on the op port."""
        names = sorted(self.operations)
        try:
            return names.index(op_name)
        except ValueError:
            raise KeyError(
                f"module {self.name!r} has no operation {op_name!r}; "
                f"available: {', '.join(names)}"
            ) from None

    def op_by_code(self, code: int) -> Operation:
        """Decode an op-port value back to the operation."""
        names = sorted(self.operations)
        if not 0 <= code < len(names):
            raise KeyError(f"module {self.name!r}: bad op code {code}")
        return self.operations[names[code]]


def alu_spec(
    name: str,
    op_names: Sequence[str],
    default_op: Optional[str] = None,
    latency: int = 0,
    pipelined: bool = True,
    width: int = DEFAULT_WIDTH,
) -> ModuleSpec:
    """Convenience constructor: a multi-function unit from standard ops."""
    ops = {n.upper(): standard_operation(n) for n in op_names}
    return ModuleSpec(
        name=name,
        operations=ops,
        default_op=default_op.upper() if default_op else None,
        latency=latency,
        pipelined=pipelined,
        width=width,
    )


def _combine(op: Operation, inputs: Sequence[int], width: int) -> int:
    """Combine input-port values per the paper's all-or-none rule."""
    used = inputs[: op.arity]
    if any(v == ILLEGAL for v in used):
        return ILLEGAL
    if all(v == DISC for v in used):
        return DISC
    if any(v == DISC for v in used):
        return ILLEGAL
    return op.apply(used, width)


def make_module(
    sim: Simulator,
    spec: ModuleSpec,
    ph: Signal,
    inputs: Sequence[Signal],
    output: Signal,
    op_port: Optional[Signal] = None,
    tick: Optional[Signal] = None,
) -> None:
    """Instantiate a functional-unit process (paper §2.6).

    ``inputs`` are the module's resolved input-port signals (length =
    ``spec.arity``); ``output`` is its regular output-port signal.
    ``op_port`` is required iff ``spec.multi_op``.  ``tick``, when
    given, is the controller's CM tick (one wakeup per step instead of
    polling every phase; see :func:`make_controller`).
    """
    if len(inputs) != spec.arity:
        raise ValueError(
            f"module {spec.name!r}: expected {spec.arity} input ports, "
            f"got {len(inputs)}"
        )
    if spec.multi_op and op_port is None:
        raise ValueError(
            f"module {spec.name!r} implements several operations and "
            f"needs an op port"
        )
    out_drv = sim.driver(output, owner=spec.name, init=DISC)

    def cm_wait():
        if tick is not None:
            return wait_on(tick)
        return wait_until(lambda: ph.value is Phase.CM, ph)

    def select_operation() -> Optional[Operation]:
        """Pick this step's operation; None means 'emit ILLEGAL'."""
        if op_port is None:
            return spec.operations[spec.default_op]
        code = op_port.value
        if code == DISC:
            return spec.operations[spec.default_op]
        if code == ILLEGAL:
            return None
        try:
            return spec.op_by_code(code)
        except KeyError:
            return None

    if spec.latency == 0:

        def comb_module():
            # Combinational within the step: at CM the output takes the
            # function of this step's operands directly, so WA of the
            # same step can move the result.
            frozen = False
            while True:
                yield cm_wait()
                op = select_operation()
                if op is None:
                    result = ILLEGAL
                else:
                    result = _combine(op, [s.value for s in inputs], spec.width)
                if frozen:
                    result = ILLEGAL
                elif result == ILLEGAL and spec.sticky_illegal:
                    frozen = True
                out_drv.set(result)

        sim.add_process(spec.name, comb_module)
        return

    if spec.pipelined:

        def pipelined_module():
            # The paper's variable-based pipeline, generalized to depth
            # ``latency``: pipe[-1] is the value about to appear on the
            # output port, pipe[0] the freshly combined operands.  With
            # sticky_illegal (the paper's guard ``if M /= ILLEGAL``) the
            # whole unit freezes once a conflict enters the pipe.
            pipe = [DISC] * spec.latency
            frozen = False
            while True:
                yield cm_wait()
                out_drv.set(ILLEGAL if frozen else pipe[-1])
                if frozen:
                    continue
                op = select_operation()
                if op is None:
                    stage = ILLEGAL
                else:
                    stage = _combine(op, [s.value for s in inputs], spec.width)
                if stage == ILLEGAL and spec.sticky_illegal:
                    frozen = True
                pipe[1:] = pipe[:-1]
                pipe[0] = stage

        sim.add_process(spec.name, pipelined_module)
        return

    def nonpipelined_module():
        # Operands accepted at step s deliver the result at step
        # s + latency (same convention as the pipelined units); the
        # unit is busy in between, and operands arriving while busy are
        # a scheduling error that poisons the in-flight result with
        # ILLEGAL so the conflict stays observable.  Minimum initiation
        # interval is therefore latency + 1 steps.
        remaining = 0
        result = DISC
        frozen = False
        while True:
            yield cm_wait()
            if frozen:
                out_drv.set(ILLEGAL)
                continue
            op = select_operation()
            if op is None:
                incoming = ILLEGAL
            else:
                incoming = _combine(op, [s.value for s in inputs], spec.width)
            if remaining > 0:
                remaining -= 1
                if incoming != DISC:
                    result = ILLEGAL
                out_drv.set(result if remaining == 0 else DISC)
            elif incoming != DISC:
                remaining = spec.latency
                result = incoming
                out_drv.set(result if remaining == 0 else DISC)
            else:
                out_drv.set(DISC)
            if result == ILLEGAL and spec.sticky_illegal and remaining == 0:
                frozen = True

    sim.add_process(spec.name, nonpipelined_module)
