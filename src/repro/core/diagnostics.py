"""Conflict localization (paper §2.7).

    "Because of the close relationship of control step phases to the
    VHDL simulation delta cycle, simulation results allow easily to
    locate design errors leading to resource conflicts: it would
    result to ILLEGAL values of resolved signals in specific
    simulation cycles associated with a specific phase of a specific
    control step."

The :class:`ConflictMonitor` implements exactly this: a process that
wakes on every phase change and records, for each resolved signal that
has just become ILLEGAL, the ``(control step, phase)`` at which the
conflict materialized together with the drivers that collided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..kernel import Signal, Simulator, iter_driver_values, wait_on
from .phases import Phase, StepPhase
from .values import DISC, ILLEGAL, format_value


@dataclass(frozen=True)
class ConflictEvent:
    """One observed conflict: ``signal`` became ILLEGAL at ``at``.

    ``sources`` lists the colliding driver contributions at the moment
    of observation, as ``(owner, value)`` pairs with DISC drivers
    filtered out.
    """

    signal: str
    at: StepPhase
    sources: tuple[tuple[str, int], ...]

    def __str__(self) -> str:
        drivers = ", ".join(
            f"{owner}={format_value(value)}" for owner, value in self.sources
        )
        return f"ILLEGAL on {self.signal} at {self.at} (drivers: {drivers})"


class ConflictLog:
    """Backend-independent record of observed conflicts.

    Every simulation backend (the event-driven kernel elaboration, the
    compiled control-step executor, the clocked translation) exposes
    one of these so diagnostics read identically regardless of how the
    model was executed.  Subclasses decide *how* events get in; this
    base only stores and reports them.

    Repeated materializations of the same ``(signal, CS, PH)`` are
    recorded once: a long ILLEGAL plateau re-observed at the same
    localization point adds no information, and the dedup keeps every
    backend's event list identical however its monitor happens to poll
    (events without a location -- the handshake style's token
    conflicts -- are kept verbatim).

    ``listener``, when given, is called with each event that is
    actually recorded -- the hook :mod:`repro.observe` probes use to
    see conflicts in stream order.
    """

    def __init__(
        self, listener: Optional[Callable[[ConflictEvent], None]] = None
    ) -> None:
        self.events: list[ConflictEvent] = []
        self._listener = listener
        self._seen: set[tuple[str, StepPhase]] = set()

    @property
    def clean(self) -> bool:
        """True when no conflict has been observed."""
        return not self.events

    def record(self, event: ConflictEvent) -> None:
        """Append one observed conflict (deduplicated by location)."""
        if event.at is not None:
            key = (event.signal, event.at)
            if key in self._seen:
                return
            self._seen.add(key)
        self.events.append(event)
        if self._listener is not None:
            self._listener(event)

    def report(self) -> str:
        """Multi-line human-readable conflict report."""
        if not self.events:
            return "no conflicts observed"
        lines = [f"{len(self.events)} conflict(s) observed:"]
        lines.extend(f"  {event}" for event in self.events)
        return "\n".join(lines)


class ConflictMonitor(ConflictLog):
    """Watches resolved signals and localizes ILLEGAL values.

    The event-kernel realization of :class:`ConflictLog`: a watcher
    callback on each resolved signal records ILLEGAL transitions as
    they happen (costing nothing while the model is clean), and a
    drain process sensitive to the phase signal attributes each one to
    the ``(control step, phase)`` in force when it appeared -- by the
    time processes run, all of the cycle's signal updates (including
    CS/PH) are final.  A signal is reported once per contiguous
    ILLEGAL episode.
    """

    def __init__(
        self,
        sim: Simulator,
        cs: Signal,
        ph: Signal,
        watched: Sequence[Signal],
        name: str = "conflict_monitor",
        listener: Optional[Callable[[ConflictEvent], None]] = None,
    ) -> None:
        super().__init__(listener=listener)
        self._cs = cs
        self._ph = ph
        self._pending: list[Signal] = []
        self._active: set[str] = set()
        for sig in watched:
            sig.watch(self._on_event)
        sim.add_process(name, self._process)

    def _on_event(self, sig: Signal, old: int, new: int) -> None:
        if new == ILLEGAL:
            if sig.name not in self._active:
                self._active.add(sig.name)
                self._pending.append(sig)
        else:
            self._active.discard(sig.name)

    def _process(self):
        while True:
            yield wait_on(self._ph)
            if not self._pending:
                continue
            at = StepPhase(self._cs.value, Phase(self._ph.value))
            for sig in self._pending:
                sources = tuple(
                    (owner, value)
                    for owner, value in iter_driver_values(sig)
                    if value != DISC
                )
                self.record(ConflictEvent(sig.name, at, sources))
            self._pending.clear()
