"""Register transfers as 9-tuples and their mapping to transfer processes.

Paper §2.1 denotes a register transfer by a tuple such as::

    (R1, B1, R2, B2, 5, ADD, 6, B1, R1)

meaning: in control step 5 the value of register R1 travels via bus B1
to the left input of module ADD and the value of R2 via B2 to the right
input; in control step 6 the module's output travels via B1 into R1.

Paper §2.7 shows that this tuple expands *mechanically* into six TRANS
process instances, and that the expansion is invertible::

    (R1,B1,R2,B2,5,ADD,6,B1,R1) -> R1_out_B1_5,  B1_ADD_in1_5,
                                   R2_out_B2_5,  B2_ADD_in2_5,
                                   ADD_out_B1_6, B1_R1_in_6

    R1_out_B1_5, B1_ADD_in1_5   -> (R1, B1, -, -, 5, ADD, -, -, -)
    ADD_out_B1_6, B1_R1_in_6    -> (-, -, -, -, -, ADD, 6, B1, R1)

This bidirectional mapping is the basis of the paper's formal
semantics; :mod:`repro.verify.roundtrip` proves it is an inverse pair
on well-formed inputs.

Partial tuples (with ``-`` entries) are first-class here, exactly as in
the paper: a tuple may describe only the operand-read half, only the
result-write half, or both.  The *operation-select extension* of §3
(multi-function modules whose operation is chosen per transfer) is the
optional ``op`` field.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional, Sequence

from .phases import Phase

#: Placeholder for absent tuple fields, as printed in the paper.
BLANK = "-"


class TransferError(ValueError):
    """Raised for malformed register transfers or inconsistent specs."""


@dataclass(frozen=True)
class TransSpec:
    """One TRANS process instance: drive ``sink`` with ``source`` at
    phase ``phase`` of control step ``step`` (paper §2.4).

    ``source`` and ``sink`` are *port/bus names*: a register R
    contributes via ``R_out`` and receives via ``R_in``; a module M has
    ``M_in1``, ``M_in2``, ``M_out`` (and ``M_op`` under the
    operation-select extension); a bus's port is the bus name itself.
    """

    step: int
    phase: Phase
    source: str
    sink: str

    def __post_init__(self) -> None:
        if self.step < 1:
            raise TransferError(f"control step must be >= 1, got {self.step}")

    @property
    def name(self) -> str:
        """Instance label in the paper's style, e.g. ``R1_out_B1_5``."""
        return f"{self.source}_{self.sink}_{self.step}"

    def __str__(self) -> str:
        return f"{self.name}@{self.phase.vhdl_name}"


@dataclass(frozen=True)
class RegisterTransfer:
    """A (possibly partial) register transfer 9-tuple.

    Fields mirror the paper's tuple positions:

    ======== =======================================================
    field    paper position
    ======== =======================================================
    src1     1: source of the left operand (register or input port)
    bus1     2: bus carrying the left operand
    src2     3: source of the right operand
    bus2     4: bus carrying the right operand
    read_step 5: control step in which operands are read
    module   6: functional unit performing the operation
    write_step 7: control step in which the result is written
    write_bus  8: bus carrying the result
    dest     9: destination register (or output port)
    ======== =======================================================

    ``op`` is the operation-select extension of §3; when set, an extra
    TRANS instance drives the module's ``_op`` port in the rb phase of
    the read step.
    """

    src1: Optional[str] = None
    bus1: Optional[str] = None
    src2: Optional[str] = None
    bus2: Optional[str] = None
    read_step: Optional[int] = None
    module: str = ""
    write_step: Optional[int] = None
    write_bus: Optional[str] = None
    dest: Optional[str] = None
    op: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.module:
            raise TransferError("a register transfer must name its module")
        if (self.src1 is None) != (self.bus1 is None):
            raise TransferError(
                f"{self}: src1 and bus1 must be given together"
            )
        if (self.src2 is None) != (self.bus2 is None):
            raise TransferError(
                f"{self}: src2 and bus2 must be given together"
            )
        has_read = self.src1 is not None or self.src2 is not None
        if has_read and self.read_step is None:
            raise TransferError(f"{self}: operand sources given without read_step")
        if self.read_step is not None and not has_read:
            raise TransferError(f"{self}: read_step given without operand sources")
        has_write = self.dest is not None
        if has_write and (self.write_step is None or self.write_bus is None):
            raise TransferError(
                f"{self}: dest requires write_step and write_bus"
            )
        if self.write_step is not None and not has_write:
            raise TransferError(f"{self}: write_step given without dest")
        if not has_read and not has_write:
            raise TransferError(f"{self}: neither read nor write half present")
        if self.op is not None and not has_read:
            raise TransferError(
                f"{self}: operation select requires the read half"
            )
        for step in (self.read_step, self.write_step):
            if step is not None and step < 1:
                raise TransferError(f"{self}: control steps start at 1")

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def has_read(self) -> bool:
        """Whether the tuple contains the operand-read half."""
        return self.read_step is not None

    @property
    def has_write(self) -> bool:
        """Whether the tuple contains the result-write half."""
        return self.write_step is not None

    @property
    def complete(self) -> bool:
        """Whether both halves are present (a full 9-tuple)."""
        return self.has_read and self.has_write

    def latency(self) -> Optional[int]:
        """``write_step - read_step`` for complete tuples, else None."""
        if self.complete:
            return self.write_step - self.read_step  # type: ignore[operator]
        return None

    def read_half(self) -> Optional["RegisterTransfer"]:
        """The tuple restricted to its read half, or None."""
        if not self.has_read:
            return None
        return replace(self, write_step=None, write_bus=None, dest=None)

    def write_half(self) -> Optional["RegisterTransfer"]:
        """The tuple restricted to its write half, or None."""
        if not self.has_write:
            return None
        return replace(
            self,
            src1=None,
            bus1=None,
            src2=None,
            bus2=None,
            read_step=None,
            op=None,
        )

    def as_tuple(self) -> tuple:
        """The 9 paper positions, with ``'-'`` for absent fields."""
        fields = (
            self.src1,
            self.bus1,
            self.src2,
            self.bus2,
            self.read_step,
            self.module,
            self.write_step,
            self.write_bus,
            self.dest,
        )
        return tuple(BLANK if f is None else f for f in fields)

    def __str__(self) -> str:
        body = ",".join(str(f) for f in self.as_tuple())
        suffix = f"[{self.op}]" if self.op else ""
        return f"({body}){suffix}"

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    _TUPLE_RE = re.compile(r"^\(([^)]*)\)(?:\[(\w+)\])?$")

    @classmethod
    def parse(cls, text: str) -> "RegisterTransfer":
        """Parse the paper's printed form, e.g.
        ``"(R1,B1,R2,B2,5,ADD,6,B1,R1)"`` or
        ``"(R1,B1,-,-,5,ADD,-,-,-)"``; an optional trailing ``[op]``
        carries the operation-select extension.
        """
        match = cls._TUPLE_RE.match(text.strip())
        if not match:
            raise TransferError(f"not a register-transfer tuple: {text!r}")
        parts = [p.strip() for p in match.group(1).split(",")]
        if len(parts) != 9:
            raise TransferError(
                f"expected 9 fields, got {len(parts)}: {text!r}"
            )

        def field(i: int) -> Optional[str]:
            return None if parts[i] in (BLANK, "") else parts[i]

        def step_field(i: int) -> Optional[int]:
            raw = field(i)
            if raw is None:
                return None
            if not raw.isdigit():
                raise TransferError(
                    f"field {i + 1} must be a control step number, got {raw!r}"
                )
            return int(raw)

        return cls(
            src1=field(0),
            bus1=field(1),
            src2=field(2),
            bus2=field(3),
            read_step=step_field(4),
            module=parts[5],
            write_step=step_field(6),
            write_bus=field(7),
            dest=field(8),
            op=match.group(2),
        )


# ----------------------------------------------------------------------
# endpoint naming
# ----------------------------------------------------------------------
def register_out_port(name: str) -> str:
    """Port through which a register (or design input) sources values."""
    return f"{name}_out"


def register_in_port(name: str) -> str:
    """Port through which a register (or design output) sinks values."""
    return f"{name}_in"


def module_in_port(module: str, index: int) -> str:
    """A module's operand input port (index 1 or 2)."""
    if index not in (1, 2):
        raise TransferError(f"module input index must be 1 or 2, got {index}")
    return f"{module}_in{index}"


def module_out_port(module: str) -> str:
    """A module's result output port."""
    return f"{module}_out"


def module_op_port(module: str) -> str:
    """A module's operation-select port (§3 extension)."""
    return f"{module}_op"


#: Maps a source/destination *name* (register or design port) to the
#: port identifier used on signals.  The default treats every name as a
#: register; :class:`repro.core.model.RTModel` supplies a resolver that
#: also knows about design input/output ports.
PortResolver = Callable[[str], str]


# ----------------------------------------------------------------------
# tuple -> TRANS instances (paper §2.7, forward direction)
# ----------------------------------------------------------------------
def to_trans_specs(
    transfer: RegisterTransfer,
    source_port: PortResolver = register_out_port,
    dest_port: PortResolver = register_in_port,
    op_encoding: Optional[Callable[[str], int]] = None,
) -> list[TransSpec]:
    """Expand a register transfer into its TRANS process instances.

    The expansion follows §2.7 verbatim: each present operand
    contributes an ``ra`` (source to bus) and an ``rb`` (bus to module
    input) instance in the read step; a present write half contributes a
    ``wa`` (module output to bus) and a ``wb`` (bus to register input)
    instance in the write step.  The ``op`` extension contributes one
    ``rb``-phase instance driving the module's op port.

    ``op_encoding`` is unused here (op values are transported
    symbolically at this level) but accepted for interface symmetry with
    the elaborator.
    """
    specs: list[TransSpec] = []
    if transfer.src1 is not None:
        step = transfer.read_step
        assert step is not None and transfer.bus1 is not None
        specs.append(
            TransSpec(step, Phase.RA, source_port(transfer.src1), transfer.bus1)
        )
        specs.append(
            TransSpec(
                step, Phase.RB, transfer.bus1, module_in_port(transfer.module, 1)
            )
        )
    if transfer.src2 is not None:
        step = transfer.read_step
        assert step is not None and transfer.bus2 is not None
        specs.append(
            TransSpec(step, Phase.RA, source_port(transfer.src2), transfer.bus2)
        )
        specs.append(
            TransSpec(
                step, Phase.RB, transfer.bus2, module_in_port(transfer.module, 2)
            )
        )
    if transfer.op is not None:
        step = transfer.read_step
        assert step is not None
        specs.append(
            TransSpec(
                step,
                Phase.RB,
                f"op:{transfer.op}",
                module_op_port(transfer.module),
            )
        )
    if transfer.dest is not None:
        step = transfer.write_step
        assert step is not None and transfer.write_bus is not None
        specs.append(
            TransSpec(
                step, Phase.WA, module_out_port(transfer.module), transfer.write_bus
            )
        )
        specs.append(
            TransSpec(step, Phase.WB, transfer.write_bus, dest_port(transfer.dest))
        )
    return specs


# ----------------------------------------------------------------------
# TRANS instances -> tuples (paper §2.7, inverse direction)
# ----------------------------------------------------------------------
_PORT_RE = re.compile(r"^(?P<base>.+)_(?P<kind>out|in|in1|in2|op)$")


def _split_port(port: str) -> tuple[str, str]:
    """Split ``R1_out`` into ``("R1", "out")``; buses return kind ``bus``."""
    match = _PORT_RE.match(port)
    if match:
        return match.group("base"), match.group("kind")
    return port, "bus"


def from_trans_specs(
    specs: Iterable[TransSpec],
    latency_of: Optional[Callable[[str], int]] = None,
) -> list[RegisterTransfer]:
    """Reconstruct register-transfer tuples from TRANS instances.

    Without ``latency_of`` the result contains *partial* tuples exactly
    as the paper derives them (read halves and write halves).  With a
    ``latency_of(module) -> steps`` callback, a write half at step
    ``s + latency`` is merged into the read half at step ``s`` of the
    same module, reconstructing complete 9-tuples.

    Raises :class:`TransferError` on inconsistent spec sets (an rb
    instance whose bus was never loaded in that step, two operands on
    the same module port, and so on).
    """
    ra: dict[tuple[int, str], str] = {}  # (step, bus) -> source name
    wa: dict[tuple[int, str], str] = {}  # (step, bus) -> module name
    reads: dict[tuple[int, str], dict] = {}  # (step, module) -> fields
    writes: dict[tuple[int, str], dict] = {}  # (step, module) -> fields
    spec_list = sorted(specs, key=lambda s: (s.step, int(s.phase), s.sink))

    for spec in spec_list:
        if spec.phase is Phase.RA:
            key = (spec.step, spec.sink)
            if key in ra:
                raise TransferError(
                    f"{spec}: bus {spec.sink!r} already loaded from "
                    f"{ra[key]!r} in step {spec.step}"
                )
            base, kind = _split_port(spec.source)
            if kind != "out":
                raise TransferError(
                    f"{spec}: ra-phase source must be an output port"
                )
            ra[key] = base
        elif spec.phase is Phase.WA:
            key = (spec.step, spec.sink)
            if key in wa:
                raise TransferError(
                    f"{spec}: bus {spec.sink!r} already written by "
                    f"{wa[key]!r} in step {spec.step}"
                )
            base, kind = _split_port(spec.source)
            if kind != "out":
                raise TransferError(
                    f"{spec}: wa-phase source must be a module output port"
                )
            wa[key] = base

    for spec in spec_list:
        if spec.phase is Phase.RB:
            base, kind = _split_port(spec.sink)
            if kind == "op":
                entry = reads.setdefault((spec.step, base), {})
                if not spec.source.startswith("op:"):
                    raise TransferError(
                        f"{spec}: op-port source must be an op literal"
                    )
                entry["op"] = spec.source[3:]
                continue
            if kind not in ("in1", "in2"):
                raise TransferError(
                    f"{spec}: rb-phase sink must be a module input port"
                )
            source = ra.get((spec.step, spec.source))
            if source is None:
                raise TransferError(
                    f"{spec}: bus {spec.source!r} carries no value in "
                    f"step {spec.step} (missing ra instance)"
                )
            entry = reads.setdefault((spec.step, base), {})
            slot = "1" if kind == "in1" else "2"
            if f"src{slot}" in entry:
                raise TransferError(
                    f"{spec}: module port {spec.sink!r} already fed in "
                    f"step {spec.step}"
                )
            entry[f"src{slot}"] = source
            entry[f"bus{slot}"] = spec.source
        elif spec.phase is Phase.WB:
            base, kind = _split_port(spec.sink)
            if kind != "in":
                raise TransferError(
                    f"{spec}: wb-phase sink must be a register input port"
                )
            module = wa.get((spec.step, spec.source))
            if module is None:
                raise TransferError(
                    f"{spec}: bus {spec.source!r} carries no module output "
                    f"in step {spec.step} (missing wa instance)"
                )
            key = (spec.step, module)
            if key in writes:
                raise TransferError(
                    f"{spec}: module {module!r} result already stored in "
                    f"step {spec.step}"
                )
            writes[key] = {"write_bus": spec.source, "dest": base}

    transfers: list[RegisterTransfer] = []
    consumed_writes: set[tuple[int, str]] = set()
    for (step, module), fields in sorted(reads.items()):
        write_fields: dict = {}
        if latency_of is not None:
            wkey = (step + latency_of(module), module)
            if wkey in writes:
                write_fields = {
                    "write_step": wkey[0],
                    "write_bus": writes[wkey]["write_bus"],
                    "dest": writes[wkey]["dest"],
                }
                consumed_writes.add(wkey)
        transfers.append(
            RegisterTransfer(
                src1=fields.get("src1"),
                bus1=fields.get("bus1"),
                src2=fields.get("src2"),
                bus2=fields.get("bus2"),
                read_step=step,
                module=module,
                op=fields.get("op"),
                **write_fields,
            )
        )
    for (step, module), fields in sorted(writes.items()):
        if (step, module) in consumed_writes:
            continue
        transfers.append(
            RegisterTransfer(
                module=module,
                write_step=step,
                write_bus=fields["write_bus"],
                dest=fields["dest"],
            )
        )
    return transfers


def expand_all(
    transfers: Sequence[RegisterTransfer],
    source_port: PortResolver = register_out_port,
    dest_port: PortResolver = register_in_port,
) -> list[TransSpec]:
    """Expand a whole schedule of transfers into TRANS instances."""
    specs: list[TransSpec] = []
    for transfer in transfers:
        specs.extend(to_trans_specs(transfer, source_port, dest_port))
    return specs
