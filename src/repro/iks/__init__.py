"""The IKS chip case study (S8, paper §3 / Fig. 3).

Fixed-point arithmetic (:mod:`fixedpoint`), the CORDIC core
(:mod:`cordic`), the algorithmic-level inverse-kinematics reference
(:mod:`algorithm`), the Fig.-3 chip model (:mod:`chip`), the IK
microprogram and the paper's code-map example (:mod:`microprogram`),
and the end-to-end flow (:mod:`flow`).
"""

from .algorithm import (
    ArmGeometry,
    IK3Solution,
    IKSolution,
    forward_kinematics,
    forward_kinematics3,
    reference_ik_float,
    solve_ik,
    solve_ik3,
)
from .chip import ACCUMULATORS, IKSConfig, ROM_LAYOUT, build_chip
from .cordic import CordicSpec, atan2, cos, magnitude, sin, sin_cos
from .fixedpoint import DEFAULT_FORMAT, FxFormat
from .flow import (
    FKRun,
    IK3Run,
    IKSRun,
    build_ik3_model,
    build_ik_model,
    crosscheck,
    fk_of_ik,
    run_fk_chip,
    run_ik3_chip,
    run_ik_chip,
)
from .microprogram import (
    FK_INPUT_SLOTS,
    FK_RESULT_REGISTERS,
    IK3_RESULT_REGISTERS,
    IK3_TOTAL_STEPS,
    RESULT_REGISTERS,
    ProgramBuilder,
    fk_microprogram,
    ik3_epilogue,
    ik3_prologue,
    ik_microprogram,
    paper_addr7_instruction,
    paper_code_maps,
)

__all__ = [
    "ACCUMULATORS",
    "ArmGeometry",
    "CordicSpec",
    "DEFAULT_FORMAT",
    "FKRun",
    "FK_INPUT_SLOTS",
    "FK_RESULT_REGISTERS",
    "FxFormat",
    "IK3Run",
    "IK3Solution",
    "IK3_RESULT_REGISTERS",
    "IK3_TOTAL_STEPS",
    "IKSConfig",
    "IKSRun",
    "IKSolution",
    "ProgramBuilder",
    "RESULT_REGISTERS",
    "ROM_LAYOUT",
    "atan2",
    "build_chip",
    "build_ik3_model",
    "build_ik_model",
    "cos",
    "crosscheck",
    "fk_microprogram",
    "fk_of_ik",
    "forward_kinematics",
    "forward_kinematics3",
    "ik3_epilogue",
    "ik3_prologue",
    "ik_microprogram",
    "magnitude",
    "paper_addr7_instruction",
    "paper_code_maps",
    "reference_ik_float",
    "run_fk_chip",
    "run_ik3_chip",
    "run_ik_chip",
    "sin",
    "sin_cos",
    "solve_ik",
    "solve_ik3",
]
