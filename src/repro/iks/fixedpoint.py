"""Signed fixed-point arithmetic encoded into the subset's naturals.

The subset's regular values are natural numbers (paper §2.3); the IKS
chip computes with signed fixed-point data.  The bridge is standard
two's-complement encoding at a fixed word width: a signed Q-format
number is stored as its width-bit two's-complement pattern, which *is*
a natural number, and the RT modules operate on those patterns with
modulo-``2**width`` arithmetic.

The default format is Q17.14 in a 32-bit word (14 fraction bits),
which comfortably covers the IKS working range (link lengths of a few
units, squared radii, angles in radians) at ~6 decimal digits of
resolution.

All helpers here are pure functions; :class:`FxFormat` carries the
format parameters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FxFormat:
    """A signed fixed-point format: ``width``-bit words with ``frac``
    fraction bits."""

    width: int = 32
    frac: int = 14

    def __post_init__(self) -> None:
        if self.width < 2:
            raise ValueError(f"width must be >= 2, got {self.width}")
        if not 0 <= self.frac < self.width:
            raise ValueError(
                f"frac must be in [0, width), got {self.frac} for width "
                f"{self.width}"
            )

    # -- ranges --------------------------------------------------------
    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def scale(self) -> int:
        """Integer representing 1.0."""
        return 1 << self.frac

    @property
    def min_signed(self) -> int:
        return -(1 << (self.width - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.width - 1)) - 1

    # -- encode / decode -------------------------------------------------
    def encode(self, value: float) -> int:
        """Real number -> natural (two's-complement bit pattern).

        Rounds to nearest; saturates at the format bounds (the hardware
        would saturate or wrap -- saturation keeps numeric experiments
        interpretable and is what the MACC datapath of [10] does).
        """
        raw = round(value * self.scale)
        raw = max(self.min_signed, min(self.max_signed, raw))
        return raw & self.mask

    def decode(self, pattern: int) -> float:
        """Natural (bit pattern) -> real number."""
        return self.to_signed(pattern) / self.scale

    def to_signed(self, pattern: int) -> int:
        """Bit pattern -> signed integer (the raw Q value)."""
        pattern &= self.mask
        if pattern >> (self.width - 1):
            return pattern - (1 << self.width)
        return pattern

    def from_signed(self, raw: int) -> int:
        """Signed integer (raw Q value) -> bit pattern, saturating."""
        raw = max(self.min_signed, min(self.max_signed, raw))
        return raw & self.mask

    # -- arithmetic on patterns -----------------------------------------
    def add(self, a: int, b: int) -> int:
        return self.from_signed(self.to_signed(a) + self.to_signed(b))

    def sub(self, a: int, b: int) -> int:
        return self.from_signed(self.to_signed(a) - self.to_signed(b))

    def neg(self, a: int) -> int:
        return self.from_signed(-self.to_signed(a))

    def mul(self, a: int, b: int) -> int:
        """Fixed-point multiply: ``(a * b) >> frac`` with sign."""
        product = self.to_signed(a) * self.to_signed(b)
        return self.from_signed(_round_shift(product, self.frac))

    def arshift(self, a: int, amount: int) -> int:
        """Arithmetic right shift of the signed value."""
        if amount < 0:
            raise ValueError(f"shift amount must be >= 0, got {amount}")
        return self.from_signed(self.to_signed(a) >> min(amount, self.width))

    def sqrt(self, a: int) -> int:
        """Fixed-point square root of a non-negative pattern.

        Computed exactly as ``isqrt(a << frac)`` -- the same bit-exact
        function the CORDIC hyperbolic pipeline converges to, so the
        algorithmic reference and the RT model agree bit for bit.
        Negative inputs clamp to 0 (domain error on real hardware).
        """
        signed = self.to_signed(a)
        if signed <= 0:
            return 0
        return self.from_signed(_isqrt(signed << self.frac))

    def compare(self, a: int, b: int) -> int:
        """-1 / 0 / +1 comparison of two encoded values."""
        sa, sb = self.to_signed(a), self.to_signed(b)
        return (sa > sb) - (sa < sb)


def _round_shift(value: int, amount: int) -> int:
    """Shift right with round-to-nearest (ties away from zero)."""
    if amount == 0:
        return value
    half = 1 << (amount - 1)
    if value >= 0:
        return (value + half) >> amount
    return -((-value + half) >> amount)


def _isqrt(value: int) -> int:
    """Integer square root (floor), digit-by-digit like the hardware."""
    if value < 0:
        raise ValueError("isqrt of negative value")
    result = 0
    bit = 1 << (max(value.bit_length(), 2) & ~1)
    while bit > value:
        bit >>= 2
    while bit:
        if value >= result + bit:
            value -= result + bit
            result = (result >> 1) + bit
        else:
            result >>= 1
        bit >>= 2
    return result


#: The default format used by the IKS chip model.
DEFAULT_FORMAT = FxFormat(width=32, frac=14)
