"""End-to-end IKS flow: microcode -> RT model -> simulation -> angles.

This is the paper's §3 scenario in one call: build the Fig.-3 chip,
translate the microprogram into register transfers (the C program's
job), simulate the clock-free RT model, and decode the joint angles --
then optionally compare them against the algorithmic-level reference
(the "bottom-up evaluation" the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine import Backend
from ..microcode.translator import MicrocodeTranslator, TranslationResult
from .algorithm import IKSolution, solve_ik
from .chip import ACCUMULATORS, IKSConfig, build_chip
from .microprogram import RESULT_REGISTERS, ik_microprogram


@dataclass
class IKSRun:
    """Everything produced by one chip run."""

    simulation: Backend
    translation: TranslationResult
    theta1: int
    theta2: int
    theta1_rad: float
    theta2_rad: float

    @property
    def clean(self) -> bool:
        """True when the run produced no resource conflict."""
        return self.simulation.clean


def build_ik_model(px: float, py: float, config: Optional[IKSConfig] = None):
    """Chip model + translated IK microprogram, ready to elaborate.

    Returns ``(model, translation)``.
    """
    cfg = config or IKSConfig()
    model = build_chip(cfg, px=px, py=py)
    table, maps = ik_microprogram()
    translator = MicrocodeTranslator(model, ACCUMULATORS)
    translation = translator.translate(table, maps)
    return model, translation


def run_ik_chip(
    px: float,
    py: float,
    config: Optional[IKSConfig] = None,
    trace: bool = False,
    backend: str = "event",
    transfer_engine: bool = True,
    observe=None,
    shards: Optional[int] = None,
    plan_cache=None,
) -> IKSRun:
    """Simulate the IKS chip solving for target ``(px, py)``."""
    cfg = config or IKSConfig()
    model, translation = build_ik_model(px, py, cfg)
    sim = model.elaborate(
        trace=trace, backend=backend, transfer_engine=transfer_engine,
        observe=observe, shards=shards, plan_cache=plan_cache,
    ).run()
    theta1 = sim[RESULT_REGISTERS["theta1"]]
    theta2 = sim[RESULT_REGISTERS["theta2"]]
    return IKSRun(
        simulation=sim,
        translation=translation,
        theta1=theta1,
        theta2=theta2,
        theta1_rad=cfg.fmt.decode(theta1),
        theta2_rad=cfg.fmt.decode(theta2),
    )


def crosscheck(
    px: float,
    py: float,
    config: Optional[IKSConfig] = None,
    backend: str = "event",
    transfer_engine: bool = True,
    trace: bool = False,
    observe=None,
    shards: Optional[int] = None,
    plan_cache=None,
) -> tuple[IKSRun, IKSolution]:
    """Run chip and algorithmic reference on the same target.

    The two must agree *bit-exactly*: the RT model executes the same
    integer operations in the same order as :func:`solve_ik`.
    """
    cfg = config or IKSConfig()
    run = run_ik_chip(
        px, py, cfg, trace=trace, backend=backend,
        transfer_engine=transfer_engine, observe=observe, shards=shards,
        plan_cache=plan_cache,
    )
    reference = solve_ik(px, py, cfg.geometry, cfg.fmt, cfg.cordic_spec)
    return run, reference


@dataclass
class FKRun:
    """Result of running the forward-kinematics microprogram."""

    simulation: Backend
    x: int
    y: int
    x_real: float
    y_real: float

    @property
    def clean(self) -> bool:
        return self.simulation.clean


def run_fk_chip(
    theta1: float,
    theta2: float,
    config: Optional[IKSConfig] = None,
) -> FKRun:
    """Simulate the chip computing forward kinematics for the angles."""
    from .chip import build_chip as _build_chip
    from .microprogram import (
        FK_INPUT_SLOTS,
        FK_RESULT_REGISTERS,
        fk_microprogram,
    )

    cfg = config or IKSConfig(cs_max=31)
    model = _build_chip(
        cfg,
        j_values={
            FK_INPUT_SLOTS["theta1"]: theta1,
            FK_INPUT_SLOTS["theta2"]: theta2,
        },
    )
    table, maps = fk_microprogram()
    MicrocodeTranslator(model, ACCUMULATORS).translate(table, maps)
    sim = model.elaborate().run()
    x = sim[FK_RESULT_REGISTERS["x"]]
    y = sim[FK_RESULT_REGISTERS["y"]]
    return FKRun(
        simulation=sim,
        x=x,
        y=y,
        x_real=cfg.fmt.decode(x),
        y_real=cfg.fmt.decode(y),
    )


@dataclass
class IK3Run:
    """Result of the three-DOF chip run."""

    simulation: Backend
    theta1: int
    theta2: int
    theta3: int
    theta1_rad: float
    theta2_rad: float
    theta3_rad: float

    @property
    def clean(self) -> bool:
        return self.simulation.clean


def build_ik3_model(
    px: float, py: float, phi: float, config: Optional[IKSConfig] = None
):
    """Chip model with the composed 3-DOF program (prologue + two-link
    body + epilogue) translated onto it."""
    from .chip import build_chip as _build_chip
    from .microprogram import (
        IK3_BODY_STEPS,
        IK3_PROLOGUE_STEPS,
        IK3_TOTAL_STEPS,
        ik3_epilogue,
        ik3_prologue,
    )

    cfg = config or IKSConfig(cs_max=IK3_TOTAL_STEPS + 1)
    model = _build_chip(cfg, px=px, py=py, j_values={4: phi})
    for table, maps, start in (
        (*ik3_prologue(), 1),
        (*ik_microprogram(), IK3_PROLOGUE_STEPS + 1),
        (*ik3_epilogue(), IK3_PROLOGUE_STEPS + IK3_BODY_STEPS + 1),
    ):
        MicrocodeTranslator(model, ACCUMULATORS, start_step=start).translate(
            table, maps
        )
    return model


def run_ik3_chip(
    px: float,
    py: float,
    phi: float,
    config: Optional[IKSConfig] = None,
    backend: str = "event",
    transfer_engine: bool = True,
    trace: bool = False,
    observe=None,
    shards: Optional[int] = None,
    plan_cache=None,
) -> IK3Run:
    """Simulate the chip solving the 3-DOF problem (position + tool
    orientation)."""
    from .microprogram import IK3_RESULT_REGISTERS, IK3_TOTAL_STEPS

    cfg = config or IKSConfig(cs_max=IK3_TOTAL_STEPS + 1)
    model = build_ik3_model(px, py, phi, cfg)
    sim = model.elaborate(
        backend=backend, transfer_engine=transfer_engine, trace=trace,
        observe=observe, shards=shards, plan_cache=plan_cache,
    ).run()
    theta1 = sim[IK3_RESULT_REGISTERS["theta1"]]
    theta2 = sim[IK3_RESULT_REGISTERS["theta2"]]
    theta3 = sim[IK3_RESULT_REGISTERS["theta3"]]
    return IK3Run(
        simulation=sim,
        theta1=theta1,
        theta2=theta2,
        theta3=theta3,
        theta1_rad=cfg.fmt.decode(theta1),
        theta2_rad=cfg.fmt.decode(theta2),
        theta3_rad=cfg.fmt.decode(theta3),
    )


def fk_of_ik(
    px: float, py: float, config: Optional[IKSConfig] = None
) -> tuple[IKSRun, FKRun]:
    """The on-chip consistency loop: FK(IK(target)) ~= target.

    The joint angles computed by the IK microprogram are fed back
    into the FK microprogram; the returned FK coordinates must land
    on the original target up to fixed-point quantization.
    """
    cfg = config or IKSConfig()
    ik = run_ik_chip(px, py, cfg)
    fk_cfg = IKSConfig(
        geometry=cfg.geometry, fmt=cfg.fmt, cs_max=31,
        cordic_latency=cfg.cordic_latency, mult_latency=cfg.mult_latency,
    )
    fk = run_fk_chip(ik.theta1_rad, ik.theta2_rad, fk_cfg)
    return ik, fk
