"""The IKS chip as a clock-free register-transfer model (paper Fig. 3).

Resources, following the figure and §3:

* register files ``R[]`` (results, dual-ported in [10]), ``J[]``
  (joint/input values) and the coefficient ROM ``M[]``;
* working registers ``P`` (product), ``X``, ``Y``, ``Z``
  (accumulators), ``r`` and ``zang`` (CORDIC operand/result), the
  adder operand registers ``x1 x2 y1 y2 z1 z2``, and the flag ``F``;
* shared buses ``BusA`` and ``BusB`` plus the direct links of the
  figure, which the model desugars into dedicated buses and COPY
  modules exactly as §3 prescribes;
* functional units: the 2-stage pipelined multiplier ``MULT``, the
  non-pipelined (combinational, latency 0) adders ``X_ADD``/``Y_ADD``/
  ``Z_ADD`` -- "the adders may perform several arithmetical
  operations", hence their op-select ports -- and the ``CORDIC`` core.

Unit operations work on two's-complement fixed-point patterns
(:mod:`repro.iks.fixedpoint`); the CORDIC operations call the same
integer CORDIC as the algorithmic reference, so RT simulation results
are bit-identical to :func:`repro.iks.algorithm.solve_ik`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.model import RTModel
from ..core.modules_lib import ModuleSpec, Operation
from . import cordic as _cordic
from .algorithm import ArmGeometry
from .cordic import CordicSpec
from .fixedpoint import DEFAULT_FORMAT, FxFormat

#: Destination (accumulator) register of each functional unit.
ACCUMULATORS: Mapping[str, str] = {
    "MULT": "P",
    "X_ADD": "X",
    "Y_ADD": "Y",
    "Z_ADD": "Z",
    "CORDIC": "zang",
}

#: Ordered names of the coefficient-ROM entries (``M0`` .. ``M5``).
ROM_LAYOUT = ("L1", "L2", "ONE", "INV_2L1L2", "L1SQ_PLUS_L2SQ", "L3")

#: Maximum shift amount provided by the adders' input shifters.
MAX_SHIFT = 15


@dataclass(frozen=True)
class IKSConfig:
    """Configuration of the chip model."""

    geometry: ArmGeometry = field(default_factory=ArmGeometry)
    fmt: FxFormat = DEFAULT_FORMAT
    r_file_size: int = 8
    j_file_size: int = 8
    cs_max: int = 50
    #: Latency of the CORDIC core in control steps.
    cordic_latency: int = 4
    #: Latency of the 2-stage pipelined multiplier.
    mult_latency: int = 2

    @property
    def cordic_spec(self) -> CordicSpec:
        return CordicSpec(self.fmt)


def adder_operations(fmt: FxFormat) -> dict[str, Operation]:
    """The multi-function adder: ADD, SUB and shift-add variants.

    ``ADD_SHR<k>`` computes ``a + arshift(b, k)`` -- the built-in
    shifter on one adder input that the microcode's
    ``X := 0 + Rshift(x2, i)`` uses.
    """
    ops = {
        "ADD": Operation("ADD", 2, fmt.add),
        "SUB": Operation("SUB", 2, fmt.sub),
    }
    for k in range(MAX_SHIFT + 1):
        name = f"ADD_SHR{k}"
        ops[name] = Operation(
            name, 2, (lambda a, b, _k=k: fmt.add(a, fmt.arshift(b, _k)))
        )
    return ops


def multiplier_operations(fmt: FxFormat) -> dict[str, Operation]:
    """The MACC multiplier: fixed-point multiply."""
    return {"FXMUL": Operation("FXMUL", 2, fmt.mul)}


def cordic_operations(spec: CordicSpec) -> dict[str, Operation]:
    """The CORDIC core's operation set.

    ``ATAN2(y, x)`` reads y on in1 and x on in2; ``SQRT``/``SIN``/
    ``COS`` are unary; ``MAG`` is the gain-compensated magnitude.
    """
    fmt = spec.fmt
    return {
        "ATAN2": Operation("ATAN2", 2, lambda y, x: _cordic.atan2(spec, y, x)),
        "MAG": Operation("MAG", 2, lambda x, y: _cordic.magnitude(spec, x, y)),
        "SQRT": Operation("SQRT", 1, fmt.sqrt),
        "SIN": Operation("SIN", 1, lambda a: _cordic.sin(spec, a)),
        "COS": Operation("COS", 1, lambda a: _cordic.cos(spec, a)),
    }


def build_chip(
    config: Optional[IKSConfig] = None,
    px: float = 0.0,
    py: float = 0.0,
    j_values: Optional[Mapping[int, float]] = None,
) -> RTModel:
    """Build the Fig.-3 RT model, preloaded with input values.

    ``J0``/``J1`` receive the encoded target coordinates (the chip's
    input registers); ``j_values`` may preload further J-file entries
    (the forward-kinematics program takes joint angles in J2/J3).  The
    ``M`` ROM receives the geometry constants.  The returned model has
    no transfers yet -- the microprogram translator adds them
    (:mod:`repro.iks.microprogram`).
    """
    cfg = config or IKSConfig()
    fmt = cfg.fmt
    model = RTModel("iks_chip", cs_max=cfg.cs_max, width=fmt.width)

    # -- register files -------------------------------------------------
    for i in range(cfg.r_file_size):
        model.register(f"R{i}")
    inputs = {0: fmt.encode(px), 1: fmt.encode(py)}
    for index, value in (j_values or {}).items():
        inputs[index] = fmt.encode(value)
    for i in range(cfg.j_file_size):
        model.register(f"J{i}", init=inputs.get(i, 0))
    rom = cfg.geometry.rom_constants(fmt)
    for i, key in enumerate(ROM_LAYOUT):
        model.register(f"M{i}", init=rom[key])

    # -- working registers ------------------------------------------------
    for name in ("P", "X", "Y", "Z", "r", "zang", "F"):
        model.register(name)
    for name in ("x1", "x2", "y1", "y2", "z1", "z2"):
        model.register(name)

    # -- shared buses -----------------------------------------------------
    model.bus("BusA")
    model.bus("BusB")

    # -- functional units ---------------------------------------------------
    model.module(
        ModuleSpec(
            "MULT",
            operations=multiplier_operations(fmt),
            latency=cfg.mult_latency,
            pipelined=True,
            width=fmt.width,
        )
    )
    for adder in ("X_ADD", "Y_ADD", "Z_ADD"):
        model.module(
            ModuleSpec(
                adder,
                operations=adder_operations(fmt),
                default_op="ADD",
                latency=0,
                pipelined=True,
                width=fmt.width,
            )
        )
    model.module(
        ModuleSpec(
            "CORDIC",
            operations=cordic_operations(cfg.cordic_spec),
            default_op="ATAN2",
            latency=cfg.cordic_latency,
            pipelined=False,
            width=fmt.width,
        )
    )
    return model


def rom_value(model: RTModel, key: str) -> int:
    """The encoded constant stored at ROM entry ``key``."""
    index = ROM_LAYOUT.index(key)
    return model.registers[f"M{index}"].init
