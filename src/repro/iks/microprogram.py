"""The IKS microprogram and its code maps (paper §3).

Two artifacts live here:

* :func:`paper_code_maps` -- the exact opc1=20 / opc2=2 decode entries
  the paper prints, from which the addr-7 table row derives the
  transfers ``(J[6],BusA,y2,1)`` and ``(Y,direct,x2,1)`` and the unit
  operations ``Z := 0 + 0``, ``X := 0 + Rshift(x2,i)``, ``Y := 0 + y2``
  and ``F := 1`` (experiment E7 checks this verbatim);

* :func:`ik_microprogram` -- a complete microprogram computing the
  planar two-link inverse-kinematics solution on the chip of
  :mod:`repro.iks.chip`, hand-scheduled around the unit latencies
  (MULT: 2 pipelined, CORDIC: 4 non-pipelined, adders: 0).  Its RT
  translation simulates bit-identically to
  :func:`repro.iks.algorithm.solve_ik`, which is the paper's
  bottom-up verification scenario (experiment E6).

The :class:`ProgramBuilder` allocates opc codes for each distinct
routing/operation pattern, mimicking how real microcode shares decode
ROM entries between instructions that differ only in operand fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..microcode.codemaps import (
    DIRECT,
    CodeMaps,
    FlagSet,
    OperationCode,
    RegRef,
    Route,
    RoutingCode,
    UnitOp,
)
from ..microcode.table import MicroInstruction, MicrocodeFormat, MicrocodeTable

#: Operand fields of the IKS microword: ``m`` indexes the coefficient
#: ROM / carries shift amounts, ``J`` indexes the J file, ``R1``
#: indexes the R file, ``MR`` is the second ROM/file index.
IKS_FIELDS = ("m", "J", "R1", "MR")


def paper_code_maps() -> CodeMaps:
    """The §3 example decode entries: opc1=20 and opc2=2.

    opc1=20 routes ``J[<J>]`` over BusA into ``y2`` and ``Y`` over a
    direct link into ``x2``; opc2=2 performs ``Z := 0 + 0``,
    ``X := 0 + Rshift(x2, <m>)``, ``Y := 0 + y2`` and sets flag F.
    """
    maps = CodeMaps()
    maps.add_routing(
        RoutingCode(
            code=20,
            routes=(
                Route("BusA", RegRef("J", index_field="J"), RegRef("y2")),
                Route(DIRECT, RegRef("Y"), RegRef("x2")),
            ),
        )
    )
    maps.add_operations(
        OperationCode(
            code=2,
            unit_ops=(
                UnitOp("Z_ADD", "ADD", RegRef.const(0), RegRef.const(0)),
                UnitOp(
                    "X_ADD",
                    "ADD",
                    RegRef.const(0),
                    RegRef("x2"),
                    shift_field="m",
                ),
                UnitOp("Y_ADD", "ADD", RegRef.const(0), RegRef("y2")),
            ),
            flags=(FlagSet("F", 1),),
        )
    )
    return maps


def paper_addr7_instruction() -> MicroInstruction:
    """The microprogram-store entry at address 7 from the paper's
    table (opc1=20, opc2=2, J field = 6)."""
    return MicroInstruction(
        addr=7, opc1=20, opc2=2, fields={"m": 2, "J": 6, "R1": 0, "MR": 0}
    )


# ----------------------------------------------------------------------
# program builder
# ----------------------------------------------------------------------
@dataclass
class ProgramBuilder:
    """Accumulates microinstructions, allocating opc codes on demand.

    Identical routing patterns share an opc1 code and identical
    operation patterns share an opc2 code (indexed operand fields make
    that sharing meaningful, as in real horizontal microcode).
    Code 0 is reserved for "no routes" / "no operations".
    """

    fields: Sequence[str] = IKS_FIELDS
    _routing_codes: dict = field(default_factory=dict)
    _operation_codes: dict = field(default_factory=dict)
    _maps: CodeMaps = field(default_factory=CodeMaps)
    _table: Optional[MicrocodeTable] = None
    _next_addr: int = 1

    def __post_init__(self) -> None:
        self._table = MicrocodeTable(MicrocodeFormat(tuple(self.fields)))
        self._routing_codes[()] = 0
        self._maps.add_routing(RoutingCode(code=0))
        self._operation_codes[((), ())] = 0
        self._maps.add_operations(OperationCode(code=0))

    def instr(
        self,
        routes: Sequence[Route] = (),
        ops: Sequence[UnitOp] = (),
        flags: Sequence[FlagSet] = (),
        **field_values: int,
    ) -> MicroInstruction:
        """Append one microinstruction (at the next address)."""
        opc1 = self._routing_code(tuple(routes))
        opc2 = self._operation_code(tuple(ops), tuple(flags))
        values = {name: field_values.pop(name, 0) for name in self.fields}
        if field_values:
            raise ValueError(
                f"unknown operand fields {sorted(field_values)}; "
                f"format has {list(self.fields)}"
            )
        instruction = MicroInstruction(
            addr=self._next_addr, opc1=opc1, opc2=opc2, fields=values
        )
        self._table.add(instruction)
        self._next_addr += 1
        return instruction

    def nop(self, count: int = 1) -> None:
        """Append idle microinstructions (latency padding)."""
        for _ in range(count):
            self.instr()

    def build(self) -> tuple[MicrocodeTable, CodeMaps]:
        """The finished program and its decode tables."""
        return self._table, self._maps

    # -- internals --------------------------------------------------------
    def _routing_code(self, routes: tuple) -> int:
        if routes not in self._routing_codes:
            code = len(self._routing_codes)
            self._routing_codes[routes] = code
            self._maps.add_routing(RoutingCode(code=code, routes=routes))
        return self._routing_codes[routes]

    def _operation_code(self, ops: tuple, flags: tuple) -> int:
        key = (ops, flags)
        if key not in self._operation_codes:
            code = len(self._operation_codes)
            self._operation_codes[key] = code
            self._maps.add_operations(
                OperationCode(code=code, unit_ops=ops, flags=flags)
            )
        return self._operation_codes[key]


# ----------------------------------------------------------------------
# the inverse-kinematics microprogram
# ----------------------------------------------------------------------
def _ref(name: str) -> RegRef:
    return RegRef(name)


def _j() -> RegRef:
    return RegRef("J", index_field="J")


def _m() -> RegRef:
    return RegRef("M", index_field="m")


def _r_dest() -> RegRef:
    return RegRef("R", index_field="R1")


def ik_microprogram() -> tuple[MicrocodeTable, CodeMaps]:
    """The complete two-link IK microprogram.

    Register plan (M ROM layout per :data:`repro.iks.chip.ROM_LAYOUT`):
    ``M0=L1, M1=L2, M2=1.0, M3=1/(2 L1 L2), M4=L1^2+L2^2``; inputs
    ``J0=px, J1=py``; results ``R0=theta1, R1=theta2`` (``R2`` holds
    the intermediate ``s2``).
    """
    b = ProgramBuilder()
    busA, busB = "BusA", "BusB"

    def route(bus, src, dst):
        return Route(bus, src, dst)

    mult = lambda: UnitOp("MULT", "FXMUL", _ref("x1"), _ref("x2"))  # noqa: E731
    zadd = lambda op: UnitOp("Z_ADD", op, _ref("z1"), _ref("z2"))  # noqa: E731

    # 1: px -> x1, x2
    b.instr(routes=[route(busA, _j(), _ref("x1")), route(busB, _j(), _ref("x2"))], J=0)
    # 2: P := px*px (ready cs5); py -> x1, x2
    b.instr(
        routes=[route(busA, _j(), _ref("x1")), route(busB, _j(), _ref("x2"))],
        ops=[mult()],
        J=1,
    )
    # 3: P := py*py (ready cs6)
    b.instr(ops=[mult()])
    # 4: idle (multiplier pipeline)
    b.nop()
    # 5: px^2 -> z1
    b.instr(routes=[route(busA, _ref("P"), _ref("z1"))])
    # 6: py^2 -> z2
    b.instr(routes=[route(busA, _ref("P"), _ref("z2"))])
    # 7: Z := r2 = px^2 + py^2
    b.instr(ops=[zadd("ADD")])
    # 8: r2 -> z1, M4 -> z2
    b.instr(
        routes=[route(busA, _ref("Z"), _ref("z1")), route(busB, _m(), _ref("z2"))],
        m=4,
    )
    # 9: Z := t = r2 - (L1^2+L2^2)
    b.instr(ops=[zadd("SUB")])
    # 10: t -> x1, M3 -> x2
    b.instr(
        routes=[route(busA, _ref("Z"), _ref("x1")), route(busB, _m(), _ref("x2"))],
        m=3,
    )
    # 11: P := c2 = t * inv(2 L1 L2) (ready cs14)
    b.instr(ops=[mult()])
    # 12-13: idle
    b.nop(2)
    # 14: c2 -> x1, x2 and (direct) -> r
    b.instr(
        routes=[
            route(busA, _ref("P"), _ref("x1")),
            route(busB, _ref("P"), _ref("x2")),
            route(DIRECT, _ref("P"), _ref("r")),
        ]
    )
    # 15: P := c2^2 (ready cs18); 1.0 -> z1
    b.instr(routes=[route(busA, _m(), _ref("z1"))], ops=[mult()], m=2)
    # 16-17: idle
    b.nop(2)
    # 18: c2^2 -> z2
    b.instr(routes=[route(busA, _ref("P"), _ref("z2"))])
    # 19: Z := 1 - c2^2
    b.instr(ops=[zadd("SUB")])
    # 20: (1 - c2^2) -> y1
    b.instr(routes=[route(busA, _ref("Z"), _ref("y1"))])
    # 21: zang := SQRT(y1) = s2 (CORDIC, ready cs26)
    b.instr(ops=[UnitOp("CORDIC", "SQRT", _ref("y1"))])
    # 22-25: idle (CORDIC busy)
    b.nop(4)
    # 26: s2 -> y1 and s2 -> R2 (saved for theta1)
    b.instr(
        routes=[route(busA, _ref("zang"), _ref("y1")),
                route(busB, _ref("zang"), _r_dest())],
        R1=2,
    )
    # 27: zang := theta2 = ATAN2(s2, c2) (ready cs32); L2 -> x1, c2 -> x2
    b.instr(
        routes=[route(busA, _m(), _ref("x1")), route(busB, _ref("r"), _ref("x2"))],
        ops=[UnitOp("CORDIC", "ATAN2", _ref("y1"), _ref("r"))],
        m=1,
    )
    # 28: P := L2*c2 (ready cs31); L1 -> z1
    b.instr(routes=[route(busA, _m(), _ref("z1"))], ops=[mult()], m=0)
    # 29-30: idle
    b.nop(2)
    # 31: L2*c2 -> z2
    b.instr(routes=[route(busA, _ref("P"), _ref("z2"))])
    # 32: Z := k1 = L1 + L2*c2; theta2 -> R1
    b.instr(
        routes=[route(busA, _ref("zang"), _r_dest())],
        ops=[zadd("ADD")],
        R1=1,
    )
    # 33: L2 -> x1, s2 -> x2
    b.instr(
        routes=[route(busA, _m(), _ref("x1")),
                route(busB, RegRef("R", index_field="MR"), _ref("x2"))],
        m=1,
        MR=2,
    )
    # 34: P := k2 = L2*s2 (ready cs37); py -> y1, px -> r
    b.instr(
        routes=[route(busA, _j(), _ref("y1")),
                route(busB, RegRef("J", index_field="MR"), _ref("r"))],
        ops=[mult()],
        J=1,
        MR=0,
    )
    # 35: zang := beta = ATAN2(py, px) (ready cs40)
    b.instr(ops=[UnitOp("CORDIC", "ATAN2", _ref("y1"), _ref("r"))])
    # 36-39: idle (CORDIC busy)
    b.nop(4)
    # 40: beta -> z1
    b.instr(routes=[route(busA, _ref("zang"), _ref("z1"))])
    # 41: k2 -> y1, k1 -> r
    b.instr(
        routes=[route(busA, _ref("P"), _ref("y1")),
                route(busB, _ref("Z"), _ref("r"))]
    )
    # 42: zang := alpha = ATAN2(k2, k1) (ready cs47)
    b.instr(ops=[UnitOp("CORDIC", "ATAN2", _ref("y1"), _ref("r"))])
    # 43-46: idle
    b.nop(4)
    # 47: alpha -> z2
    b.instr(routes=[route(busA, _ref("zang"), _ref("z2"))])
    # 48: Z := theta1 = beta - alpha
    b.instr(ops=[zadd("SUB")])
    # 49: theta1 -> R0
    b.instr(routes=[route(busA, _ref("Z"), _r_dest())], R1=0)
    return b.build()


#: Result registers of :func:`ik_microprogram`.
RESULT_REGISTERS = {"theta1": "R0", "theta2": "R1"}


# ----------------------------------------------------------------------
# the forward-kinematics microprogram
# ----------------------------------------------------------------------
def fk_microprogram() -> tuple[MicrocodeTable, CodeMaps]:
    """Forward kinematics on the chip: joint angles -> end point.

    Computes ``x = L1 cos(t1) + L2 cos(t1 + t2)`` and
    ``y = L1 sin(t1) + L2 sin(t1 + t2)`` with the CORDIC core's
    SIN/COS operations, the multiplier, and the X/Y/Z adders --
    exercising the units the IK program leaves idle.  Inputs
    ``J2 = theta1, J3 = theta2``; results ``R3 = x, R4 = y``
    (``R5``/``R6`` hold the first-link partial products).

    Composed with :func:`ik_microprogram`, this gives the on-chip
    FK(IK(p)) = p consistency check of the E6 extension tests.
    """
    b = ProgramBuilder()
    busA, busB = "BusA", "BusB"

    def route(bus, src, dst):
        return Route(bus, src, dst)

    def j(index_field="J"):
        return RegRef("J", index_field=index_field)

    mult = lambda: UnitOp("MULT", "FXMUL", _ref("x1"), _ref("x2"))  # noqa: E731
    cordic = lambda op: UnitOp("CORDIC", op, _ref("y1"))  # noqa: E731

    # 1: t1 -> z1, t2 -> z2
    b.instr(
        routes=[route(busA, j("J"), _ref("z1")),
                route(busB, j("MR"), _ref("z2"))],
        J=2, MR=3,
    )
    # 2: Z := t12 = t1 + t2
    b.instr(ops=[UnitOp("Z_ADD", "ADD", _ref("z1"), _ref("z2"))])
    # 3: t1 -> y1 (CORDIC operand)
    b.instr(routes=[route(busA, j(), _ref("y1"))], J=2)
    # 4: zang := cos(t1)  (ready cs9)
    b.instr(ops=[cordic("COS")])
    # 5-8: CORDIC busy
    b.nop(4)
    # 9: cos(t1) -> x1, L1 -> x2; zang := sin(t1) (ready cs14)
    b.instr(
        routes=[route(busA, _ref("zang"), _ref("x1")),
                route(busB, _m(), _ref("x2"))],
        ops=[cordic("SIN")],
        m=0,
    )
    # 10: P := L1*cos(t1) (ready cs13)
    b.instr(ops=[mult()])
    # 11-12: idle
    b.nop(2)
    # 13: L1*cos(t1) -> R5; t12 -> y1
    b.instr(
        routes=[route(busA, _ref("P"), _r_dest()),
                route(busB, _ref("Z"), _ref("y1"))],
        R1=5,
    )
    # 14: sin(t1) -> x1, L1 -> x2; zang := cos(t12) (ready cs19)
    b.instr(
        routes=[route(busA, _ref("zang"), _ref("x1")),
                route(busB, _m(), _ref("x2"))],
        ops=[cordic("COS")],
        m=0,
    )
    # 15: P := L1*sin(t1) (ready cs18)
    b.instr(ops=[mult()])
    # 16-17: idle
    b.nop(2)
    # 18: L1*sin(t1) -> R6
    b.instr(routes=[route(busA, _ref("P"), _r_dest())], R1=6)
    # 19: cos(t12) -> x1, L2 -> x2; zang := sin(t12) (ready cs24)
    b.instr(
        routes=[route(busA, _ref("zang"), _ref("x1")),
                route(busB, _m(), _ref("x2"))],
        ops=[cordic("SIN")],
        m=1,
    )
    # 20: P := L2*cos(t12) (ready cs23)
    b.instr(ops=[mult()])
    # 21-22: idle
    b.nop(2)
    # 23: L2*cos(t12) -> x2, L1*cos(t1) -> x1 (from R5)
    b.instr(
        routes=[route(busA, _ref("P"), _ref("x2")),
                route(busB, RegRef("R", index_field="MR"), _ref("x1"))],
        MR=5,
    )
    # 24: X := x = L1*cos(t1) + L2*cos(t12); refill x1/x2 for the sine
    #     product (X_ADD reads the old values in this step's ra phase)
    b.instr(
        routes=[route(busA, _ref("zang"), _ref("x1")),
                route(busB, _m(), _ref("x2"))],
        ops=[UnitOp("X_ADD", "ADD", _ref("x1"), _ref("x2"))],
        m=1,
    )
    # 25: P := L2*sin(t12) (ready cs28); x -> R3
    b.instr(
        routes=[route(busA, _ref("X"), _r_dest())],
        ops=[mult()],
        R1=3,
    )
    # 26-27: idle
    b.nop(2)
    # 28: L2*sin(t12) -> y2, L1*sin(t1) -> y1 (from R6)
    b.instr(
        routes=[route(busA, _ref("P"), _ref("y2")),
                route(busB, RegRef("R", index_field="MR"), _ref("y1"))],
        MR=6,
    )
    # 29: Y := y = L1*sin(t1) + L2*sin(t12)
    b.instr(ops=[UnitOp("Y_ADD", "ADD", _ref("y1"), _ref("y2"))])
    # 30: y -> R4
    b.instr(routes=[route(busA, _ref("Y"), _r_dest())], R1=4)
    return b.build()


#: Input J-file slots and result registers of :func:`fk_microprogram`.
FK_INPUT_SLOTS = {"theta1": 2, "theta2": 3}
FK_RESULT_REGISTERS = {"x": "R3", "y": "R4"}


# ----------------------------------------------------------------------
# the three-DOF solution: prologue + shared IK body + epilogue
# ----------------------------------------------------------------------
def ik3_prologue() -> tuple[MicrocodeTable, CodeMaps]:
    """Wrist-position prologue of the 3-DOF solution (18 steps).

    Inputs ``J0 = px, J1 = py, J4 = phi`` (ROM ``M5 = L3``); rewrites
    ``J0 := xw = px - L3 cos(phi)`` and ``J1 := yw = py - L3 sin(phi)``
    in place, so the unmodified two-link IK body can run next.
    """
    b = ProgramBuilder()
    busA, busB = "BusA", "BusB"

    def route(bus, src, dst):
        return Route(bus, src, dst)

    mult = lambda: UnitOp("MULT", "FXMUL", _ref("x1"), _ref("x2"))  # noqa: E731
    zsub = lambda: UnitOp("Z_ADD", "SUB", _ref("z1"), _ref("z2"))  # noqa: E731

    # 1: phi -> y1 (CORDIC operand)
    b.instr(routes=[route(busA, _j(), _ref("y1"))], J=4)
    # 2: zang := cos(phi) (ready cs7)
    b.instr(ops=[UnitOp("CORDIC", "COS", _ref("y1"))])
    # 3-6: CORDIC busy
    b.nop(4)
    # 7: cos(phi) -> x1, L3 -> x2; zang := sin(phi) (ready cs12)
    b.instr(
        routes=[route(busA, _ref("zang"), _ref("x1")),
                route(busB, _m(), _ref("x2"))],
        ops=[UnitOp("CORDIC", "SIN", _ref("y1"))],
        m=5,
    )
    # 8: P := L3*cos(phi) (ready cs11)
    b.instr(ops=[mult()])
    # 9-10: idle
    b.nop(2)
    # 11: L3*cos(phi) -> z2, px -> z1
    b.instr(
        routes=[route(busA, _ref("P"), _ref("z2")),
                route(busB, _j(), _ref("z1"))],
        J=0,
    )
    # 12: Z := xw = px - L3*cos(phi); sin(phi) -> x1, L3 -> x2
    b.instr(
        routes=[route(busA, _ref("zang"), _ref("x1")),
                route(busB, _m(), _ref("x2"))],
        ops=[zsub()],
        m=5,
    )
    # 13: P := L3*sin(phi) (ready cs16); xw -> J0
    b.instr(routes=[route(busA, _ref("Z"), _j())], ops=[mult()], J=0)
    # 14-15: idle
    b.nop(2)
    # 16: L3*sin(phi) -> z2, py -> z1
    b.instr(
        routes=[route(busA, _ref("P"), _ref("z2")),
                route(busB, _j(), _ref("z1"))],
        J=1,
    )
    # 17: Z := yw = py - L3*sin(phi)
    b.instr(ops=[zsub()])
    # 18: yw -> J1
    b.instr(routes=[route(busA, _ref("Z"), _j())], J=1)
    return b.build()


def ik3_epilogue() -> tuple[MicrocodeTable, CodeMaps]:
    """Wrist-angle epilogue of the 3-DOF solution (5 steps).

    Runs after the IK body: reads ``phi`` (J4), ``theta1`` (R0) and
    ``theta2`` (R1) and stores ``theta3 = (phi - theta2) - theta1``
    into ``R2``.
    """
    b = ProgramBuilder()
    busA, busB = "BusA", "BusB"

    def route(bus, src, dst):
        return Route(bus, src, dst)

    zsub = lambda: UnitOp("Z_ADD", "SUB", _ref("z1"), _ref("z2"))  # noqa: E731

    # 1: phi -> z1, theta2 -> z2
    b.instr(
        routes=[route(busA, _j(), _ref("z1")),
                route(busB, RegRef("R", index_field="R1"), _ref("z2"))],
        J=4, R1=1,
    )
    # 2: Z := phi - theta2
    b.instr(ops=[zsub()])
    # 3: Z -> z1, theta1 -> z2
    b.instr(
        routes=[route(busA, _ref("Z"), _ref("z1")),
                route(busB, RegRef("R", index_field="R1"), _ref("z2"))],
        R1=0,
    )
    # 4: Z := theta3
    b.instr(ops=[zsub()])
    # 5: theta3 -> R2 (overwrites the no-longer-needed s2 temporary)
    b.instr(routes=[route(busA, _ref("Z"), _r_dest())], R1=2)
    return b.build()


#: Result registers of the 3-DOF composition.
IK3_RESULT_REGISTERS = {"theta1": "R0", "theta2": "R1", "theta3": "R2"}

#: Steps of the three program fragments (prologue, body, epilogue).
IK3_PROLOGUE_STEPS = 18
IK3_BODY_STEPS = 49
IK3_EPILOGUE_STEPS = 5
IK3_TOTAL_STEPS = IK3_PROLOGUE_STEPS + IK3_BODY_STEPS + IK3_EPILOGUE_STEPS
