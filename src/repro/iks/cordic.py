"""A fixed-point CORDIC core (the IKS chip's second resource, Fig. 3).

The Leung & Shanblatt IKS chip contains a "cordic core" next to the
MACC; the inverse-kinematics solution needs ``atan2``, ``sin``/``cos``
and vector magnitudes.  This module implements the classic CORDIC
iterations in pure integer arithmetic on :class:`FxFormat` patterns:

* **circular rotation** mode: rotate ``(x, y)`` by angle ``z`` --
  yields ``sin``/``cos``;
* **circular vectoring** mode: rotate ``(x, y)`` onto the x-axis --
  yields ``atan2(y, x)`` and the (gain-scaled) magnitude;
* angles are in radians in the same Q format as the data.

All functions are deterministic integer algorithms, so the RT-level
module (which calls them as its operation body) and the
algorithmic-level reference produce bit-identical results -- the
property the paper's verification flow depends on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from .fixedpoint import FxFormat


@dataclass(frozen=True)
class CordicSpec:
    """CORDIC configuration: number format and iteration count."""

    fmt: FxFormat
    iterations: int = 0  # 0 -> frac + 2 (enough for ~frac bits of result)

    def __post_init__(self) -> None:
        if self.iterations == 0:
            object.__setattr__(self, "iterations", self.fmt.frac + 2)
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


@lru_cache(maxsize=None)
def _atan_table(fmt: FxFormat, iterations: int) -> tuple[int, ...]:
    """Encoded ``atan(2**-i)`` constants (the chip's ROM)."""
    return tuple(
        fmt.encode(math.atan(2.0 ** -i)) for i in range(iterations)
    )


@lru_cache(maxsize=None)
def _gain_inverse(fmt: FxFormat, iterations: int) -> int:
    """Encoded ``1/K`` where ``K = prod(sqrt(1 + 2**-2i))``."""
    gain = 1.0
    for i in range(iterations):
        gain *= math.sqrt(1.0 + 2.0 ** (-2 * i))
    return fmt.encode(1.0 / gain)


def _signed(fmt: FxFormat, pattern: int) -> int:
    return fmt.to_signed(pattern)


def rotate(spec: CordicSpec, x: int, y: int, z: int) -> tuple[int, int, int]:
    """Circular rotation mode on encoded patterns.

    Drives ``z`` to zero; returns encoded
    ``(K*(x cos z0 - y sin z0), K*(x sin z0 + y cos z0), z_residual)``.
    The caller pre-scales by ``1/K`` (see :func:`sin_cos`) when the
    gain matters.  ``z`` must be within the CORDIC convergence range
    (|z| <= ~1.74 rad); :func:`sin_cos` handles quadrant folding.
    """
    fmt = spec.fmt
    atans = _atan_table(fmt, spec.iterations)
    sx, sy, sz = _signed(fmt, x), _signed(fmt, y), _signed(fmt, z)
    for i in range(spec.iterations):
        if sz >= 0:
            sx, sy = sx - (sy >> i), sy + (sx >> i)
            sz -= _signed(fmt, atans[i])
        else:
            sx, sy = sx + (sy >> i), sy - (sx >> i)
            sz += _signed(fmt, atans[i])
    return fmt.from_signed(sx), fmt.from_signed(sy), fmt.from_signed(sz)


def vector(spec: CordicSpec, x: int, y: int) -> tuple[int, int]:
    """Circular vectoring mode on encoded patterns.

    Drives ``y`` to zero; returns encoded ``(K * sqrt(x^2 + y^2),
    atan2-accumulator)``.  Requires ``x >= 0`` (callers fold the left
    half-plane; see :func:`atan2`).
    """
    fmt = spec.fmt
    atans = _atan_table(fmt, spec.iterations)
    sx, sy = _signed(fmt, x), _signed(fmt, y)
    sz = 0
    for i in range(spec.iterations):
        if sy <= 0:
            sx, sy = sx - (sy >> i), sy + (sx >> i)
            sz -= _signed(fmt, atans[i])
        else:
            sx, sy = sx + (sy >> i), sy - (sx >> i)
            sz += _signed(fmt, atans[i])
    return fmt.from_signed(sx), fmt.from_signed(sz)


# ----------------------------------------------------------------------
# user-level operations (what the chip's op codes expose)
# ----------------------------------------------------------------------
def atan2(spec: CordicSpec, y: int, x: int) -> int:
    """Encoded ``atan2(y, x)`` in radians, full four quadrants."""
    fmt = spec.fmt
    sy, sx = _signed(fmt, y), _signed(fmt, x)
    pi = fmt.encode(math.pi)
    if sx == 0 and sy == 0:
        return 0
    if sx < 0:
        # Fold into the right half-plane: atan2(y, x) =
        #   pi - atan2(y, -x)   for y >= 0
        #  -pi + atan2(-y, -x)... handled via sign below.
        _, z = vector(spec, fmt.from_signed(-sx), fmt.from_signed(abs(sy)))
        folded = fmt.to_signed(pi) - fmt.to_signed(z)
        result = folded if sy >= 0 else -folded
        return fmt.from_signed(result)
    _, z = vector(spec, x, y)
    return z


def magnitude(spec: CordicSpec, x: int, y: int) -> int:
    """Encoded ``sqrt(x^2 + y^2)`` (CORDIC gain compensated)."""
    fmt = spec.fmt
    sx, sy = abs(_signed(fmt, x)), abs(_signed(fmt, y))
    scaled, _ = vector(spec, fmt.from_signed(sx), fmt.from_signed(sy))
    return fmt.mul(scaled, _gain_inverse(fmt, spec.iterations))


def sin_cos(spec: CordicSpec, angle: int) -> tuple[int, int]:
    """Encoded ``(sin, cos)`` of an encoded radian angle.

    Folds the angle into the convergence range using quadrant
    identities before rotating.
    """
    fmt = spec.fmt
    sa = _signed(fmt, angle)
    pi = fmt.to_signed(fmt.encode(math.pi))
    half_pi = fmt.to_signed(fmt.encode(math.pi / 2))
    two_pi = 2 * pi
    # Reduce to (-pi, pi].
    while sa > pi:
        sa -= two_pi
    while sa <= -pi:
        sa += two_pi
    flip = False
    if sa > half_pi:
        sa = pi - sa
        flip = True
    elif sa < -half_pi:
        sa = -pi - sa
        flip = True
    inv_k = _gain_inverse(fmt, spec.iterations)
    x0, y0 = inv_k, 0
    cos_p, sin_p, _ = rotate(spec, x0, y0, fmt.from_signed(sa))
    if flip:
        cos_p = fmt.neg(cos_p)
    return sin_p, cos_p


def sin(spec: CordicSpec, angle: int) -> int:
    """Encoded sine of an encoded angle."""
    return sin_cos(spec, angle)[0]


def cos(spec: CordicSpec, angle: int) -> int:
    """Encoded cosine of an encoded angle."""
    return sin_cos(spec, angle)[1]
