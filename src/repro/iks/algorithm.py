"""Algorithmic-level reference of the inverse-kinematics solution.

Paper §3/§4: the register-transfer description extracted from the IKS
microcode "is to be verified against a description at the algorithmic
level".  This module is that algorithmic level: a planar two-link
inverse-kinematics solution computed with exactly the fixed-point and
CORDIC primitives of :mod:`repro.iks.fixedpoint` and
:mod:`repro.iks.cordic` -- so the RT model (driven by the microprogram)
must reproduce it **bit-exactly**, which is what the E6 experiment
checks.

Geometry (elbow-down closed-form solution)::

    given target (px, py), link lengths L1, L2:
        r2  = px^2 + py^2
        c2  = (r2 - L1^2 - L2^2) / (2 L1 L2)     # cos(theta2)
        s2  = sqrt(1 - c2^2)                     # sin(theta2), >= 0
        theta2 = atan2(s2, c2)
        theta1 = atan2(py, px) - atan2(L2 s2, L1 + L2 c2)

The division by the constant ``2 L1 L2`` is realized as multiplication
by the precomputed reciprocal held in the chip's coefficient ROM
(``M`` bank), as real microcoded datapaths do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .cordic import CordicSpec, atan2
from .fixedpoint import DEFAULT_FORMAT, FxFormat


@dataclass(frozen=True)
class ArmGeometry:
    """Link lengths of the planar arm.

    ``l1``/``l2`` are the two position links; ``l3`` is the wrist/tool
    link used only by the three-degree-of-freedom solution
    (:func:`solve_ik3`), where the target also prescribes the tool
    orientation.
    """

    l1: float = 2.0
    l2: float = 1.5
    l3: float = 0.5

    def __post_init__(self) -> None:
        if self.l1 <= 0 or self.l2 <= 0 or self.l3 <= 0:
            raise ValueError("link lengths must be positive")

    def reachable(self, px: float, py: float) -> bool:
        """Whether a wrist target lies in the two-link annular workspace."""
        r = math.hypot(px, py)
        return abs(self.l1 - self.l2) <= r <= (self.l1 + self.l2)

    # -- the ROM constants the chip's M bank holds -----------------------
    def rom_constants(self, fmt: FxFormat) -> dict[str, int]:
        """Encoded coefficient-ROM contents (M bank)."""
        return {
            "L1": fmt.encode(self.l1),
            "L2": fmt.encode(self.l2),
            "ONE": fmt.encode(1.0),
            "INV_2L1L2": fmt.encode(1.0 / (2.0 * self.l1 * self.l2)),
            "L1SQ_PLUS_L2SQ": fmt.encode(self.l1**2 + self.l2**2),
            "L3": fmt.encode(self.l3),
        }


@dataclass(frozen=True)
class IKSolution:
    """Joint angles (encoded patterns plus decoded radians)."""

    theta1: int
    theta2: int
    theta1_rad: float
    theta2_rad: float


def _ik_core(
    x: int,
    y: int,
    rom: dict[str, int],
    fmt: FxFormat,
    spec: CordicSpec,
) -> tuple[int, int]:
    """The encoded-domain two-link solution: (theta1, theta2) patterns.

    Shared bit-for-bit by :func:`solve_ik` and :func:`solve_ik3` (the
    latter feeds it the computed wrist position), mirroring the chip's
    reuse of the same microprogram body.
    """
    # r2 = x*x + y*y                             (MULT twice, Z_ADD)
    px2 = fmt.mul(x, x)
    py2 = fmt.mul(y, y)
    r2 = fmt.add(px2, py2)

    # t = r2 - (L1^2 + L2^2)                     (Z_ADD, SUB)
    t = fmt.sub(r2, rom["L1SQ_PLUS_L2SQ"])

    # c2 = t * INV_2L1L2                         (MULT)
    c2 = fmt.mul(t, rom["INV_2L1L2"])

    # s2 = sqrt(1 - c2*c2)                       (MULT, Z_ADD, CORDIC SQRT)
    c2sq = fmt.mul(c2, c2)
    one_minus = fmt.sub(rom["ONE"], c2sq)
    s2 = fmt.sqrt(one_minus)

    # theta2 = atan2(s2, c2)                     (CORDIC ATAN2)
    theta2 = atan2(spec, s2, c2)

    # k1 = L1 + L2*c2 ; k2 = L2*s2               (MULT, Z_ADD, MULT)
    l2c2 = fmt.mul(rom["L2"], c2)
    k1 = fmt.add(rom["L1"], l2c2)
    k2 = fmt.mul(rom["L2"], s2)

    # theta1 = atan2(y, x) - atan2(k2, k1)       (CORDIC twice, Z_ADD SUB)
    beta = atan2(spec, y, x)
    alpha = atan2(spec, k2, k1)
    theta1 = fmt.sub(beta, alpha)
    return theta1, theta2


def solve_ik(
    px: float,
    py: float,
    geometry: ArmGeometry = ArmGeometry(),
    fmt: FxFormat = DEFAULT_FORMAT,
    cordic: CordicSpec | None = None,
) -> IKSolution:
    """Fixed-point inverse kinematics, the chip's reference semantics.

    Every arithmetic step corresponds 1:1 to a microprogram phase; see
    :mod:`repro.iks.microprogram` for the mapping.
    """
    spec = cordic or CordicSpec(fmt)
    rom = geometry.rom_constants(fmt)
    theta1, theta2 = _ik_core(
        fmt.encode(px), fmt.encode(py), rom, fmt, spec
    )
    return IKSolution(
        theta1=theta1,
        theta2=theta2,
        theta1_rad=fmt.decode(theta1),
        theta2_rad=fmt.decode(theta2),
    )


@dataclass(frozen=True)
class IK3Solution:
    """Joint angles of the three-degree-of-freedom solution."""

    theta1: int
    theta2: int
    theta3: int
    theta1_rad: float
    theta2_rad: float
    theta3_rad: float


def solve_ik3(
    px: float,
    py: float,
    phi: float,
    geometry: ArmGeometry = ArmGeometry(),
    fmt: FxFormat = DEFAULT_FORMAT,
    cordic: CordicSpec | None = None,
) -> IK3Solution:
    """Three-DOF inverse kinematics: position plus tool orientation.

    The classic decomposition (the structure of the full IKS chip's
    computation): subtract the tool link to get the wrist position,
    solve the two-link problem for it, and take the remaining rotation
    as the wrist angle::

        xw = px - L3 cos(phi)         yw = py - L3 sin(phi)
        (theta1, theta2) = two-link IK of (xw, yw)
        theta3 = (phi - theta2) - theta1

    Computed entirely in the encoded domain with the chip's operation
    set, so the RT model (prologue + IK body + epilogue microprograms)
    reproduces it bit-exactly.
    """
    from .cordic import cos as cordic_cos
    from .cordic import sin as cordic_sin

    spec = cordic or CordicSpec(fmt)
    rom = geometry.rom_constants(fmt)
    phi_enc = fmt.encode(phi)

    # Prologue: wrist position.          (CORDIC COS/SIN, MULT, Z_ADD)
    cos_phi = cordic_cos(spec, phi_enc)
    l3cos = fmt.mul(cos_phi, rom["L3"])
    xw = fmt.sub(fmt.encode(px), l3cos)
    sin_phi = cordic_sin(spec, phi_enc)
    l3sin = fmt.mul(sin_phi, rom["L3"])
    yw = fmt.sub(fmt.encode(py), l3sin)

    # Body: the shared two-link core on the wrist point.
    theta1, theta2 = _ik_core(xw, yw, rom, fmt, spec)

    # Epilogue: wrist angle, in the chip's subtraction order.
    theta3 = fmt.sub(fmt.sub(phi_enc, theta2), theta1)
    return IK3Solution(
        theta1=theta1,
        theta2=theta2,
        theta3=theta3,
        theta1_rad=fmt.decode(theta1),
        theta2_rad=fmt.decode(theta2),
        theta3_rad=fmt.decode(theta3),
    )


def forward_kinematics3(
    theta1: float,
    theta2: float,
    theta3: float,
    geometry: ArmGeometry = ArmGeometry(),
) -> tuple[float, float, float]:
    """Floating-point forward kinematics of the three-link arm:
    returns (x, y, tool orientation)."""
    t12 = theta1 + theta2
    t123 = t12 + theta3
    x = (
        geometry.l1 * math.cos(theta1)
        + geometry.l2 * math.cos(t12)
        + geometry.l3 * math.cos(t123)
    )
    y = (
        geometry.l1 * math.sin(theta1)
        + geometry.l2 * math.sin(t12)
        + geometry.l3 * math.sin(t123)
    )
    return x, y, t123


def forward_kinematics(
    theta1: float, theta2: float, geometry: ArmGeometry = ArmGeometry()
) -> tuple[float, float]:
    """Floating-point forward kinematics, for validating the solution."""
    x = geometry.l1 * math.cos(theta1) + geometry.l2 * math.cos(theta1 + theta2)
    y = geometry.l1 * math.sin(theta1) + geometry.l2 * math.sin(theta1 + theta2)
    return x, y


def reference_ik_float(
    px: float, py: float, geometry: ArmGeometry = ArmGeometry()
) -> tuple[float, float]:
    """Double-precision closed-form IK (ground truth for accuracy tests)."""
    r2 = px * px + py * py
    c2 = (r2 - geometry.l1**2 - geometry.l2**2) / (2 * geometry.l1 * geometry.l2)
    c2 = max(-1.0, min(1.0, c2))
    s2 = math.sqrt(1.0 - c2 * c2)
    theta2 = math.atan2(s2, c2)
    theta1 = math.atan2(py, px) - math.atan2(
        geometry.l2 * s2, geometry.l1 + geometry.l2 * c2
    )
    return theta1, theta2
