"""Elaboration and interpretation of the VHDL subset.

Turns a parsed design file into a running kernel simulation: signals
are created for the top entity's architecture, component
instantiations recurse through the design hierarchy, and each process
becomes a kernel process whose generator *interprets* the statement
tree -- ``wait until`` suspends on the kernel's event queue exactly as
a VHDL simulator would.

Subset semantics (documented deviations from full IEEE-1076 are
deliberate simplifications that do not affect the paper's models):

* all packages in the design file are visible everywhere (``use``
  clauses are accepted and ignored);
* the resolution name ``resolved`` denotes the paper's bus/port
  resolution function (§2.3); it is the only resolution available;
* default initial values: ``natural`` -> 0, ``integer`` -> DISC,
  enumeration types -> their first literal.  (The paper's abstract
  Integer carries DISC for "no value"; full VHDL would use
  ``Integer'Left``.)
* a driver's initial contribution comes from the driven port's
  default expression when present, else from the signal's initial
  value -- which is what makes the paper's ``OutS: out Integer :=
  DISC`` release idiom work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from ..core.values import DISC, resolve_rt
from ..kernel import Driver, Signal, Simulator, wait_forever, wait_on, wait_until
from . import ast
from .parser import parse_file
from .stdlib import PAPER_LIBRARY


class ElaborationError(ValueError):
    """Raised for semantic errors during elaboration."""


class InterpretationError(ValueError):
    """Raised for runtime errors inside an interpreted process."""


# ----------------------------------------------------------------------
# value domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EnumType:
    name: str
    literals: tuple[str, ...]

    def value(self, literal: str) -> "EnumValue":
        return EnumValue(self.name, self.literals.index(literal), literal)

    def by_index(self, index: int) -> "EnumValue":
        if not 0 <= index < len(self.literals):
            raise InterpretationError(
                f"enum {self.name}: position {index} out of range"
            )
        return EnumValue(self.name, index, self.literals[index])


@dataclass(frozen=True)
class EnumValue:
    type_name: str
    index: int
    literal: str

    def __str__(self) -> str:
        return self.literal


Value = Union[int, bool, EnumValue]

#: Types with built-in meaning.
BUILTIN_INTEGER_TYPES = {"integer", "natural", "positive"}


# ----------------------------------------------------------------------
# environments
# ----------------------------------------------------------------------
@dataclass
class Scope:
    """Everything visible inside one entity instance."""

    path: str
    types: dict[str, EnumType]
    constants: dict[str, Value]
    enum_literals: dict[str, EnumValue]
    generics: dict[str, Value] = field(default_factory=dict)
    signals: dict[str, Signal] = field(default_factory=dict)
    #: local signal/port name -> default expression for drivers
    driver_defaults: dict[str, Value] = field(default_factory=dict)

    def child(self, label: str) -> "Scope":
        return Scope(
            path=f"{self.path}/{label}" if self.path else label,
            types=dict(self.types),
            constants=dict(self.constants),
            enum_literals=dict(self.enum_literals),
        )

    def add_enum_type(self, decl: ast.TypeDecl) -> None:
        etype = EnumType(decl.name, decl.literals)
        self.types[decl.name] = etype
        for literal in decl.literals:
            self.enum_literals[literal] = etype.value(literal)


@dataclass
class ElaboratedDesign:
    """A design elaborated onto a kernel simulator."""

    sim: Simulator
    top: str
    #: flat map of hierarchical signal name -> kernel signal
    signals: dict[str, Signal]
    #: messages from note/warning-severity assertions, in order
    assertion_log: list = field(default_factory=list)

    def signal(self, name: str) -> Signal:
        """Look up a signal by name (case-insensitive, like VHDL)."""
        try:
            return self.signals[name.lower()]
        except KeyError:
            raise KeyError(
                f"no signal {name!r}; available: "
                f"{', '.join(sorted(self.signals))}"
            ) from None

    def run(self) -> "ElaboratedDesign":
        self.sim.run()
        return self


class Elaborator:
    """Elaborates design files against the paper's component library."""

    def __init__(
        self,
        design: Union[str, ast.DesignFile],
        library: Optional[Union[str, ast.DesignFile]] = None,
        include_paper_library: bool = True,
    ) -> None:
        if isinstance(design, str):
            design = parse_file(design)
        units: list[ast.DesignUnit] = []
        if include_paper_library:
            units.extend(parse_file(PAPER_LIBRARY).units)
        if library is not None:
            if isinstance(library, str):
                library = parse_file(library)
            units.extend(library.units)
        units.extend(design.units)
        self.design = ast.DesignFile(tuple(units))
        self.entities = self.design.entities()
        self.architectures = self.design.architectures()

    # ------------------------------------------------------------------
    def elaborate(
        self,
        top: str,
        generics: Optional[Mapping[str, Value]] = None,
        sim: Optional[Simulator] = None,
    ) -> ElaboratedDesign:
        """Elaborate entity ``top``; returns the runnable design."""
        top = top.lower()
        if top not in self.entities:
            raise ElaborationError(f"no entity {top!r} in the design")
        simulator = sim or Simulator()
        self._assertion_log: list = []
        root = Scope(path="", types={}, constants={}, enum_literals={})
        for package in self.design.packages():
            for decl in package.decls:
                if isinstance(decl, ast.TypeDecl):
                    root.add_enum_type(decl)
                else:
                    root.constants[decl.name] = self._eval_static(decl.value, root)
        registry: dict[str, Signal] = {}
        scope = root.child(top)
        scope.path = ""  # top-level signals keep their bare names
        entity = self.entities[top]
        self._bind_generics(entity, (), dict(generics or {}), scope, root)
        # Create signals for the top entity's ports.
        for port in entity.ports:
            init = self._default_value(port.subtype, port.init, scope)
            signal = self._make_signal(
                simulator, port.name, port.subtype, init, scope, registry
            )
            scope.signals[port.name] = signal
            if port.init is not None:
                scope.driver_defaults[port.name] = self._eval_static(
                    port.init, scope
                )
        self._elaborate_architecture(top, scope, simulator, registry)
        return ElaboratedDesign(
            sim=simulator,
            top=top,
            signals=registry,
            assertion_log=self._assertion_log,
        )

    # ------------------------------------------------------------------
    # architecture elaboration
    # ------------------------------------------------------------------
    def _elaborate_architecture(
        self,
        entity_name: str,
        scope: Scope,
        sim: Simulator,
        registry: dict[str, Signal],
    ) -> None:
        arch = self.architectures.get(entity_name)
        if arch is None:
            raise ElaborationError(
                f"entity {entity_name!r} has no architecture"
            )
        for decl in arch.decls:
            if isinstance(decl, ast.TypeDecl):
                scope.add_enum_type(decl)
            elif isinstance(decl, ast.ConstantDecl):
                scope.constants[decl.name] = self._eval_static(decl.value, scope)
            elif isinstance(decl, ast.SignalDecl):
                for name in decl.names:
                    init = self._default_value(decl.subtype, decl.init, scope)
                    signal = self._make_signal(
                        sim, name, decl.subtype, init, scope, registry
                    )
                    scope.signals[name] = signal
        proc_counter = 0
        for stmt in arch.statements:
            if isinstance(stmt, ast.ProcessStmt):
                proc_counter += 1
                label = stmt.label or f"proc{proc_counter}"
                self._elaborate_process(stmt, label, scope, sim)
            else:
                self._elaborate_instance(stmt, scope, sim, registry)

    def _elaborate_instance(
        self,
        inst: ast.ComponentInst,
        parent: Scope,
        sim: Simulator,
        registry: dict[str, Signal],
    ) -> None:
        entity = self.entities.get(inst.entity)
        if entity is None:
            raise ElaborationError(
                f"instance {inst.label!r}: unknown entity {inst.entity!r}"
            )
        scope = parent.child(inst.label)
        self._bind_generics(
            entity, inst.generic_map, {}, scope, parent
        )
        # Ports: each actual must name a signal of the parent scope.
        actuals = self._associate(entity.ports, inst.port_map, "port", inst.label)
        for port, actual in actuals.items():
            port_decl = next(p for p in entity.ports if p.name == port)
            if actual is None:
                raise ElaborationError(
                    f"instance {inst.label!r}: port {port!r} unconnected"
                )
            if not isinstance(actual, ast.Name):
                raise ElaborationError(
                    f"instance {inst.label!r}: port {port!r} must be "
                    f"associated with a signal name"
                )
            signal = parent.signals.get(actual.ident)
            if signal is None:
                raise ElaborationError(
                    f"instance {inst.label!r}: no signal {actual.ident!r} "
                    f"for port {port!r}"
                )
            scope.signals[port] = signal
            if port_decl.init is not None:
                scope.driver_defaults[port] = self._eval_static(
                    port_decl.init, scope
                )
        self._elaborate_architecture(inst.entity, scope, sim, registry)

    def _bind_generics(
        self,
        entity: ast.EntityDecl,
        generic_map: tuple[ast.AssociationElement, ...],
        overrides: dict[str, Value],
        scope: Scope,
        parent: Scope,
    ) -> None:
        actuals = self._associate(
            entity.generics, generic_map, "generic", entity.name
        )
        for generic in entity.generics:
            actual = actuals.get(generic.name)
            if generic.name in overrides:
                scope.generics[generic.name] = overrides[generic.name]
            elif actual is not None:
                scope.generics[generic.name] = self._eval_static(actual, parent)
            elif generic.default is not None:
                scope.generics[generic.name] = self._eval_static(
                    generic.default, scope
                )
            else:
                raise ElaborationError(
                    f"entity {entity.name!r}: generic {generic.name!r} "
                    f"has no value"
                )

    @staticmethod
    def _associate(
        formals, associations, what: str, context: str
    ) -> dict[str, Optional[ast.Expr]]:
        result: dict[str, Optional[ast.Expr]] = {f.name: None for f in formals}
        order = [f.name for f in formals]
        position = 0
        for element in associations:
            if element.formal is not None:
                if element.formal not in result:
                    raise ElaborationError(
                        f"{context}: unknown {what} {element.formal!r}"
                    )
                result[element.formal] = element.actual
            else:
                if position >= len(order):
                    raise ElaborationError(
                        f"{context}: too many positional {what}s"
                    )
                result[order[position]] = element.actual
                position += 1
        return result

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def _make_signal(
        self,
        sim: Simulator,
        name: str,
        subtype: ast.SubtypeIndication,
        init: Value,
        scope: Scope,
        registry: dict[str, Signal],
    ) -> Signal:
        if subtype.resolution is not None:
            if subtype.resolution != "resolved":
                raise ElaborationError(
                    f"signal {name!r}: unknown resolution "
                    f"{subtype.resolution!r} (only 'resolved' is supported)"
                )
            resolution = resolve_rt
        else:
            resolution = None
        full = f"{scope.path}/{name}" if scope.path else name
        signal = sim.signal(full, init=init, resolution=resolution)
        registry[full] = signal
        return signal

    def _default_value(
        self,
        subtype: ast.SubtypeIndication,
        init: Optional[ast.Expr],
        scope: Scope,
    ) -> Value:
        if init is not None:
            return self._eval_static(init, scope)
        mark = subtype.type_mark
        if mark in ("natural", "positive"):
            return 0 if mark == "natural" else 1
        if mark == "integer":
            return DISC
        etype = scope.types.get(mark)
        if etype is not None:
            return etype.by_index(0)
        raise ElaborationError(f"unknown type {mark!r}")

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def _elaborate_process(
        self,
        proc: ast.ProcessStmt,
        label: str,
        scope: Scope,
        sim: Simulator,
    ) -> None:
        has_wait = _contains_wait(proc.body)
        if proc.sensitivity and has_wait:
            raise ElaborationError(
                f"process {label!r}: sensitivity list and wait statements "
                f"are mutually exclusive (IEEE-1076)"
            )
        if not proc.sensitivity and not has_wait:
            raise ElaborationError(
                f"process {label!r}: no sensitivity list and no wait -- "
                f"the process would loop forever in delta time"
            )
        # Pre-create drivers for every signal the process assigns.
        drivers: dict[str, Driver] = {}
        full_label = f"{scope.path}/{label}" if scope.path else label
        for target in sorted(_assigned_signals(proc.body)):
            signal = scope.signals.get(target)
            if signal is None:
                raise ElaborationError(
                    f"process {full_label!r}: assignment to unknown "
                    f"signal {target!r}"
                )
            init = scope.driver_defaults.get(target, signal.value)
            drivers[target] = sim.driver(signal, owner=full_label, init=init)
        sens_signals = []
        for name in proc.sensitivity:
            signal = scope.signals.get(name)
            if signal is None:
                raise ElaborationError(
                    f"process {full_label!r}: unknown signal {name!r} in "
                    f"sensitivity list"
                )
            sens_signals.append(signal)

        interpreter = _ProcessInterpreter(
            self, proc, scope, drivers, full_label,
            assertion_log=getattr(self, "_assertion_log", []),
        )
        sim.add_process(
            full_label, interpreter.run, tuple(sens_signals)
        )

    # ------------------------------------------------------------------
    # static expression evaluation (no variables)
    # ------------------------------------------------------------------
    def _eval_static(self, expr: ast.Expr, scope: Scope) -> Value:
        return _eval(expr, scope, variables=None, allow_signals=False)


# ----------------------------------------------------------------------
# statement interpretation
# ----------------------------------------------------------------------
class _ProcessInterpreter:
    def __init__(
        self,
        elaborator: Elaborator,
        proc: ast.ProcessStmt,
        scope: Scope,
        drivers: dict[str, Driver],
        label: str,
        assertion_log: Optional[list] = None,
    ) -> None:
        self.proc = proc
        self.scope = scope
        self.drivers = drivers
        self.label = label
        self.assertion_log = assertion_log if assertion_log is not None else []

    def run(self, sens_signals):
        variables: dict[str, Value] = {}
        for decl in self.proc.decls:
            for name in decl.names:
                if decl.init is not None:
                    variables[name] = _eval(
                        decl.init, self.scope, variables, allow_signals=False
                    )
                else:
                    variables[name] = _default_for(decl.subtype, self.scope)
        while True:
            yield from self._exec_block(self.proc.body, variables)
            if sens_signals:
                yield wait_on(*sens_signals)
            # Processes built around explicit waits simply loop.

    def _exec_block(self, body, variables):
        for stmt in body:
            if isinstance(stmt, ast.WaitStmt):
                yield self._make_wait(stmt, variables)
            elif isinstance(stmt, ast.SignalAssign):
                driver = self.drivers.get(stmt.target)
                if driver is None:
                    raise InterpretationError(
                        f"{self.label}: no driver for {stmt.target!r}"
                    )
                driver.set(
                    _eval(stmt.value, self.scope, variables)
                )
            elif isinstance(stmt, ast.VarAssign):
                if stmt.target not in variables:
                    raise InterpretationError(
                        f"{self.label}: assignment to undeclared variable "
                        f"{stmt.target!r}"
                    )
                variables[stmt.target] = _eval(
                    stmt.value, self.scope, variables
                )
            elif isinstance(stmt, ast.IfStmt):
                for condition, branch in stmt.branches:
                    if condition is None or _truthy(
                        _eval(condition, self.scope, variables), self.label
                    ):
                        yield from self._exec_block(branch, variables)
                        break
            elif isinstance(stmt, ast.AssertStmt):
                held = _truthy(
                    _eval(stmt.condition, self.scope, variables),
                    f"{self.label}: assert",
                )
                if not held:
                    message = stmt.report or "assertion violation"
                    if stmt.severity in ("error", "failure"):
                        raise InterpretationError(
                            f"{self.label}: {message} "
                            f"(severity {stmt.severity})"
                        )
                    self.assertion_log.append(
                        f"{self.label}: {message} (severity {stmt.severity})"
                    )
            elif isinstance(stmt, ast.NullStmt):
                pass
            else:  # pragma: no cover - parser only builds the above
                raise InterpretationError(
                    f"{self.label}: unsupported statement {stmt!r}"
                )

    def _make_wait(self, stmt: ast.WaitStmt, variables):
        if stmt.condition is not None:
            sens = [
                self.scope.signals[name]
                for name in sorted(_expr_signals(stmt.condition, self.scope))
            ]
            if not sens:
                raise InterpretationError(
                    f"{self.label}: wait-until condition mentions no signal"
                )
            condition = stmt.condition
            scope = self.scope
            label = self.label
            return wait_until(
                lambda: _truthy(_eval(condition, scope, variables), label),
                *sens,
            )
        if stmt.on_signals:
            sens = []
            for name in stmt.on_signals:
                signal = self.scope.signals.get(name)
                if signal is None:
                    raise InterpretationError(
                        f"{self.label}: wait on unknown signal {name!r}"
                    )
                sens.append(signal)
            return wait_on(*sens)
        return wait_forever()


# ----------------------------------------------------------------------
# expression evaluation
# ----------------------------------------------------------------------
def _eval(
    expr: ast.Expr,
    scope: Scope,
    variables: Optional[dict[str, Value]],
    allow_signals: bool = True,
) -> Value:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Name):
        name = expr.ident
        if variables is not None and name in variables:
            return variables[name]
        if name in scope.generics:
            return scope.generics[name]
        if allow_signals and name in scope.signals:
            return scope.signals[name].value
        if name in scope.constants:
            return scope.constants[name]
        if name in scope.enum_literals:
            return scope.enum_literals[name]
        raise InterpretationError(f"unbound name {name!r}")
    if isinstance(expr, ast.Attr):
        return _eval_attr(expr, scope, variables, allow_signals)
    if isinstance(expr, ast.Unary):
        operand = _eval(expr.operand, scope, variables, allow_signals)
        if expr.op == "-":
            return -_int(operand, "unary -")
        if expr.op == "not":
            return not _truthy(operand, "not")
        raise InterpretationError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, scope, variables, allow_signals)
    raise InterpretationError(f"cannot evaluate {expr!r}")


def _eval_attr(expr: ast.Attr, scope, variables, allow_signals) -> Value:
    etype = scope.types.get(expr.prefix)
    if etype is None:
        raise InterpretationError(
            f"attribute prefix {expr.prefix!r} is not a type"
        )
    attr = expr.name
    if attr in ("high", "right"):
        return etype.by_index(len(etype.literals) - 1)
    if attr in ("low", "left"):
        return etype.by_index(0)
    if attr in ("succ", "pred"):
        if expr.arg is None:
            raise InterpretationError(f"{expr.prefix}'{attr} needs an argument")
        value = _eval(expr.arg, scope, variables, allow_signals)
        if not isinstance(value, EnumValue) or value.type_name != etype.name:
            raise InterpretationError(
                f"{expr.prefix}'{attr}: argument is not of type "
                f"{etype.name!r}"
            )
        delta = 1 if attr == "succ" else -1
        return etype.by_index(value.index + delta)
    if attr == "pos":
        value = _eval(expr.arg, scope, variables, allow_signals)
        if not isinstance(value, EnumValue):
            raise InterpretationError(f"'pos argument must be an enum value")
        return value.index
    if attr == "val":
        index = _int(
            _eval(expr.arg, scope, variables, allow_signals), "'val"
        )
        return etype.by_index(index)
    raise InterpretationError(f"unsupported attribute '{attr}")


def _eval_binary(expr: ast.Binary, scope, variables, allow_signals) -> Value:
    op = expr.op
    left = _eval(expr.left, scope, variables, allow_signals)
    if op in ("and", "or"):
        lbool = _truthy(left, op)
        # VHDL's and/or are not short-circuit for booleans, but the
        # result is identical; evaluate eagerly for simplicity.
        rbool = _truthy(
            _eval(expr.right, scope, variables, allow_signals), op
        )
        return (lbool and rbool) if op == "and" else (lbool or rbool)
    right = _eval(expr.right, scope, variables, allow_signals)
    if op == "xor":
        return _truthy(left, op) != _truthy(right, op)
    if op in ("=", "/="):
        equal = left == right
        return equal if op == "=" else not equal
    if op in ("<", "<=", ">", ">="):
        lv = left.index if isinstance(left, EnumValue) else _int(left, op)
        rv = right.index if isinstance(right, EnumValue) else _int(right, op)
        return {
            "<": lv < rv,
            "<=": lv <= rv,
            ">": lv > rv,
            ">=": lv >= rv,
        }[op]
    li, ri = _int(left, op), _int(right, op)
    if op == "+":
        return li + ri
    if op == "-":
        return li - ri
    if op == "*":
        return li * ri
    if op == "/":
        if ri == 0:
            raise InterpretationError("division by zero")
        return int(li / ri) if (li < 0) != (ri < 0) else li // ri
    if op == "mod":
        if ri == 0:
            raise InterpretationError("mod by zero")
        return li % ri
    if op == "rem":
        if ri == 0:
            raise InterpretationError("rem by zero")
        return li - int(li / ri) * ri if (li < 0) != (ri < 0) else li % ri
    if op == "**":
        return li**ri
    raise InterpretationError(f"unknown operator {op!r}")


def _int(value: Value, context: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InterpretationError(f"{context}: expected an integer, got {value!r}")
    return value


def _truthy(value: Value, context: str) -> bool:
    if isinstance(value, bool):
        return value
    raise InterpretationError(
        f"{context}: expected a boolean condition, got {value!r}"
    )


def _default_for(subtype: ast.SubtypeIndication, scope: Scope) -> Value:
    mark = subtype.type_mark
    if mark == "natural":
        return 0
    if mark == "positive":
        return 1
    if mark == "integer":
        return DISC
    etype = scope.types.get(mark)
    if etype is not None:
        return etype.by_index(0)
    raise InterpretationError(f"unknown type {mark!r}")


# ----------------------------------------------------------------------
# static analysis helpers
# ----------------------------------------------------------------------
def _contains_wait(body) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.WaitStmt):
            return True
        if isinstance(stmt, ast.IfStmt):
            for _, branch in stmt.branches:
                if _contains_wait(branch):
                    return True
    return False


def _assigned_signals(body) -> set[str]:
    out: set[str] = set()
    for stmt in body:
        if isinstance(stmt, ast.SignalAssign):
            out.add(stmt.target)
        elif isinstance(stmt, ast.IfStmt):
            for _, branch in stmt.branches:
                out |= _assigned_signals(branch)
    return out


def _expr_signals(expr: ast.Expr, scope: Scope) -> set[str]:
    """Names in an expression that resolve to signals (for wait-until
    sensitivity, as VHDL infers it)."""
    out: set[str] = set()
    if isinstance(expr, ast.Name):
        if expr.ident in scope.signals:
            out.add(expr.ident)
    elif isinstance(expr, ast.Attr):
        if expr.arg is not None:
            out |= _expr_signals(expr.arg, scope)
    elif isinstance(expr, ast.Unary):
        out |= _expr_signals(expr.operand, scope)
    elif isinstance(expr, ast.Binary):
        out |= _expr_signals(expr.left, scope)
        out |= _expr_signals(expr.right, scope)
    return out
