"""Emission of RT models as VHDL source in the paper's subset.

Inverse of the elaboration path: given an
:class:`repro.core.model.RTModel`, produce the §2.7-style concrete
architecture -- CONTROLLER / REG / module / TRANS instances wired over
resolved signals -- together with generated module entities whose
process bodies follow the §2.6 pattern (output at ``cm``, variable
pipeline, all-or-none operand rule, sticky-ILLEGAL guard).

Emitted designs parse, conform to the subset and elaborate back to a
simulation whose register results equal the native elaboration
(experiment E12 checks this on a corpus of models).

Expressible operations: the subset's expressions offer VHDL integer
arithmetic, so module operations must be built from ``+ - * / mod``.
The standard ops ADD, SUB, MULT, PASS/COPY, INC, DEC, NEG, RSHIFT and
LSHIFT qualify; coarse-grain ops (the IKS CORDIC core) do not -- they
would be separate design entities in a real flow -- and cause an
:class:`EmitterError`.
"""

from __future__ import annotations

from typing import Optional

from ..core.model import RTModel
from ..core.modules_lib import ModuleSpec
from ..core.values import DISC


class EmitterError(ValueError):
    """Raised when a model is not expressible in the subset."""


#: op name -> VHDL expression template over a/b with mask m.
_OP_TEMPLATES = {
    "ADD": "({a} + {b}) mod {m}",
    "SUB": "({a} - {b}) mod {m}",
    "MULT": "({a} * {b}) mod {m}",
    "PASS": "{a}",
    "COPY": "{a}",
    "INC": "({a} + 1) mod {m}",
    "DEC": "({a} - 1) mod {m}",
    "NEG": "(0 - {a}) mod {m}",
    "RSHIFT": "{a} / (2 ** {b})",
    "LSHIFT": "({a} * (2 ** {b})) mod {m}",
}

_UNARY_OPS = {"PASS", "COPY", "INC", "DEC", "NEG"}


def emit_model_vhdl(
    model: RTModel,
    entity_name: Optional[str] = None,
    checks: Optional[dict] = None,
) -> str:
    """Render a complete design file for ``model``.

    The file contains one generated module entity per
    :class:`ModuleSpec` plus the top-level architecture; the paper's
    CONTROLLER/TRANS/REG library is assumed present (the elaborator
    includes it automatically).

    ``checks`` maps register names to expected final values: the
    emitted architecture then contains a **self-checking testbench
    process** that samples the registers in the final control step's
    CR phase and raises error-severity assertions on mismatches --
    "simulating designs at a very early stage" with the checks baked
    into the VHDL artifact.
    """
    top = _ident(entity_name or model.name)
    pieces = [f"-- generated from RT model {model.name!r}\n"]
    for spec in model.modules.values():
        pieces.append(emit_module_entity(spec))
    pieces.append(_emit_top(model, top, checks=checks))
    return "\n".join(pieces)


def emit_module_entity(spec: ModuleSpec) -> str:
    """Generate the §2.6-style entity for one functional unit."""
    if not spec.pipelined and spec.latency > 1:
        raise EmitterError(
            f"module {spec.name!r}: non-pipelined multi-step units are "
            f"not expressible in the generated pattern"
        )
    arities = {op.arity for op in spec.operations.values()}
    if len(arities) > 1:
        raise EmitterError(
            f"module {spec.name!r}: mixed operand counts within one unit "
            f"are not expressible"
        )
    arity = arities.pop()
    for name in spec.operations:
        if name not in _OP_TEMPLATES:
            raise EmitterError(
                f"module {spec.name!r}: operation {name!r} has no VHDL "
                f"expression template (coarse-grain unit)"
            )
    unit = _unit_entity_name(spec)
    mask = 1 << spec.width
    lines: list[str] = []
    w = lines.append

    ports = ["PH: in Phase"]
    if arity == 2:
        ports.append("M_in1, M_in2: in Integer")
    else:
        ports.append("M_in1: in Integer")
    if spec.multi_op:
        ports.append("M_op: in Integer")
    ports.append("M_out: out Integer := DISC")
    w(f"entity {unit} is")
    w("  port (" + ";\n        ".join(ports) + ");")
    w(f"end {unit};")
    w("")
    w(f"architecture transfer of {unit} is")
    w("begin")
    w("  process")
    w("    variable V: Integer := DISC;")
    for stage in range(spec.latency):
        w(f"    variable P{stage}: Integer := DISC;")
    if spec.sticky_illegal:
        w("    variable FROZEN: Natural := 0;")
    w("  begin")
    w("    wait until PH = cm;")
    if spec.sticky_illegal:
        w("    if FROZEN = 1 then")
        w("      M_out <= ILLEGAL;")
        w("    else")
        body_indent = "      "
    else:
        body_indent = "    "
    combine = _combine_lines(spec, arity, mask)
    if spec.latency == 0:
        for line in combine:
            w(body_indent + line)
        if spec.sticky_illegal:
            w(body_indent + "if V = ILLEGAL then")
            w(body_indent + "  FROZEN := 1;")
            w(body_indent + "end if;")
        w(body_indent + "M_out <= V;")
    else:
        w(body_indent + f"M_out <= P{spec.latency - 1};")
        for line in combine:
            w(body_indent + line)
        if spec.sticky_illegal:
            w(body_indent + "if V = ILLEGAL then")
            w(body_indent + "  FROZEN := 1;")
            w(body_indent + "end if;")
        for stage in range(spec.latency - 1, 0, -1):
            w(body_indent + f"P{stage} := P{stage - 1};")
        w(body_indent + "P0 := V;")
    if spec.sticky_illegal:
        w("    end if;")
    w("  end process;")
    w("end transfer;")
    w("")
    return "\n".join(lines)


def _combine_lines(spec: ModuleSpec, arity: int, mask: int) -> list[str]:
    """The all-or-none operand combination, with op decode."""
    lines: list[str] = []
    if arity == 2:
        lines.append("if M_in1 = ILLEGAL or M_in2 = ILLEGAL then")
        lines.append("  V := ILLEGAL;")
        lines.append("elsif M_in1 = DISC and M_in2 = DISC then")
        lines.append("  V := DISC;")
        lines.append("elsif M_in1 = DISC or M_in2 = DISC then")
        lines.append("  V := ILLEGAL;")
        lines.append("else")
    else:
        lines.append("if M_in1 = ILLEGAL then")
        lines.append("  V := ILLEGAL;")
        lines.append("elsif M_in1 = DISC then")
        lines.append("  V := DISC;")
        lines.append("else")
    lines.extend("  " + line for line in _op_decode_lines(spec, mask))
    lines.append("end if;")
    return lines


def _op_decode_lines(spec: ModuleSpec, mask: int) -> list[str]:
    def expr(op_name: str) -> str:
        return _OP_TEMPLATES[op_name].format(a="M_in1", b="M_in2", m=mask)

    if not spec.multi_op:
        (only,) = spec.operations
        return [f"V := {expr(only)};"]
    lines: list[str] = []
    names = sorted(spec.operations)
    # DISC on the op port selects the default operation; ILLEGAL (or an
    # out-of-range code) poisons the result.
    lines.append(f"if M_op = DISC then")
    lines.append(f"  V := {expr(spec.default_op)};")
    for code, name in enumerate(names):
        lines.append(f"elsif M_op = {code} then")
        lines.append(f"  V := {expr(name)};")
    lines.append("else")
    lines.append("  V := ILLEGAL;")
    lines.append("end if;")
    return lines


def _emit_top(model: RTModel, top: str, checks: Optional[dict] = None) -> str:
    lines: list[str] = []
    w = lines.append
    w(f"entity {top} is")
    w("end " + top + ";")
    w("")
    w(f"architecture transfer of {top} is")
    w("  -- timing signals")
    w("  signal CS: Natural := 0;")
    w("  signal PH: Phase := cr;")
    w("  -- register ports")
    for reg in model.registers.values():
        name = _ident(reg.name)
        w(f"  signal {name}_in: resolved Integer := DISC;")
        init = reg.init if reg.init != DISC else DISC
        w(f"  signal {name}_out: Integer := {_int_lit(init)};")
    w("  -- module ports")
    for spec in model.modules.values():
        name = _ident(spec.name)
        for i in range(1, spec.arity + 1):
            w(f"  signal {name}_in{i}: resolved Integer := DISC;")
        if spec.multi_op:
            w(f"  signal {name}_op: resolved Integer := DISC;")
        w(f"  signal {name}_out: Integer := DISC;")
    w("  -- buses")
    for bus in model.buses.values():
        w(f"  signal {_ident(bus.name)}: resolved Integer := DISC;")
    op_codes = sorted(
        {
            model.modules[t.module].op_code(t.op)
            for t in model.transfers
            if t.op is not None
        }
    )
    if op_codes:
        w("  -- operation-select constants (§3 extension)")
        for code in op_codes:
            w(f"  signal OPK{code}: Integer := {code};")
    w("begin")
    w("  -- registers")
    for reg in model.registers.values():
        name = _ident(reg.name)
        w(
            f"  {name}_proc: REG generic map ({_int_lit(reg.init)}) "
            f"port map (PH, {name}_in, {name}_out);"
        )
    w("  -- modules")
    for spec in model.modules.values():
        name = _ident(spec.name)
        unit = _unit_entity_name(spec)
        ports = ["PH"]
        ports.extend(f"{name}_in{i}" for i in range(1, spec.arity + 1))
        if spec.multi_op:
            ports.append(f"{name}_op")
        ports.append(f"{name}_out")
        w(f"  {name}_proc: {unit} port map ({', '.join(ports)});")
    w("  -- transfers")
    for spec in model.trans_specs():
        label = _ident(spec.name)
        if spec.source.startswith("op:"):
            op_name = spec.source[3:]
            module_name = spec.sink.rsplit("_op", 1)[0]
            code = model.modules[module_name].op_code(op_name)
            source = f"OPK{code}"
        else:
            source = _ident(spec.source)
        sink = _ident(spec.sink)
        w(
            f"  {label}: TRANS generic map ({spec.step}, "
            f"{spec.phase.vhdl_name}) port map (CS, PH, {source}, {sink});"
        )
    w("  -- controller")
    w(f"  CONTROL: CONTROLLER generic map ({model.cs_max}) port map (CS, PH);")
    if checks:
        unknown = set(checks) - set(model.registers)
        if unknown:
            raise EmitterError(
                f"checks reference unknown registers: {sorted(unknown)}"
            )
        w("  -- self-checking testbench (samples at the final CR phase)")
        w("  checker: process")
        w("  begin")
        w(f"    wait until CS = {model.cs_max} and PH = cr;")
        for register, expected in sorted(checks.items()):
            name = _ident(register)
            w(
                f"    assert {name}_out = {_int_lit(expected)} "
                f'report "{name} expected {expected}" severity error;'
            )
        w("    wait;")
        w("  end process;")
    w("end transfer;")
    w("")
    return "\n".join(lines)


def _unit_entity_name(spec: ModuleSpec) -> str:
    return f"{_ident(spec.name)}_UNIT"


def _ident(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not out or not out[0].isalpha():
        out = "u_" + out
    return out


def _int_lit(value: int) -> str:
    """VHDL integer literal; negatives need parentheses in maps."""
    return str(value) if value >= 0 else f"0 - {-value}"
