"""Abstract syntax of the paper's VHDL subset.

Only what the paper's register-transfer models need: design files with
entities and architectures, signal/constant/type/variable
declarations, component instantiations, processes with wait / signal
assignment / variable assignment / if / null statements, and a small
expression language with attributes (``Phase'High``, ``Phase'Succ(...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IntLit:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Name:
    """An identifier reference (signal, variable, constant, enum literal)."""

    ident: str

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class Attr:
    """An attribute: ``prefix'name`` or ``prefix'name(arg)``."""

    prefix: str
    name: str
    arg: Optional["Expr"] = None

    def __str__(self) -> str:
        suffix = f"({self.arg})" if self.arg is not None else ""
        return f"{self.prefix}'{self.name}{suffix}"


@dataclass(frozen=True)
class Unary:
    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Expr = Union[IntLit, Name, Attr, Unary, Binary]


# ----------------------------------------------------------------------
# declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TypeDecl:
    """``type Phase is (ra, rb, cm, wa, wb, cr);``"""

    name: str
    literals: tuple[str, ...]


@dataclass(frozen=True)
class SubtypeIndication:
    """A type mark with an optional resolution function name.

    ``resolved Integer`` carries resolution ``"resolved"`` (the
    paper's bus/port resolution); a bare type mark carries None.
    """

    type_mark: str
    resolution: Optional[str] = None

    def __str__(self) -> str:
        prefix = f"{self.resolution} " if self.resolution else ""
        return f"{prefix}{self.type_mark}"


@dataclass(frozen=True)
class ConstantDecl:
    name: str
    subtype: SubtypeIndication
    value: Expr


@dataclass(frozen=True)
class SignalDecl:
    names: tuple[str, ...]
    subtype: SubtypeIndication
    init: Optional[Expr] = None


@dataclass(frozen=True)
class VariableDecl:
    names: tuple[str, ...]
    subtype: SubtypeIndication
    init: Optional[Expr] = None


@dataclass(frozen=True)
class PortDecl:
    name: str
    mode: str  # "in" | "out" | "inout"
    subtype: SubtypeIndication
    init: Optional[Expr] = None


@dataclass(frozen=True)
class GenericDecl:
    name: str
    subtype: SubtypeIndication
    default: Optional[Expr] = None


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaitStmt:
    """``wait until <cond>;`` / ``wait on <sigs>;`` / ``wait;``"""

    condition: Optional[Expr] = None
    on_signals: tuple[str, ...] = ()


@dataclass(frozen=True)
class SignalAssign:
    target: str
    value: Expr


@dataclass(frozen=True)
class VarAssign:
    target: str
    value: Expr


@dataclass(frozen=True)
class IfStmt:
    """``if``/``elsif``/``else`` chain: branches of (condition, body),
    with the else branch carrying condition None."""

    branches: tuple[tuple[Optional[Expr], tuple["Stmt", ...]], ...]


@dataclass(frozen=True)
class NullStmt:
    pass


@dataclass(frozen=True)
class AssertStmt:
    """``assert <cond> [report "<msg>"] [severity <level>];``

    Severity levels: ``note``, ``warning`` (collected), ``error``,
    ``failure`` (abort the simulation).  Default severity is ``error``.
    """

    condition: Expr
    report: Optional[str] = None
    severity: str = "error"


Stmt = Union[WaitStmt, SignalAssign, VarAssign, IfStmt, NullStmt, AssertStmt]


# ----------------------------------------------------------------------
# design units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessStmt:
    label: Optional[str]
    sensitivity: tuple[str, ...]
    decls: tuple[VariableDecl, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class AssociationElement:
    """``formal => actual`` (or positional when formal is None)."""

    formal: Optional[str]
    actual: Expr


@dataclass(frozen=True)
class ComponentInst:
    label: str
    entity: str
    generic_map: tuple[AssociationElement, ...] = ()
    port_map: tuple[AssociationElement, ...] = ()


@dataclass(frozen=True)
class EntityDecl:
    name: str
    generics: tuple[GenericDecl, ...] = ()
    ports: tuple[PortDecl, ...] = ()


@dataclass(frozen=True)
class ArchitectureDecl:
    name: str
    entity: str
    decls: tuple[Union[SignalDecl, ConstantDecl, TypeDecl], ...] = ()
    statements: tuple[Union[ProcessStmt, ComponentInst], ...] = ()


@dataclass(frozen=True)
class PackageDecl:
    name: str
    decls: tuple[Union[TypeDecl, ConstantDecl], ...] = ()


DesignUnit = Union[EntityDecl, ArchitectureDecl, PackageDecl]


@dataclass(frozen=True)
class DesignFile:
    units: tuple[DesignUnit, ...]

    def entities(self) -> dict[str, EntityDecl]:
        return {
            unit.name: unit
            for unit in self.units
            if isinstance(unit, EntityDecl)
        }

    def architectures(self) -> dict[str, ArchitectureDecl]:
        """Architecture per entity name (last one wins, as in a library)."""
        return {
            unit.entity: unit
            for unit in self.units
            if isinstance(unit, ArchitectureDecl)
        }

    def packages(self) -> list[PackageDecl]:
        return [u for u in self.units if isinstance(u, PackageDecl)]
