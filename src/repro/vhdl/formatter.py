"""Pretty-printer for the subset's AST.

Renders parsed design files back to VHDL source text.  The output is
canonical (normalized casing, indentation and spacing) and satisfies

    parse(format(parse(text))) == parse(text)

for every design the parser accepts -- checked by the formatter tests.
Useful for normalizing hand-written models, for diffing generated
designs, and as the display form of programmatically built ASTs.
"""

from __future__ import annotations

from typing import Union

from . import ast

INDENT = "  "


def format_file(design: ast.DesignFile) -> str:
    """Render a design file."""
    parts = [format_unit(unit) for unit in design.units]
    return "\n".join(parts)


def format_unit(unit: ast.DesignUnit) -> str:
    if isinstance(unit, ast.EntityDecl):
        return _format_entity(unit)
    if isinstance(unit, ast.ArchitectureDecl):
        return _format_architecture(unit)
    if isinstance(unit, ast.PackageDecl):
        return _format_package(unit)
    raise TypeError(f"not a design unit: {unit!r}")


def format_expr(expr: ast.Expr) -> str:
    """Render an expression with minimal necessary parentheses."""
    return _expr(expr, parent_level=-1)


# precedence levels matching the parser, loosest (0) to tightest
_LEVELS = {
    "or": 0,
    "and": 1,
    "xor": 2,
    "=": 3, "/=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4, "&": 4,
    "*": 5, "/": 5, "mod": 5, "rem": 5,
    "**": 6,
}


def _expr(expr: ast.Expr, parent_level: int) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Attr):
        suffix = f"({_expr(expr.arg, -1)})" if expr.arg is not None else ""
        return f"{expr.prefix}'{expr.name}{suffix}"
    if isinstance(expr, ast.Unary):
        inner = _expr(expr.operand, 10)
        text = f"not {inner}" if expr.op == "not" else f"-{inner}"
        return f"({text})" if parent_level >= 0 else text
    if isinstance(expr, ast.Binary):
        level = _LEVELS[expr.op]
        if expr.op == "**":  # right-associative
            left = _expr(expr.left, level)
            right = _expr(expr.right, level - 1)
        else:  # left-associative
            left = _expr(expr.left, level - 1)
            right = _expr(expr.right, level)
        text = f"{left} {expr.op} {right}"
        if parent_level >= level:
            return f"({text})"
        return text
    raise TypeError(f"not an expression: {expr!r}")


def _format_subtype(subtype: ast.SubtypeIndication) -> str:
    prefix = f"{subtype.resolution} " if subtype.resolution else ""
    return f"{prefix}{subtype.type_mark}"


def _format_entity(entity: ast.EntityDecl) -> str:
    lines = [f"entity {entity.name} is"]
    if entity.generics:
        items = []
        for generic in entity.generics:
            default = (
                f" := {format_expr(generic.default)}"
                if generic.default is not None
                else ""
            )
            items.append(
                f"{generic.name}: {_format_subtype(generic.subtype)}{default}"
            )
        lines.append(f"{INDENT}generic ({'; '.join(items)});")
    if entity.ports:
        items = []
        for port in entity.ports:
            init = (
                f" := {format_expr(port.init)}" if port.init is not None else ""
            )
            items.append(
                f"{port.name}: {port.mode} "
                f"{_format_subtype(port.subtype)}{init}"
            )
        joined = (";\n" + INDENT * 3 + " ").join(items)
        lines.append(f"{INDENT}port ({joined});")
    lines.append(f"end {entity.name};")
    lines.append("")
    return "\n".join(lines)


def _format_package(package: ast.PackageDecl) -> str:
    lines = [f"package {package.name} is"]
    for decl in package.decls:
        lines.append(INDENT + _format_decl(decl))
    lines.append(f"end package {package.name};")
    lines.append("")
    return "\n".join(lines)


def _format_decl(
    decl: Union[ast.TypeDecl, ast.ConstantDecl, ast.SignalDecl]
) -> str:
    if isinstance(decl, ast.TypeDecl):
        return f"type {decl.name} is ({', '.join(decl.literals)});"
    if isinstance(decl, ast.ConstantDecl):
        return (
            f"constant {decl.name}: {_format_subtype(decl.subtype)} := "
            f"{format_expr(decl.value)};"
        )
    if isinstance(decl, ast.SignalDecl):
        init = f" := {format_expr(decl.init)}" if decl.init is not None else ""
        return (
            f"signal {', '.join(decl.names)}: "
            f"{_format_subtype(decl.subtype)}{init};"
        )
    raise TypeError(f"not a declaration: {decl!r}")


def _format_architecture(arch: ast.ArchitectureDecl) -> str:
    lines = [f"architecture {arch.name} of {arch.entity} is"]
    for decl in arch.decls:
        lines.append(INDENT + _format_decl(decl))
    lines.append("begin")
    for stmt in arch.statements:
        if isinstance(stmt, ast.ProcessStmt):
            lines.extend(_format_process(stmt, 1))
        else:
            lines.append(INDENT + _format_instance(stmt))
    lines.append(f"end {arch.name};")
    lines.append("")
    return "\n".join(lines)


def _format_instance(inst: ast.ComponentInst) -> str:
    parts = [f"{inst.label}: {inst.entity}"]
    if inst.generic_map:
        parts.append(f"generic map ({_format_assocs(inst.generic_map)})")
    if inst.port_map:
        parts.append(f"port map ({_format_assocs(inst.port_map)})")
    return " ".join(parts) + ";"


def _format_assocs(assocs) -> str:
    items = []
    for element in assocs:
        actual = format_expr(element.actual)
        if element.formal is not None:
            items.append(f"{element.formal} => {actual}")
        else:
            items.append(actual)
    return ", ".join(items)


def _format_process(proc: ast.ProcessStmt, depth: int) -> list[str]:
    pad = INDENT * depth
    label = f"{proc.label}: " if proc.label else ""
    sensitivity = f" ({', '.join(proc.sensitivity)})" if proc.sensitivity else ""
    lines = [f"{pad}{label}process{sensitivity}"]
    for decl in proc.decls:
        init = f" := {format_expr(decl.init)}" if decl.init is not None else ""
        lines.append(
            f"{pad}{INDENT}variable {', '.join(decl.names)}: "
            f"{_format_subtype(decl.subtype)}{init};"
        )
    lines.append(f"{pad}begin")
    lines.extend(_format_stmts(proc.body, depth + 1))
    lines.append(f"{pad}end process;")
    return lines


def _format_stmts(body, depth: int) -> list[str]:
    pad = INDENT * depth
    lines: list[str] = []
    for stmt in body:
        if isinstance(stmt, ast.WaitStmt):
            if stmt.condition is not None:
                lines.append(f"{pad}wait until {format_expr(stmt.condition)};")
            elif stmt.on_signals:
                lines.append(f"{pad}wait on {', '.join(stmt.on_signals)};")
            else:
                lines.append(f"{pad}wait;")
        elif isinstance(stmt, ast.SignalAssign):
            lines.append(f"{pad}{stmt.target} <= {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.VarAssign):
            lines.append(f"{pad}{stmt.target} := {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.NullStmt):
            lines.append(f"{pad}null;")
        elif isinstance(stmt, ast.AssertStmt):
            text = f"{pad}assert {format_expr(stmt.condition)}"
            if stmt.report is not None:
                escaped = stmt.report.replace('"', '""')
                text += f' report "{escaped}"'
            if stmt.severity != "error":
                text += f" severity {stmt.severity}"
            lines.append(text + ";")
        elif isinstance(stmt, ast.IfStmt):
            lines.extend(_format_if(stmt, depth))
        else:  # pragma: no cover - exhaustive over the AST
            raise TypeError(f"not a statement: {stmt!r}")
    return lines


def _format_if(stmt: ast.IfStmt, depth: int) -> list[str]:
    pad = INDENT * depth
    lines: list[str] = []
    for index, (condition, body) in enumerate(stmt.branches):
        if index == 0:
            lines.append(f"{pad}if {format_expr(condition)} then")
        elif condition is not None:
            lines.append(f"{pad}elsif {format_expr(condition)} then")
        else:
            lines.append(f"{pad}else")
        lines.extend(_format_stmts(body, depth + 1))
    lines.append(f"{pad}end if;")
    return lines
