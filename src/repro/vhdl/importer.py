"""Recovery of :class:`RTModel` structures from subset VHDL.

The compiled backend executes *models*, not VHDL processes; to offer
``repro run --backend compiled`` on a VHDL file, this module inverts
the emitter: it recognizes the paper's §2.7 concrete-architecture shape
(CONTROLLER / REG / TRANS / module-unit component instances over
resolved signals) and rebuilds the :class:`repro.core.model.RTModel`
it denotes.  Module entities are recognized *structurally* -- port
profile, variable pipeline depth, sticky-ILLEGAL guard, and operation
bodies matched against the emitter's expression templates -- so both
emitted designs and the paper's hand-written Fig. 1 (including the
§2.6 ADD of the component library) import cleanly.

This is a bounded inverse, not a general VHDL synthesizer: designs
outside the recognized shape raise :class:`ImporterError`, and
``repro run``'s default event backend keeps interpreting them through
:class:`repro.vhdl.elaborator.Elaborator` unchanged.  Self-checking
testbench processes (wait/assert bodies, as produced by
``emit_model_vhdl(checks=...)``) are accepted and ignored.
"""

from __future__ import annotations

import re
from typing import Optional

from ..core.model import RTModel
from ..core.modules_lib import DEFAULT_WIDTH, ModuleSpec, _standard_operations
from ..core.phases import Phase
from ..core.transfer import TransSpec, from_trans_specs
from ..core.values import DISC, ILLEGAL
from .ast import (
    ArchitectureDecl,
    AssertStmt,
    AssociationElement,
    Binary,
    ComponentInst,
    EntityDecl,
    IfStmt,
    IntLit,
    Name,
    NullStmt,
    ProcessStmt,
    SignalAssign,
    SignalDecl,
    Unary,
    VarAssign,
    WaitStmt,
)
from .emitter import _OP_TEMPLATES
from .formatter import format_expr
from .parser import parse_file
from .stdlib import PAPER_LIBRARY


class ImporterError(ValueError):
    """Raised when a design is outside the recognizable §2.7 shape."""


# ----------------------------------------------------------------------
# operation-template matching
# ----------------------------------------------------------------------
def _norm(text: str) -> str:
    return text.replace(" ", "").replace("(", "").replace(")", "").lower()


def _build_op_patterns() -> list[tuple[str, "re.Pattern[str]"]]:
    patterns: list[tuple[str, re.Pattern[str]]] = []
    for name, template in _OP_TEMPLATES.items():
        norm = _norm(template.format(a="m_in1", b="m_in2", m="\x00"))
        regex = re.escape(norm).replace(re.escape("\x00"), r"(\d+)")
        patterns.append((name, re.compile(f"^{regex}$")))
        if norm.endswith("mod\x00"):
            # The paper's own §2.6 adder computes without a modulus;
            # accept the bare expression as the same operation at the
            # default width.
            bare = re.escape(norm[: -len("mod\x00")])
            patterns.append((name, re.compile(f"^{bare}$")))
    return patterns


_OP_PATTERNS = _build_op_patterns()


def _match_operation(expr) -> Optional[tuple[str, Optional[int]]]:
    """Match an expression against the emitter's operation templates.

    Returns ``(op_name, mask_or_None)``; PASS/COPY are textually
    identical (``{a}``) and resolve to PASS.
    """
    norm = _norm(format_expr(expr))
    for name, pattern in _OP_PATTERNS:
        match = pattern.match(norm)
        if match:
            mask = int(match.group(1)) if pattern.groups else None
            return name, mask
    return None


# ----------------------------------------------------------------------
# small expression helpers
# ----------------------------------------------------------------------
def _int_value(expr) -> int:
    """Evaluate a constant expression (integer literals, DISC/ILLEGAL,
    and the emitter's ``0 - n`` negative encoding)."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Unary) and expr.op == "-":
        return -_int_value(expr.operand)
    if isinstance(expr, Binary) and expr.op in ("+", "-"):
        left, right = _int_value(expr.left), _int_value(expr.right)
        return left + right if expr.op == "+" else left - right
    if isinstance(expr, Name):
        if expr.ident == "disc":
            return DISC
        if expr.ident == "illegal":
            return ILLEGAL
    raise ImporterError(f"not a constant expression: {format_expr(expr)}")


def _name_of(expr, what: str) -> str:
    if not isinstance(expr, Name):
        raise ImporterError(f"{what}: expected a signal name, got "
                            f"{format_expr(expr)}")
    return expr.ident


def _associate(
    formals: list[str], elements: tuple[AssociationElement, ...], what: str
) -> dict[str, object]:
    """Resolve positional/named association to formal -> actual expr."""
    mapping: dict[str, object] = {}
    position = 0
    for element in elements:
        if element.formal is not None:
            mapping[element.formal] = element.actual
        else:
            if position >= len(formals):
                raise ImporterError(f"{what}: too many positional actuals")
            mapping[formals[position]] = element.actual
            position += 1
    return mapping


# ----------------------------------------------------------------------
# module-unit recognition
# ----------------------------------------------------------------------
def _is_checker_process(process: ProcessStmt) -> bool:
    """A testbench process: only waits, asserts and nulls."""
    def only_checks(stmts) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (WaitStmt, AssertStmt, NullStmt)):
                continue
            if isinstance(stmt, IfStmt):
                if not all(only_checks(body) for _, body in stmt.branches):
                    return False
                continue
            return False
        return True

    return only_checks(process.body)


def _iter_conditions(stmts):
    for stmt in stmts:
        if isinstance(stmt, IfStmt):
            for condition, body in stmt.branches:
                if condition is not None:
                    yield condition
                yield from _iter_conditions(body)


def _ordered_events(stmts, out_formal: str, acc: list) -> None:
    """Flatten the process body into ordered (out/var, expr) events."""
    for stmt in stmts:
        if isinstance(stmt, SignalAssign) and stmt.target == out_formal:
            acc.append(("out", stmt.value))
        elif isinstance(stmt, VarAssign):
            acc.append(("var", stmt.target, stmt.value))
        elif isinstance(stmt, IfStmt):
            for _, body in stmt.branches:
                _ordered_events(body, out_formal, acc)


class _UnitShape:
    """Structural description recovered from one module entity."""

    def __init__(
        self,
        arity: int,
        multi_op: bool,
        latency: int,
        sticky: bool,
        operations: dict[str, int],  # op name -> decode code (or -1)
        default_op: str,
        mask: Optional[int],
    ) -> None:
        self.arity = arity
        self.multi_op = multi_op
        self.latency = latency
        self.sticky = sticky
        self.operations = operations
        self.default_op = default_op
        self.mask = mask


def _analyze_unit(entity: EntityDecl, arch: ArchitectureDecl) -> _UnitShape:
    """Recognize a §2.6-style functional-unit entity."""
    formals = [port.name for port in entity.ports]
    arity = sum(1 for f in formals if re.fullmatch(r"m_in\d+", f))
    if arity not in (1, 2):
        raise ImporterError(
            f"entity {entity.name!r}: no m_in1/m_in2 operand ports"
        )
    multi_op = "m_op" in formals
    outs = [p.name for p in entity.ports if p.mode == "out"]
    if len(outs) != 1:
        raise ImporterError(
            f"entity {entity.name!r}: expected exactly one output port"
        )
    out_formal = outs[0]
    processes = [
        s for s in arch.statements if isinstance(s, ProcessStmt)
    ]
    if len(processes) != 1 or any(
        isinstance(s, ComponentInst) for s in arch.statements
    ):
        raise ImporterError(
            f"entity {entity.name!r}: expected a single-process architecture"
        )
    process = processes[0]
    variables = [n for decl in process.decls for n in decl.names]

    pipe_vars = [v for v in variables if re.fullmatch(r"p\d+", v)]
    events: list = []
    _ordered_events(process.body, out_formal, events)

    if pipe_vars:
        latency = len(pipe_vars)
    else:
        latency = 0
        for event in events:
            if event[0] == "out":
                expr = event[1]
                if isinstance(expr, Name) and expr.ident in (
                    "disc", "illegal",
                ):
                    continue
                # Output assigned before any computation: the paper's
                # §2.6 single-variable pipeline (latency 1).
                if isinstance(expr, Name) and expr.ident in variables:
                    latency = 1
                break
            if event[0] == "var":
                break

    sticky = "frozen" in variables or any(
        isinstance(cond, Binary)
        and cond.op == "/="
        and isinstance(cond.left, Name)
        and cond.left.ident in variables
        and isinstance(cond.right, Name)
        and cond.right.ident == "illegal"
        for cond in _iter_conditions(process.body)
    )

    masks: set[int] = set()
    operations: dict[str, int] = {}
    default_op: Optional[str] = None
    if multi_op:
        decode = _find_op_decode(process.body, "m_op")
        if decode is None:
            raise ImporterError(
                f"entity {entity.name!r}: no operation decode over m_op"
            )
        for condition, body in decode.branches:
            matched = _first_operation(body)
            if condition is None:
                continue  # else-branch: ILLEGAL poison
            selector = _decode_selector(condition)
            if selector == "disc":
                if matched is None:
                    raise ImporterError(
                        f"entity {entity.name!r}: default branch has no "
                        f"recognizable operation"
                    )
                default_op = matched[0]
                if matched[1] is not None:
                    masks.add(matched[1])
            else:
                if matched is None:
                    raise ImporterError(
                        f"entity {entity.name!r}: op code {selector} has no "
                        f"recognizable operation"
                    )
                operations[matched[0]] = selector
                if matched[1] is not None:
                    masks.add(matched[1])
        if default_op is None:
            raise ImporterError(
                f"entity {entity.name!r}: operation decode lacks the DISC "
                f"default branch"
            )
        codes = sorted(operations.items(), key=lambda item: item[1])
        if [code for _, code in codes] != list(range(len(codes))) or [
            name for name, _ in codes
        ] != sorted(operations):
            raise ImporterError(
                f"entity {entity.name!r}: operation codes do not follow the "
                f"sorted-name encoding"
            )
    else:
        found: dict[str, Optional[int]] = {}
        for event in events:
            if event[0] != "var":
                continue
            matched = _match_operation(event[2])
            if matched is not None:
                found.setdefault(matched[0], matched[1])
                if matched[1] is not None:
                    masks.add(matched[1])
        if len(found) != 1:
            raise ImporterError(
                f"entity {entity.name!r}: expected exactly one operation "
                f"body, recognized {sorted(found) or 'none'}"
            )
        (default_op,) = found
        operations[default_op] = -1

    if len(masks) > 1:
        raise ImporterError(
            f"entity {entity.name!r}: inconsistent arithmetic masks {masks}"
        )
    return _UnitShape(
        arity=arity,
        multi_op=multi_op,
        latency=latency,
        sticky=sticky,
        operations=operations,
        default_op=default_op,
        mask=masks.pop() if masks else None,
    )


def _find_op_decode(stmts, op_formal: str) -> Optional[IfStmt]:
    for stmt in stmts:
        if isinstance(stmt, IfStmt):
            first = stmt.branches[0][0]
            if (
                isinstance(first, Binary)
                and first.op == "="
                and isinstance(first.left, Name)
                and first.left.ident == op_formal
            ):
                return stmt
            for _, body in stmt.branches:
                found = _find_op_decode(body, op_formal)
                if found is not None:
                    return found
    return None


def _decode_selector(condition) -> object:
    if (
        isinstance(condition, Binary)
        and condition.op == "="
        and isinstance(condition.left, Name)
    ):
        if isinstance(condition.right, Name):
            return condition.right.ident
        if isinstance(condition.right, IntLit):
            return condition.right.value
    raise ImporterError(
        f"unrecognized operation-decode condition: {format_expr(condition)}"
    )


def _first_operation(stmts) -> Optional[tuple[str, Optional[int]]]:
    events: list = []
    _ordered_events(stmts, out_formal="", acc=events)
    for event in events:
        if event[0] == "var":
            matched = _match_operation(event[2])
            if matched is not None:
                return matched
    return None


# ----------------------------------------------------------------------
# top-level recovery
# ----------------------------------------------------------------------
def recover_model(
    text: str, top: str, include_paper_library: bool = True
) -> RTModel:
    """Rebuild the :class:`RTModel` denoted by a §2.7-style design.

    ``top`` names the top entity; its architecture must consist of
    CONTROLLER/REG/TRANS/module component instances (plus optional
    checker processes).  Identifiers come back lowercased, as the
    subset lexer normalizes case.
    """
    source = PAPER_LIBRARY + "\n" + text if include_paper_library else text
    design = parse_file(source)
    architectures = design.architectures()
    entities = design.entities()
    top_name = top.lower()
    if top_name not in architectures:
        raise ImporterError(f"no architecture for entity {top!r}")
    arch = architectures[top_name]

    resolved_signals: list[str] = []
    signal_inits: dict[str, int] = {}
    unresolved: set[str] = set()
    for decl in arch.decls:
        if not isinstance(decl, SignalDecl):
            continue
        for name in decl.names:
            if decl.subtype.resolution is not None:
                resolved_signals.append(name)
            else:
                unresolved.add(name)
                if decl.init is not None:
                    try:
                        signal_inits[name] = _int_value(decl.init)
                    except ImporterError:
                        pass  # e.g. PH's phase-typed init

    cs_max: Optional[int] = None
    registers: list[tuple[str, int]] = []
    raw_trans: list[tuple[str, int, Phase, str, str]] = []
    module_insts: list[tuple[str, ComponentInst]] = []
    for stmt in arch.statements:
        if isinstance(stmt, ProcessStmt):
            if _is_checker_process(stmt):
                continue
            raise ImporterError(
                f"process {stmt.label or '<anonymous>'}: only checker "
                f"(wait/assert) processes are recognized at the top level"
            )
        if not isinstance(stmt, ComponentInst):
            raise ImporterError(f"unrecognized concurrent statement: {stmt}")
        if stmt.entity == "controller":
            generics = _associate(["cs_max"], stmt.generic_map, stmt.label)
            if "cs_max" not in generics:
                raise ImporterError(f"{stmt.label}: CONTROLLER needs CS_MAX")
            cs_max = _int_value(generics["cs_max"])
        elif stmt.entity == "reg":
            generics = _associate(["init"], stmt.generic_map, stmt.label)
            init = (
                _int_value(generics["init"]) if "init" in generics else DISC
            )
            ports = _associate(
                ["ph", "r_in", "r_out"], stmt.port_map, stmt.label
            )
            out_name = _name_of(ports.get("r_out"), f"{stmt.label}: R_out")
            if not out_name.endswith("_out"):
                raise ImporterError(
                    f"{stmt.label}: register output {out_name!r} must be "
                    f"named <register>_out"
                )
            registers.append((out_name[: -len("_out")], init))
        elif stmt.entity == "trans":
            generics = _associate(["s", "p"], stmt.generic_map, stmt.label)
            if "s" not in generics or "p" not in generics:
                raise ImporterError(f"{stmt.label}: TRANS needs (S, P)")
            step = _int_value(generics["s"])
            phase = Phase.from_vhdl_name(
                _name_of(generics["p"], f"{stmt.label}: P")
            )
            ports = _associate(
                ["cs", "ph", "ins", "outs"], stmt.port_map, stmt.label
            )
            source = _name_of(ports.get("ins"), f"{stmt.label}: InS")
            sink = _name_of(ports.get("outs"), f"{stmt.label}: OutS")
            raw_trans.append((stmt.label, step, phase, source, sink))
        else:
            module_insts.append((stmt.label, stmt))

    if cs_max is None:
        raise ImporterError("no CONTROLLER instance found")

    # -- modules --------------------------------------------------------
    module_specs: list[tuple[str, _UnitShape]] = []
    masks: set[int] = set()
    shapes: dict[str, _UnitShape] = {}
    for label, inst in module_insts:
        entity = entities.get(inst.entity)
        unit_arch = architectures.get(inst.entity)
        if entity is None or unit_arch is None:
            raise ImporterError(
                f"{label}: unknown component entity {inst.entity!r}"
            )
        shape = _analyze_unit(entity, unit_arch)
        formals = [port.name for port in entity.ports]
        ports = _associate(formals, inst.port_map, label)
        out_actual = _name_of(ports.get("m_out"), f"{label}: M_out")
        if not out_actual.endswith("_out"):
            raise ImporterError(
                f"{label}: module output {out_actual!r} must be named "
                f"<module>_out"
            )
        module_name = out_actual[: -len("_out")]
        shapes[module_name] = shape
        if shape.mask is not None:
            masks.add(shape.mask)
        module_specs.append((module_name, shape))

    if len(masks) > 1:
        raise ImporterError(f"inconsistent module arithmetic masks: {masks}")
    width = masks.pop().bit_length() - 1 if masks else DEFAULT_WIDTH
    standard_ops = _standard_operations(width)

    # -- transfers ------------------------------------------------------
    module_names = {name for name, _ in module_specs}
    op_constants = {
        name: value
        for name, value in signal_inits.items()
        if name in unresolved and not name.endswith("_out")
    }
    specs: list[TransSpec] = []
    for label, step, phase, source, sink in raw_trans:
        if sink.endswith("_op"):
            module_name = sink.rsplit("_op", 1)[0]
            if module_name not in shapes:
                raise ImporterError(
                    f"{label}: op sink {sink!r} names no module"
                )
            if source not in op_constants:
                raise ImporterError(
                    f"{label}: op source {source!r} is not a constant signal"
                )
            code = op_constants[source]
            names = sorted(shapes[module_name].operations)
            if not 0 <= code < len(names):
                raise ImporterError(
                    f"{label}: op code {code} out of range for {module_name}"
                )
            source = f"op:{names[code]}"
        specs.append(TransSpec(step, phase, source, sink))

    # -- buses ----------------------------------------------------------
    port_suffixes = {f"{name}_in" for name, _ in registers}
    for name in module_names:
        port_suffixes.add(f"{name}_op")
        port_suffixes.update(
            f"{name}_in{i}" for i in range(1, 3)
        )
    buses = [s for s in resolved_signals if s not in port_suffixes]

    # -- rebuild --------------------------------------------------------
    model = RTModel(top_name, cs_max=cs_max, width=width)
    for name, init in registers:
        model.register(name, init=init)
    for bus in buses:
        model.bus(bus)
    for name, shape in module_specs:
        operations = {
            op: standard_ops[op] for op in shape.operations
        }
        if shape.default_op not in operations:
            operations[shape.default_op] = standard_ops[shape.default_op]
        model.module(
            ModuleSpec(
                name=name,
                operations=operations,
                default_op=shape.default_op,
                latency=shape.latency,
                pipelined=True,
                width=width,
                sticky_illegal=shape.sticky,
            )
        )
    latency_of = {name: shape.latency for name, shape in module_specs}
    for transfer in from_trans_specs(
        specs, latency_of=lambda module: latency_of[module]
    ):
        model.add_transfer(transfer)
    return model
