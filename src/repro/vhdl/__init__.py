"""VHDL subset front end and emitter (S5/S6).

Lexer (:mod:`lexer`), AST (:mod:`ast`), parser (:mod:`parser`),
subset-conformance checker (:mod:`subset`), elaborating interpreter
(:mod:`elaborator`), the paper's component library as source text
(:mod:`stdlib`), and the RT-model-to-VHDL emitter (:mod:`emitter`).

The defining round trip: ``emit_model_vhdl(model)`` produces source
that parses, conforms, elaborates and simulates to the same register
results as the native elaboration of ``model``.
"""

from .elaborator import (
    ElaboratedDesign,
    ElaborationError,
    Elaborator,
    EnumType,
    EnumValue,
    InterpretationError,
)
from .emitter import EmitterError, emit_model_vhdl, emit_module_entity
from .formatter import format_expr, format_file, format_unit
from .importer import ImporterError, recover_model
from .lexer import Token, VhdlSyntaxError, tokenize
from .parser import parse_expression, parse_file
from .stdlib import EXAMPLE_FIG1, PAPER_LIBRARY
from .subset import SubsetReport, Violation, check_subset


def roundtrip_model(model, register_values=None):
    """Emit ``model`` as VHDL, re-elaborate, simulate, and return the
    register values observed through the VHDL path.

    ``register_values`` overrides register presets, mirroring
    :meth:`RTModel.elaborate` (the override is applied by rewriting
    the REG INIT generics, i.e. before emission).
    """
    from ..core.model import RTModel

    if register_values:
        # Rebuild the model with overridden presets.
        patched = RTModel(model.name, model.cs_max, model.width)
        for reg in model.registers.values():
            patched.register(
                reg.name, init=register_values.get(reg.name, reg.init)
            )
        for bus in model.buses.values():
            patched.bus(bus.name, direct_link=bus.direct_link)
        for spec in model.modules.values():
            patched.module(spec)
        for transfer in model.transfers:
            patched.add_transfer(transfer)
        model = patched
    text = emit_model_vhdl(model)
    design = Elaborator(text).elaborate(model.name.lower())
    design.run()
    results = {}
    for reg in model.registers.values():
        results[reg.name] = design.signal(f"{reg.name}_out".lower()).value
    return results


__all__ = [
    "ElaboratedDesign",
    "ElaborationError",
    "Elaborator",
    "EmitterError",
    "EnumType",
    "EnumValue",
    "EXAMPLE_FIG1",
    "InterpretationError",
    "PAPER_LIBRARY",
    "SubsetReport",
    "Token",
    "VhdlSyntaxError",
    "Violation",
    "check_subset",
    "emit_model_vhdl",
    "emit_module_entity",
    "format_expr",
    "format_file",
    "format_unit",
    "ImporterError",
    "parse_expression",
    "parse_file",
    "recover_model",
    "roundtrip_model",
    "tokenize",
]
