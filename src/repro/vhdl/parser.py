"""Recursive-descent parser for the paper's VHDL subset."""

from __future__ import annotations

from typing import Optional

from . import ast
from .lexer import Token, VhdlSyntaxError, tokenize


def parse_file(text: str) -> ast.DesignFile:
    """Parse VHDL source into a design file."""
    return _Parser(tokenize(text)).parse_design_file()


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (mainly for tests)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_kind("eof")
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str) -> VhdlSyntaxError:
        token = self.peek()
        return VhdlSyntaxError(
            f"{message}, found {token}", token.line, token.column
        )

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise self.error(f"expected {word!r}")
        return self.advance()

    def expect_delim(self, delim: str) -> Token:
        token = self.peek()
        if not token.is_delim(delim):
            raise self.error(f"expected {delim!r}")
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise self.error("expected identifier")
        return self.advance().text

    def expect_kind(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise self.error(f"expected {kind}")
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def accept_delim(self, delim: str) -> bool:
        if self.peek().is_delim(delim):
            self.advance()
            return True
        return False

    # -- design file -------------------------------------------------------
    def parse_design_file(self) -> ast.DesignFile:
        units: list[ast.DesignUnit] = []
        while not self.peek().kind == "eof":
            # Tolerate (and ignore) library/use clauses.
            if self.accept_keyword("library"):
                self.expect_ident()
                self.expect_delim(";")
                continue
            if self.accept_keyword("use"):
                while not self.accept_delim(";"):
                    self.advance()
                continue
            token = self.peek()
            if token.is_keyword("entity"):
                units.append(self.parse_entity())
            elif token.is_keyword("architecture"):
                units.append(self.parse_architecture())
            elif token.is_keyword("package"):
                units.append(self.parse_package())
            else:
                raise self.error(
                    "expected entity, architecture or package declaration"
                )
        return ast.DesignFile(tuple(units))

    # -- entities -----------------------------------------------------------
    def parse_entity(self) -> ast.EntityDecl:
        self.expect_keyword("entity")
        name = self.expect_ident()
        self.expect_keyword("is")
        generics: tuple[ast.GenericDecl, ...] = ()
        ports: tuple[ast.PortDecl, ...] = ()
        if self.accept_keyword("generic"):
            generics = self.parse_generic_clause()
        if self.accept_keyword("port"):
            ports = self.parse_port_clause()
        self.expect_keyword("end")
        self.accept_keyword("entity")
        if self.peek().kind == "ident":
            closing = self.expect_ident()
            if closing != name:
                raise self.error(
                    f"entity closing name {closing!r} does not match {name!r}"
                )
        self.expect_delim(";")
        return ast.EntityDecl(name, generics, ports)

    def parse_generic_clause(self) -> tuple[ast.GenericDecl, ...]:
        self.expect_delim("(")
        decls: list[ast.GenericDecl] = []
        while True:
            names = self.parse_ident_list()
            self.expect_delim(":")
            subtype = self.parse_subtype()
            default = None
            if self.accept_delim(":="):
                default = self.parse_expr()
            for ident in names:
                decls.append(ast.GenericDecl(ident, subtype, default))
            if not self.accept_delim(";"):
                break
        self.expect_delim(")")
        self.expect_delim(";")
        return tuple(decls)

    def parse_port_clause(self) -> tuple[ast.PortDecl, ...]:
        self.expect_delim("(")
        decls: list[ast.PortDecl] = []
        while True:
            names = self.parse_ident_list()
            self.expect_delim(":")
            mode = "in"
            for candidate in ("inout", "in", "out"):
                if self.accept_keyword(candidate):
                    mode = candidate
                    break
            subtype = self.parse_subtype()
            init = None
            if self.accept_delim(":="):
                init = self.parse_expr()
            for ident in names:
                decls.append(ast.PortDecl(ident, mode, subtype, init))
            if not self.accept_delim(";"):
                break
        self.expect_delim(")")
        self.expect_delim(";")
        return tuple(decls)

    def parse_ident_list(self) -> list[str]:
        names = [self.expect_ident()]
        while self.accept_delim(","):
            names.append(self.expect_ident())
        return names

    def parse_subtype(self) -> ast.SubtypeIndication:
        first = self.expect_ident()
        if self.peek().kind == "ident":
            # "resolved Integer": resolution function + type mark.
            mark = self.expect_ident()
            return ast.SubtypeIndication(mark, resolution=first)
        return ast.SubtypeIndication(first)

    # -- packages -------------------------------------------------------------
    def parse_package(self) -> ast.PackageDecl:
        self.expect_keyword("package")
        name = self.expect_ident()
        self.expect_keyword("is")
        decls: list = []
        while not self.peek().is_keyword("end"):
            token = self.peek()
            if token.is_keyword("type"):
                decls.append(self.parse_type_decl())
            elif token.is_keyword("constant"):
                decls.append(self.parse_constant_decl())
            else:
                raise self.error(
                    "only type and constant declarations allowed in packages"
                )
        self.expect_keyword("end")
        self.accept_keyword("package")
        if self.peek().kind == "ident":
            self.expect_ident()
        self.expect_delim(";")
        return ast.PackageDecl(name, tuple(decls))

    # -- architectures -----------------------------------------------------
    def parse_architecture(self) -> ast.ArchitectureDecl:
        self.expect_keyword("architecture")
        name = self.expect_ident()
        self.expect_keyword("of")
        entity = self.expect_ident()
        self.expect_keyword("is")
        decls: list = []
        while not self.peek().is_keyword("begin"):
            token = self.peek()
            if token.is_keyword("signal"):
                decls.append(self.parse_signal_decl())
            elif token.is_keyword("constant"):
                decls.append(self.parse_constant_decl())
            elif token.is_keyword("type"):
                decls.append(self.parse_type_decl())
            elif token.is_keyword("component"):
                self.skip_component_decl()
            else:
                raise self.error("unexpected architecture declaration")
        self.expect_keyword("begin")
        statements: list = []
        while not self.peek().is_keyword("end"):
            statements.append(self.parse_concurrent_statement())
        self.expect_keyword("end")
        self.accept_keyword("architecture")
        if self.peek().kind == "ident":
            self.expect_ident()
        self.expect_delim(";")
        return ast.ArchitectureDecl(name, entity, tuple(decls), tuple(statements))

    def parse_signal_decl(self) -> ast.SignalDecl:
        self.expect_keyword("signal")
        names = self.parse_ident_list()
        self.expect_delim(":")
        subtype = self.parse_subtype()
        init = None
        if self.accept_delim(":="):
            init = self.parse_expr()
        self.expect_delim(";")
        return ast.SignalDecl(tuple(names), subtype, init)

    def parse_constant_decl(self) -> ast.ConstantDecl:
        self.expect_keyword("constant")
        name = self.expect_ident()
        self.expect_delim(":")
        subtype = self.parse_subtype()
        self.expect_delim(":=")
        value = self.parse_expr()
        self.expect_delim(";")
        return ast.ConstantDecl(name, subtype, value)

    def parse_type_decl(self) -> ast.TypeDecl:
        self.expect_keyword("type")
        name = self.expect_ident()
        self.expect_keyword("is")
        self.expect_delim("(")
        literals = self.parse_ident_list()
        self.expect_delim(")")
        self.expect_delim(";")
        return ast.TypeDecl(name, tuple(literals))

    def skip_component_decl(self) -> None:
        """Component declarations repeat entity interfaces; skip them
        (instantiations resolve against the entity directly)."""
        self.expect_keyword("component")
        depth = 0
        while True:
            token = self.advance()
            if token.kind == "eof":
                raise self.error("unterminated component declaration")
            if token.is_keyword("end"):
                self.accept_keyword("component")
                if self.peek().kind == "ident":
                    self.expect_ident()
                self.expect_delim(";")
                return

    # -- concurrent statements ------------------------------------------------
    def parse_concurrent_statement(self):
        if self.peek().is_keyword("process"):
            return self.parse_process(label=None)
        label = self.expect_ident()
        self.expect_delim(":")
        if self.peek().is_keyword("process"):
            return self.parse_process(label=label)
        return self.parse_component_inst(label)

    def parse_component_inst(self, label: str) -> ast.ComponentInst:
        self.accept_keyword("entity")  # "entity work.NAME" style
        entity = self.expect_ident()
        if self.accept_delim("."):
            entity = self.expect_ident()  # work.NAME -> NAME
        generic_map: tuple[ast.AssociationElement, ...] = ()
        port_map: tuple[ast.AssociationElement, ...] = ()
        if self.accept_keyword("generic"):
            self.expect_keyword("map")
            generic_map = self.parse_association_list()
        if self.accept_keyword("port"):
            self.expect_keyword("map")
            port_map = self.parse_association_list()
        self.expect_delim(";")
        return ast.ComponentInst(label, entity, generic_map, port_map)

    def parse_association_list(self) -> tuple[ast.AssociationElement, ...]:
        self.expect_delim("(")
        items: list[ast.AssociationElement] = []
        while True:
            formal = None
            if (
                self.peek().kind == "ident"
                and self.peek(1).is_delim("=>")
            ):
                formal = self.expect_ident()
                self.expect_delim("=>")
            items.append(ast.AssociationElement(formal, self.parse_expr()))
            if not self.accept_delim(","):
                break
        self.expect_delim(")")
        return tuple(items)

    def parse_process(self, label: Optional[str]) -> ast.ProcessStmt:
        self.expect_keyword("process")
        sensitivity: tuple[str, ...] = ()
        if self.accept_delim("("):
            sensitivity = tuple(self.parse_ident_list())
            self.expect_delim(")")
        decls: list[ast.VariableDecl] = []
        while self.peek().is_keyword("variable"):
            self.expect_keyword("variable")
            names = self.parse_ident_list()
            self.expect_delim(":")
            subtype = self.parse_subtype()
            init = None
            if self.accept_delim(":="):
                init = self.parse_expr()
            self.expect_delim(";")
            decls.append(ast.VariableDecl(tuple(names), subtype, init))
        self.expect_keyword("begin")
        body = self.parse_sequential_statements(("end",))
        self.expect_keyword("end")
        self.expect_keyword("process")
        if self.peek().kind == "ident":
            self.expect_ident()
        self.expect_delim(";")
        return ast.ProcessStmt(label, sensitivity, tuple(decls), body)

    # -- sequential statements -------------------------------------------------
    def parse_sequential_statements(
        self, terminators: tuple[str, ...]
    ) -> tuple[ast.Stmt, ...]:
        statements: list[ast.Stmt] = []
        while not any(self.peek().is_keyword(t) for t in terminators):
            statements.append(self.parse_sequential_statement())
        return tuple(statements)

    def parse_sequential_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_keyword("wait"):
            return self.parse_wait()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("null"):
            self.advance()
            self.expect_delim(";")
            return ast.NullStmt()
        if token.is_keyword("assert"):
            return self.parse_assert()
        if token.kind == "ident":
            target = self.expect_ident()
            if self.accept_delim("<="):
                value = self.parse_expr()
                self.expect_delim(";")
                return ast.SignalAssign(target, value)
            if self.accept_delim(":="):
                value = self.parse_expr()
                self.expect_delim(";")
                return ast.VarAssign(target, value)
            raise self.error("expected '<=' or ':=' after target")
        raise self.error("expected sequential statement")

    def parse_assert(self) -> ast.AssertStmt:
        self.expect_keyword("assert")
        condition = self.parse_expr()
        report = None
        severity = "error"
        if self.accept_keyword("report"):
            report = self.expect_kind("string").text
        if self.accept_keyword("severity"):
            level = self.expect_ident()
            if level not in ("note", "warning", "error", "failure"):
                raise self.error(f"unknown severity level {level!r}")
            severity = level
        self.expect_delim(";")
        return ast.AssertStmt(condition, report, severity)

    def parse_wait(self) -> ast.WaitStmt:
        self.expect_keyword("wait")
        if self.accept_keyword("until"):
            condition = self.parse_expr()
            self.expect_delim(";")
            return ast.WaitStmt(condition=condition)
        if self.accept_keyword("on"):
            signals = tuple(self.parse_ident_list())
            self.expect_delim(";")
            return ast.WaitStmt(on_signals=signals)
        self.expect_delim(";")
        return ast.WaitStmt()

    def parse_if(self) -> ast.IfStmt:
        self.expect_keyword("if")
        branches: list[tuple[Optional[ast.Expr], tuple[ast.Stmt, ...]]] = []
        condition = self.parse_expr()
        self.expect_keyword("then")
        body = self.parse_sequential_statements(("elsif", "else", "end"))
        branches.append((condition, body))
        while self.peek().is_keyword("elsif"):
            self.expect_keyword("elsif")
            condition = self.parse_expr()
            self.expect_keyword("then")
            body = self.parse_sequential_statements(("elsif", "else", "end"))
            branches.append((condition, body))
        if self.accept_keyword("else"):
            body = self.parse_sequential_statements(("end",))
            branches.append((None, body))
        self.expect_keyword("end")
        self.expect_keyword("if")
        self.expect_delim(";")
        return ast.IfStmt(tuple(branches))

    # -- expressions ---------------------------------------------------------
    # precedence, loosest first
    _LEVELS = (
        ("or",),
        ("and",),
        ("xor",),
        ("=", "/=", "<", "<=", ">", ">="),
        ("+", "-", "&"),
        ("*", "/", "mod", "rem"),
    )

    def parse_expr(self, level: int = 0) -> ast.Expr:
        if level >= len(self._LEVELS):
            return self.parse_factor()
        left = self.parse_expr(level + 1)
        while True:
            token = self.peek()
            ops = self._LEVELS[level]
            matched = None
            for op in ops:
                if token.is_delim(op) or token.is_keyword(op):
                    matched = op
                    break
            if matched is None:
                return left
            self.advance()
            right = self.parse_expr(level + 1)
            left = ast.Binary(matched, left, right)

    def parse_factor(self) -> ast.Expr:
        token = self.peek()
        if token.is_keyword("not"):
            self.advance()
            return ast.Unary("not", self.parse_factor())
        if token.is_delim("-"):
            self.advance()
            return ast.Unary("-", self.parse_factor())
        if token.is_delim("+"):
            self.advance()
            return self.parse_factor()
        primary = self.parse_primary()
        # Exponentiation binds tightest and is right-associative
        # (2 ** 3 ** 2 = 2 ** (3 ** 2), as in the LRM).
        if self.peek().is_delim("**"):
            self.advance()
            return ast.Binary("**", primary, self.parse_factor())
        return primary

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return ast.IntLit(int(token.text))
        if token.is_delim("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_delim(")")
            return inner
        if token.kind == "ident":
            ident = self.expect_ident()
            if self.accept_delim("'"):
                attr = self.expect_ident()
                arg = None
                if self.accept_delim("("):
                    arg = self.parse_expr()
                    self.expect_delim(")")
                return ast.Attr(ident, attr, arg)
            return ast.Name(ident)
        raise self.error("expected expression")
