"""Subset-conformance checking.

The paper defines its register-transfer style as a *VHDL subset*; this
module checks that a parsed design actually stays inside it.  The
grammar already excludes most of full VHDL (no ``after`` clauses, no
loops, no functions in process bodies); the checker enforces the
remaining structural rules:

* every process has either a sensitivity list or at least one wait
  statement (never both, never neither);
* processes only wait on delta events -- the subset has no ``wait
  for`` and hence no physical time at all;
* resolved signals use the paper's resolution (``resolved``);
* every signal assignment targets a declared signal or out/inout
  port, every instantiated entity exists, and association lists match
  the instantiated interfaces;
* only integer/natural and declared enumeration types appear.

The checker reports all violations instead of stopping at the first,
so a design can be cleaned up in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from . import ast
from .parser import parse_file
from .stdlib import PAPER_LIBRARY


@dataclass(frozen=True)
class Violation:
    """One subset-conformance violation."""

    where: str
    message: str

    def __str__(self) -> str:
        return f"{self.where}: {self.message}"


@dataclass
class SubsetReport:
    violations: list[Violation] = field(default_factory=list)

    @property
    def conformant(self) -> bool:
        return not self.violations

    def add(self, where: str, message: str) -> None:
        self.violations.append(Violation(where, message))

    def __str__(self) -> str:
        if self.conformant:
            return "design conforms to the subset"
        lines = [f"{len(self.violations)} subset violation(s):"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def check_subset(
    design: Union[str, ast.DesignFile],
    include_paper_library: bool = True,
) -> SubsetReport:
    """Check a design file for subset conformance."""
    if isinstance(design, str):
        design = parse_file(design)
    known_entities = dict(design.entities())
    known_types = {"integer", "natural", "positive"}
    if include_paper_library:
        library = parse_file(PAPER_LIBRARY)
        known_entities.update(library.entities())
        for package in library.packages():
            for decl in package.decls:
                if isinstance(decl, ast.TypeDecl):
                    known_types.add(decl.name)
    for package in design.packages():
        for decl in package.decls:
            if isinstance(decl, ast.TypeDecl):
                known_types.add(decl.name)

    report = SubsetReport()
    for unit in design.units:
        if isinstance(unit, ast.EntityDecl):
            _check_entity(unit, known_types, report)
        elif isinstance(unit, ast.ArchitectureDecl):
            _check_architecture(unit, known_entities, known_types, report)
    return report


def _check_type(
    subtype: ast.SubtypeIndication, known_types: set[str], where: str,
    report: SubsetReport,
) -> None:
    if subtype.type_mark not in known_types:
        report.add(where, f"unknown type {subtype.type_mark!r}")
    if subtype.resolution is not None and subtype.resolution != "resolved":
        report.add(
            where,
            f"resolution {subtype.resolution!r} is outside the subset "
            f"(only 'resolved' exists)",
        )


def _check_entity(
    entity: ast.EntityDecl, known_types: set[str], report: SubsetReport
) -> None:
    where = f"entity {entity.name}"
    for generic in entity.generics:
        _check_type(generic.subtype, known_types, where, report)
    for port in entity.ports:
        _check_type(port.subtype, known_types, where, report)
        if port.mode not in ("in", "out", "inout"):
            report.add(where, f"port {port.name!r}: bad mode {port.mode!r}")


def _check_architecture(
    arch: ast.ArchitectureDecl,
    known_entities: dict,
    known_types: set[str],
    report: SubsetReport,
) -> None:
    where = f"architecture {arch.name} of {arch.entity}"
    local_types = set(known_types)
    signals: set[str] = set()
    entity = known_entities.get(arch.entity)
    writable_ports: set[str] = set()
    readable: set[str] = set()
    if entity is None:
        report.add(where, f"no entity {arch.entity!r} for this architecture")
    else:
        for port in entity.ports:
            readable.add(port.name)
            if port.mode in ("out", "inout"):
                writable_ports.add(port.name)
    for decl in arch.decls:
        if isinstance(decl, ast.TypeDecl):
            local_types.add(decl.name)
        elif isinstance(decl, ast.SignalDecl):
            _check_type(decl.subtype, local_types, where, report)
            signals.update(decl.names)
            readable.update(decl.names)
        elif isinstance(decl, ast.ConstantDecl):
            _check_type(decl.subtype, local_types, where, report)
    assignable = signals | writable_ports
    for stmt in arch.statements:
        if isinstance(stmt, ast.ProcessStmt):
            _check_process(stmt, where, assignable, local_types, report)
        elif isinstance(stmt, ast.ComponentInst):
            _check_instance(stmt, where, known_entities, report)


def _check_process(
    proc: ast.ProcessStmt,
    arch_where: str,
    assignable: set[str],
    known_types: set[str],
    report: SubsetReport,
) -> None:
    label = proc.label or "<anonymous process>"
    where = f"{arch_where}, process {label}"
    has_wait = _count_waits(proc.body) > 0
    if proc.sensitivity and has_wait:
        report.add(
            where, "both a sensitivity list and wait statements (illegal VHDL)"
        )
    if not proc.sensitivity and not has_wait:
        report.add(
            where,
            "no sensitivity list and no wait statement -- the process "
            "would never suspend",
        )
    for decl in proc.decls:
        _check_type(decl.subtype, known_types, where, report)
    for target in _assignment_targets(proc.body):
        if target not in assignable:
            report.add(
                where,
                f"signal assignment to {target!r}, which is not a local "
                f"signal or writable port",
            )


def _check_instance(
    inst: ast.ComponentInst,
    arch_where: str,
    known_entities: dict,
    report: SubsetReport,
) -> None:
    where = f"{arch_where}, instance {inst.label}"
    entity = known_entities.get(inst.entity)
    if entity is None:
        report.add(where, f"unknown entity {inst.entity!r}")
        return
    if len(inst.port_map) > len(entity.ports):
        report.add(
            where,
            f"{len(inst.port_map)} port associations for "
            f"{len(entity.ports)} ports",
        )
    if len(inst.generic_map) > len(entity.generics):
        report.add(
            where,
            f"{len(inst.generic_map)} generic associations for "
            f"{len(entity.generics)} generics",
        )


def _count_waits(body) -> int:
    count = 0
    for stmt in body:
        if isinstance(stmt, ast.WaitStmt):
            count += 1
        elif isinstance(stmt, ast.IfStmt):
            for _, branch in stmt.branches:
                count += _count_waits(branch)
    return count


def _assignment_targets(body) -> set[str]:
    out: set[str] = set()
    for stmt in body:
        if isinstance(stmt, ast.SignalAssign):
            out.add(stmt.target)
        elif isinstance(stmt, ast.IfStmt):
            for _, branch in stmt.branches:
                out |= _assignment_targets(branch)
    return out
