'''The paper's component library as VHDL source.

This is the source code printed in §2.2-§2.6, assembled into one
library text: the ``rt_pack`` package (Phase type, DISC/ILLEGAL
constants), CONTROLLER, TRANS, REG and the pipelined ADD example.

Deviations from the printed listings, kept deliberately minimal:

* ``REG`` gains a ``generic (INIT: Integer := -1)`` so concrete models
  can preload registers (the paper presets via earlier transfers);
* identifiers use ``_`` instead of the paper's typeset spaces
  (``R_in`` for ``R in``);
* the entity/architecture syntax is completed where the typesetting
  dropped characters (the semantics are exactly the paper's).
'''

from __future__ import annotations

#: The rt_pack package: value domain and phase type (§2.2, §2.3).
RT_PACK = """
package rt_pack is
  type Phase is (ra, rb, cm, wa, wb, cr);
  constant DISC: Integer := -1;
  constant ILLEGAL: Integer := -2;
end package rt_pack;
"""

#: CONTROLLER (§2.2): drives the cyclic (CS, PH) sequence in delta time.
CONTROLLER = """
entity CONTROLLER is
  generic (CS_MAX: Natural);
  port (CS: inout Natural := 0;
        PH: inout Phase := Phase'High);   -- Phase'High = cr
end CONTROLLER;

architecture transfer of CONTROLLER is
begin
  process (PH)
  begin
    if (PH = Phase'High) then
      if (CS < CS_MAX) then
        CS <= CS + 1;
        PH <= Phase'Low;                  -- Phase'Low = ra
      end if;
    else
      PH <= Phase'Succ(PH);
    end if;
  end process;
end transfer;
"""

#: TRANS (§2.4): one transfer-process instance.
TRANS = """
entity TRANS is
  generic (S: Natural; P: Phase);
  port (CS: in Natural;
        PH: in Phase;
        InS: in Integer;
        OutS: out Integer := DISC);
end TRANS;

architecture transfer of TRANS is
begin
  process
  begin
    wait until CS = S and PH = P;
    OutS <= InS;
    wait until CS = S and PH = Phase'Succ(P);
    OutS <= DISC;
  end process;
end transfer;
"""

#: REG (§2.5): latches in the cr phase when the input carries a value.
REG = """
entity REG is
  generic (INIT: Integer := -1);
  port (PH: in Phase;
        R_in: in Integer;
        R_out: out Integer := INIT);
end REG;

architecture transfer of REG is
begin
  process
  begin
    wait until PH = cr;
    if R_in /= DISC then
      R_out <= R_in;
    end if;
  end process;
end transfer;
"""

#: ADD (§2.6): the pipelined adder with the all-or-none operand rule
#: and the sticky-ILLEGAL guard.
ADD = """
entity ADD is
  port (PH: in Phase;
        M_in1, M_in2: in Integer;
        M_out: out Integer := DISC);
end ADD;

architecture transfer of ADD is
begin
  process
    variable M: Integer := DISC;
  begin
    wait until PH = cm;
    M_out <= M;
    if M /= ILLEGAL then
      if M_in1 = DISC and M_in2 = DISC then
        M := DISC;
      elsif M_in1 /= DISC and M_in2 /= DISC then
        M := M_in1 + M_in2;
      else
        M := ILLEGAL;
      end if;
    end if;
  end process;
end transfer;
"""

#: The complete paper library.
PAPER_LIBRARY = "\n".join((RT_PACK, CONTROLLER, TRANS, REG, ADD))

#: The paper's §2.7 example architecture, completed (the printed
#: listing omits B2's declaration and the x/y/z port wiring; here the
#: operand registers are preloaded through the REG INIT generic).
EXAMPLE_FIG1 = """
entity example is
  port (dummy: in Integer := 0);
end example;

architecture transfer of example is
  -- timing signals
  signal CS: Natural := 0;
  signal PH: Phase := cr;
  -- module ports
  signal ADD_in1, ADD_in2: resolved Integer := DISC;
  signal ADD_out: Integer := DISC;
  -- register ports
  signal R1_in, R2_in: resolved Integer := DISC;
  signal R1_out, R2_out: Integer := DISC;
  -- buses
  signal B1: resolved Integer := DISC;
  signal B2: resolved Integer := DISC;
begin
  -- modules
  ADD_proc: ADD port map (PH, ADD_in1, ADD_in2, ADD_out);
  -- registers
  R1_proc: REG generic map (2) port map (PH, R1_in, R1_out);
  R2_proc: REG generic map (3) port map (PH, R2_in, R2_out);
  -- transfers
  R1_out_B1_5:    TRANS generic map (5, ra) port map (CS, PH, R1_out, B1);
  B1_ADD_in1_5:   TRANS generic map (5, rb) port map (CS, PH, B1, ADD_in1);
  R2_out_B2_5:    TRANS generic map (5, ra) port map (CS, PH, R2_out, B2);
  B2_ADD_in2_5:   TRANS generic map (5, rb) port map (CS, PH, B2, ADD_in2);
  ADD_out_B1_6:   TRANS generic map (6, wa) port map (CS, PH, ADD_out, B1);
  B1_R1_in_6:     TRANS generic map (6, wb) port map (CS, PH, B1, R1_in);
  -- controller
  CONTROL: CONTROLLER generic map (7) port map (CS, PH);
end transfer;
"""
