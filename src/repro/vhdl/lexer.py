"""Lexer for the paper's VHDL subset.

Tokenizes the language fragment the paper's models are written in:
identifiers (case-insensitive, normalized to lower case), integer
literals, the punctuation and compound delimiters of VHDL, and ``--``
comments.  Source positions are tracked for error reporting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class VhdlSyntaxError(ValueError):
    """Raised for lexical or syntactic errors, with position info."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


#: Reserved words of the subset (lower case).
KEYWORDS = frozenset(
    """
    architecture assert begin component constant downto else elsif end
    entity generic if in inout is map mod not null of on or and xor out
    port process rem report signal severity subtype then to type
    until use variable wait when library all others range package body
    return function pure
    """.split()
)

#: Compound delimiters, longest first so the scanner is greedy.
_COMPOUND = ("<=", ":=", "=>", "/=", ">=", "**")
_SINGLE = "()';:,.=<>+-*/&|"


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # "ident" | "keyword" | "int" | "delim" | "eof"
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_delim(self, delim: str) -> bool:
        return self.kind == "delim" and self.text == delim

    def __str__(self) -> str:
        return f"{self.text!r}"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<int>\d+)
  | (?P<string>"(?:[^"]|"")*")
  | (?P<ident>[A-Za-z][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Scan VHDL source into a token list ending with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0

    def location() -> tuple[int, int]:
        return line, pos - line_start + 1

    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match:
            group = match.lastgroup
            lexeme = match.group()
            if group == "ws":
                newlines = lexeme.count("\n")
                if newlines:
                    line += newlines
                    line_start = pos + lexeme.rfind("\n") + 1
            elif group == "comment":
                pass
            elif group == "int":
                ln, col = location()
                tokens.append(Token("int", lexeme, ln, col))
            elif group == "string":
                ln, col = location()
                # Strip quotes; "" escapes a quote, as in VHDL.
                body = lexeme[1:-1].replace('""', '"')
                tokens.append(Token("string", body, ln, col))
            elif group == "ident":
                ln, col = location()
                lowered = lexeme.lower()
                kind = "keyword" if lowered in KEYWORDS else "ident"
                tokens.append(Token(kind, lowered, ln, col))
            pos = match.end()
            continue
        matched = False
        for compound in _COMPOUND:
            if text.startswith(compound, pos):
                ln, col = location()
                tokens.append(Token("delim", compound, ln, col))
                pos += len(compound)
                matched = True
                break
        if matched:
            continue
        ch = text[pos]
        if ch in _SINGLE:
            ln, col = location()
            tokens.append(Token("delim", ch, ln, col))
            pos += 1
            continue
        ln, col = location()
        raise VhdlSyntaxError(f"unexpected character {ch!r}", ln, col)
    tokens.append(Token("eof", "<eof>", line, pos - line_start + 1))
    return tokens
