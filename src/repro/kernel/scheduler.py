"""The delta-cycle event-driven simulation scheduler.

This is the substrate the whole reproduction stands on.  The paper
defines its register-transfer semantics directly in terms of VHDL
simulation cycles ("the simulation of each control step takes 6 delta
simulation cycles"), so the kernel implements the IEEE-1076 simulation
cycle for the features the subset uses:

1. advance to the next point in time with scheduled activity -- either
   the next delta cycle at the current time, or the earliest future
   time;
2. update drivers whose transactions are due, re-resolve the affected
   signals, and record *events* (effective-value changes);
3. resume every process whose wait condition is satisfied by those
   events (or whose ``wait for`` timeout expired);
4. let the resumed processes run until their next ``wait``, scheduling
   new transactions as they go.

The simulator also keeps :class:`SimStats` counters (cycles, delta
cycles, events, process resumptions, transactions) because the paper's
quantitative claims are phrased in exactly these units.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .errors import DeltaCycleLimitError, ElaborationError, SimulationError
from .process import Process, ProcessGenerator
from .signals import Driver, ResolutionFn, Signal
from .simtime import TIME_ZERO, SimTime
from .waits import WaitFor, WaitForever, WaitOn, WaitUntil

#: Sentinel distinguishing "argument omitted" from an explicit ``None``.
_DEFAULT = object()


@dataclass
class SimStats:
    """Counters accumulated over a simulation run.

    ``delta_cycles`` counts simulation cycles that did not advance
    physical time (delta ordinal > 0), which is the quantity the paper's
    ``CS_MAX * 6`` claim refers to.
    """

    cycles: int = 0
    delta_cycles: int = 0
    events: int = 0
    process_resumes: int = 0
    transactions: int = 0

    def snapshot(self) -> "SimStats":
        """An independent copy of the current counters."""
        return SimStats(
            cycles=self.cycles,
            delta_cycles=self.delta_cycles,
            events=self.events,
            process_resumes=self.process_resumes,
            transactions=self.transactions,
        )

    def __sub__(self, other: "SimStats") -> "SimStats":
        return SimStats(
            cycles=self.cycles - other.cycles,
            delta_cycles=self.delta_cycles - other.delta_cycles,
            events=self.events - other.events,
            process_resumes=self.process_resumes - other.process_resumes,
            transactions=self.transactions - other.transactions,
        )


class Simulator:
    """An event-driven simulator instance.

    Typical use::

        sim = Simulator()
        ph = sim.signal("PH", init=Phase.CR)
        drv = sim.driver(ph, owner="controller")

        def controller():
            while True:
                drv.set(next_phase(ph.value))
                yield wait_on(ph)

        sim.add_process("controller", controller)
        sim.initialize()
        sim.run()
    """

    def __init__(self, max_deltas_per_time: int = 1_000_000) -> None:
        self.now: SimTime = TIME_ZERO
        self.stats = SimStats()
        self._max_deltas_per_time = max_deltas_per_time
        self._signals: dict[str, Signal] = {}
        self._processes: list[Process] = []
        self._initialized = False
        self._seq = itertools.count()
        # Heaps keyed by plain (time, delta) tuples -- the hot path
        # avoids SimTime object comparisons.
        self._update_heap: list[tuple[tuple, int, Driver]] = []
        self._timer_heap: list[tuple[tuple, int, Process]] = []

    # ------------------------------------------------------------------
    # elaboration
    # ------------------------------------------------------------------
    def signal(
        self,
        name: str,
        init: Any,
        resolution: Optional[ResolutionFn] = None,
    ) -> Signal:
        """Declare a new signal.

        Parameters
        ----------
        name:
            Unique diagnostic name.
        init:
            Initial effective value.
        resolution:
            Optional resolution function; required for signals that will
            have more than one driver.
        """
        if name in self._signals:
            raise ElaborationError(f"duplicate signal name {name!r}")
        sig = Signal(self, name, init, resolution)
        self._signals[name] = sig
        return sig

    def driver(self, signal: Signal, owner: str, init: Any = _DEFAULT) -> Driver:
        """Create a driver for ``signal`` owned by ``owner``.

        ``init`` defaults to the signal's declared initial value, which
        is what the subset's component processes expect (a transfer
        process initially contributes DISC to its sink).
        """
        if signal._sim is not self:
            raise ElaborationError(
                f"signal {signal.name!r} belongs to a different simulator"
            )
        if init is _DEFAULT:
            init = signal.value
        return Driver(self, signal, owner, init)

    def add_process(
        self,
        name: str,
        fn: Callable[..., ProcessGenerator],
        *args: Any,
        **kwargs: Any,
    ) -> Process:
        """Register a process; ``fn(*args, **kwargs)`` must return a generator."""
        if self._initialized:
            raise ElaborationError(
                f"cannot add process {name!r}: simulation already initialized"
            )
        gen = fn(*args, **kwargs)
        if not hasattr(gen, "__next__"):
            raise ElaborationError(
                f"process {name!r}: function did not return a generator "
                f"(did you forget a yield?)"
            )
        proc = Process(name, gen, seq=len(self._processes))
        self._processes.append(proc)
        return proc

    @property
    def signals(self) -> dict[str, Signal]:
        """Mapping of signal name to signal (read-only view by convention)."""
        return self._signals

    @property
    def processes(self) -> list[Process]:
        """The registered processes, in creation order."""
        return list(self._processes)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Run the initialization cycle (every process up to its first wait)."""
        if self._initialized:
            raise SimulationError("simulation already initialized")
        self._initialized = True
        # Resolve initial values of multiply-driven signals before any
        # process observes them, as VHDL elaboration does.
        for sig in self._signals.values():
            if sig._drivers:
                sig._recompute(self.now)
        for proc in self._processes:
            self._run_process(proc)
        self.stats.cycles += 1

    def step(self) -> bool:
        """Execute one simulation cycle.

        Returns False when the simulation has quiesced (no pending
        driver updates or timers), True otherwise.
        """
        if not self._initialized:
            self.initialize()
            return True
        next_due = self._next_due_key()
        if next_due is None:
            return False
        if next_due[0] == self.now.time:
            self.now = SimTime(self.now.time, self.now.delta + 1)
            if self.now.delta > self._max_deltas_per_time:
                raise DeltaCycleLimitError(self._max_deltas_per_time)
            self.stats.delta_cycles += 1
        else:
            self.now = SimTime(next_due[0], 0)
        self.stats.cycles += 1

        changed_signals = self._apply_driver_updates()
        event_signals = []
        for sig in changed_signals:
            if sig._recompute(self.now):
                event_signals.append(sig)
                self.stats.events += 1

        now_key = (self.now.time, self.now.delta)
        runnable: list[Process] = []
        seen: set[int] = set()
        # Timer expirations first (deterministic, creation order within
        # the heap by sequence number).
        while self._timer_heap and self._timer_heap[0][0] <= now_key:
            _, _, proc = heapq.heappop(self._timer_heap)
            if not proc.finished and isinstance(proc.waiting_on, WaitFor):
                if id(proc) not in seen:
                    seen.add(id(proc))
                    runnable.append(proc)
        for sig in event_signals:
            # Copy: _run_process mutates waiter sets.  Creation order
            # keeps resumption deterministic.
            for proc in sorted(sig._waiters, key=lambda p: p._seq):
                if id(proc) in seen or proc.finished:
                    continue
                if proc._satisfied_by_event():
                    seen.add(id(proc))
                    runnable.append(proc)
        for proc in runnable:
            self._unregister_wait(proc)
            self.stats.process_resumes += 1
            self._run_process(proc)
        return True

    def run(
        self,
        max_cycles: Optional[int] = None,
        until_time: Optional[int] = None,
    ) -> SimStats:
        """Run until the design quiesces (or a limit is reached).

        Parameters
        ----------
        max_cycles:
            Optional bound on the number of simulation cycles executed
            by this call.
        until_time:
            Optional bound on physical time; the run stops before
            executing any cycle at a time strictly greater than this.

        Returns the simulator's cumulative statistics.
        """
        executed = 0
        while True:
            if max_cycles is not None and executed >= max_cycles:
                break
            if until_time is not None:
                nxt = self._next_due_key()
                if nxt is not None and nxt[0] > until_time and self._initialized:
                    break
            if not self.step():
                break
            executed += 1
        return self.stats

    @property
    def initialized(self) -> bool:
        """True once the initialization cycle has run."""
        return self._initialized

    @property
    def quiescent(self) -> bool:
        """True when no driver updates or timers are pending."""
        return self._initialized and self._next_due_key() is None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _schedule_driver_update(self, driver: Driver, when: tuple) -> None:
        self.stats.transactions += 1
        heapq.heappush(self._update_heap, (when, next(self._seq), driver))

    def _schedule_timer(self, proc: Process, when: tuple) -> None:
        heapq.heappush(self._timer_heap, (when, next(self._seq), proc))

    def _next_due_key(self) -> Optional[tuple]:
        candidates = []
        if self._update_heap:
            candidates.append(self._update_heap[0][0])
        if self._timer_heap:
            candidates.append(self._timer_heap[0][0])
        if not candidates:
            return None
        return min(candidates)

    def _apply_driver_updates(self) -> list[Signal]:
        now_key = (self.now.time, self.now.delta)
        changed: dict[int, Signal] = {}
        while self._update_heap and self._update_heap[0][0] <= now_key:
            _, _, driver = heapq.heappop(self._update_heap)
            if driver._apply_due(now_key):
                changed[id(driver.signal)] = driver.signal
        return list(changed.values())

    def _run_process(self, proc: Process) -> None:
        condition = proc._step()
        if condition is None or isinstance(condition, WaitForever):
            return
        if isinstance(condition, (WaitOn, WaitUntil)):
            for sig in condition.signals:
                if sig._sim is not self:
                    raise SimulationError(
                        f"process {proc.name!r} waits on foreign signal "
                        f"{sig.name!r}"
                    )
                sig._waiters.add(proc)
        elif isinstance(condition, WaitFor):
            self._schedule_timer(proc, (self.now.time + condition.delay, 0))

    def _unregister_wait(self, proc: Process) -> None:
        wait = proc.waiting_on
        if isinstance(wait, (WaitOn, WaitUntil)):
            for sig in wait.signals:
                sig._waiters.discard(proc)
