"""Delta-cycle event-driven simulation kernel (substrate S1).

Implements the slice of VHDL (IEEE-1076) simulation semantics the
paper's clock-free register-transfer subset is defined against:

* signals with per-process drivers and user-defined resolution
  functions (:mod:`repro.kernel.signals`);
* processes as Python generators suspended on VHDL-style wait
  conditions (:mod:`repro.kernel.waits`, :mod:`repro.kernel.process`);
* a two-phase simulation cycle with exact delta-cycle accounting
  (:mod:`repro.kernel.scheduler`) -- the paper's ``CS_MAX * 6`` delta
  claim is verified against these counters.
"""

from .errors import (
    DeltaCycleLimitError,
    ElaborationError,
    KernelError,
    ProcessError,
    SimulationError,
)
from .process import Process
from .scheduler import SimStats, Simulator
from .signals import Driver, Signal, iter_driver_values
from .simtime import TIME_ZERO, SimTime
from .waits import (
    WaitFor,
    WaitForever,
    WaitOn,
    WaitUntil,
    wait_for,
    wait_forever,
    wait_on,
    wait_until,
)

__all__ = [
    "DeltaCycleLimitError",
    "Driver",
    "ElaborationError",
    "KernelError",
    "Process",
    "ProcessError",
    "Signal",
    "SimStats",
    "SimTime",
    "SimulationError",
    "Simulator",
    "TIME_ZERO",
    "WaitFor",
    "WaitForever",
    "WaitOn",
    "WaitUntil",
    "iter_driver_values",
    "wait_for",
    "wait_forever",
    "wait_on",
    "wait_until",
]
