"""Exception hierarchy for the simulation kernel.

The kernel mirrors the slice of IEEE-1076 simulation semantics the paper
relies on (delta cycles, resolved signals, ``wait until`` processes), and
its error conditions mirror the corresponding VHDL elaboration/runtime
errors.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for all simulation-kernel errors."""


class ElaborationError(KernelError):
    """Raised for structural errors detected while building a design.

    Examples: attaching two drivers to an unresolved signal, driving a
    signal that belongs to a different simulator instance, or adding
    processes after the simulation has started.
    """


class SimulationError(KernelError):
    """Raised for errors detected while the simulation is running."""


class DeltaCycleLimitError(SimulationError):
    """Raised when a single simulation time consumes too many delta cycles.

    An unbounded delta loop (two processes re-triggering each other with
    zero-delay assignments) would otherwise hang the simulator; VHDL
    simulators impose the same kind of iteration limit.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"exceeded {limit} delta cycles without advancing physical "
            f"time; the design probably contains a zero-delay loop"
        )
        self.limit = limit


class ProcessError(SimulationError):
    """Raised when a user process raises an exception.

    The original exception is preserved as ``__cause__`` and the failing
    process is identified by name so that model-level code can produce a
    useful diagnostic.
    """

    def __init__(self, process_name: str, message: str) -> None:
        super().__init__(f"process {process_name!r}: {message}")
        self.process_name = process_name
