"""Wait conditions yielded by simulation processes.

Kernel processes are Python generator functions.  Each ``yield``
suspends the process on one of the wait conditions below, mirroring the
VHDL ``wait`` statement forms the paper's subset uses:

``wait_on(*signals)``
    ``wait on S1, S2;`` -- resume on the next event on any listed signal.

``wait_until(predicate, *signals)``
    ``wait until <condition>;`` -- resume when an event occurs on any of
    the listed signals *and* the predicate evaluates true.  VHDL infers
    the sensitivity set from the signals named in the condition; Python
    cannot, so the caller lists them explicitly.

``wait_for(delay)``
    ``wait for T;`` -- resume after ``delay`` time units.

``wait_forever()``
    ``wait;`` -- suspend permanently (used by one-shot processes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from .errors import ElaborationError
from .signals import Signal


@dataclass(frozen=True)
class WaitOn:
    """Resume on the next event on any of ``signals``."""

    signals: Tuple[Signal, ...]

    def __post_init__(self) -> None:
        if not self.signals:
            raise ElaborationError("wait_on requires at least one signal")


@dataclass(frozen=True)
class WaitUntil:
    """Resume when an event on any of ``signals`` makes ``predicate`` true.

    Matching VHDL semantics, the predicate is only sampled when one of
    the sensitivity signals has an event; a predicate that is already
    true does not by itself resume the process.
    """

    predicate: Callable[[], bool]
    signals: Tuple[Signal, ...]

    def __post_init__(self) -> None:
        if not self.signals:
            raise ElaborationError(
                "wait_until requires at least one sensitivity signal "
                "(VHDL infers it from the condition; list it explicitly)"
            )


@dataclass(frozen=True)
class WaitFor:
    """Resume after ``delay`` physical time units."""

    delay: int

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ElaborationError(
                f"wait_for requires a positive delay, got {self.delay}"
            )


@dataclass(frozen=True)
class WaitForever:
    """Suspend the process permanently."""


def wait_on(*signals: Signal) -> WaitOn:
    """Build a :class:`WaitOn` condition (``wait on ...;``)."""
    return WaitOn(tuple(signals))


def wait_until(predicate: Callable[[], bool], *signals: Signal) -> WaitUntil:
    """Build a :class:`WaitUntil` condition (``wait until ...;``)."""
    return WaitUntil(predicate, tuple(signals))


def wait_for(delay: int) -> WaitFor:
    """Build a :class:`WaitFor` condition (``wait for ...;``)."""
    return WaitFor(delay)


def wait_forever() -> WaitForever:
    """Build a :class:`WaitForever` condition (``wait;``)."""
    return WaitForever()


#: Union of all wait condition types, for isinstance checks.
WaitCondition = (WaitOn, WaitUntil, WaitFor, WaitForever)
