"""Simulation time: physical time plus delta-cycle ordinal.

The paper's register-transfer models never advance physical time -- all
activity happens in successive *delta cycles* at time zero.  The kernel
nevertheless models time as the pair ``(time, delta)`` because the
clocked back end (``repro.clocked``) and the asynchronous-handshake
baseline (``repro.handshake``) do schedule real delays, and because the
paper's central quantitative claim ("the complete simulation takes
``CS_MAX * 6`` delta simulation cycles") is a statement about delta
ordinals that we must be able to measure.

Physical time is a plain non-negative integer in arbitrary units (the
clocked back end interprets it as nanoseconds).  Using integers keeps
ordering exact; VHDL's ``time`` type is likewise an integer multiple of
a base unit.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass


@functools.total_ordering
@dataclass(frozen=True)
class SimTime:
    """A point in simulation time: ``(physical time, delta ordinal)``.

    ``delta`` counts the simulation cycles executed *at* ``time``; the
    first cycle at a given physical time has ``delta == 0``.  Ordering is
    lexicographic, exactly as in VHDL: all delta cycles at time ``t``
    precede the first cycle at any later time.
    """

    time: int = 0
    delta: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"physical time must be >= 0, got {self.time}")
        if self.delta < 0:
            raise ValueError(f"delta ordinal must be >= 0, got {self.delta}")

    def advance_delta(self) -> "SimTime":
        """The next delta cycle at the same physical time."""
        return SimTime(self.time, self.delta + 1)

    def advance_time(self, new_time: int) -> "SimTime":
        """The first delta cycle at a strictly later physical time."""
        if new_time <= self.time:
            raise ValueError(
                f"cannot advance from time {self.time} to {new_time}: "
                f"physical time must strictly increase"
            )
        return SimTime(new_time, 0)

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, SimTime):
            return NotImplemented
        return (self.time, self.delta) < (other.time, other.delta)

    def __str__(self) -> str:
        return f"{self.time}ns+{self.delta}d"


#: The origin of simulation time.
TIME_ZERO = SimTime(0, 0)
