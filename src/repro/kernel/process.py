"""Simulation processes.

A process wraps a Python generator.  The generator yields wait
conditions (:mod:`repro.kernel.waits`); the scheduler resumes it when
the condition is met.  As in VHDL, every process runs once during
initialization, up to its first ``wait``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .errors import ProcessError, SimulationError
from .waits import WaitCondition, WaitFor, WaitForever, WaitOn, WaitUntil

#: The generator type user process functions must return.
ProcessGenerator = Generator[Any, None, None]


class Process:
    """A running simulation process.

    Created via :meth:`repro.kernel.Simulator.add_process`; not
    instantiated directly by user code.
    """

    __slots__ = ("name", "_gen", "_wait", "_finished", "resume_count", "_seq")

    def __init__(self, name: str, gen: ProcessGenerator, seq: int = 0) -> None:
        self.name = name
        self._gen = gen
        self._wait: Optional[object] = None
        self._finished = False
        #: Number of times the scheduler has resumed this process.
        self.resume_count = 0
        #: Creation order; the scheduler uses it for deterministic
        #: resumption order without string comparisons.
        self._seq = seq

    @property
    def finished(self) -> bool:
        """True once the generator has returned (process left the design)."""
        return self._finished

    @property
    def waiting_on(self) -> Optional[object]:
        """The wait condition the process is currently suspended on."""
        return self._wait

    def _step(self) -> Optional[object]:
        """Advance the generator to its next wait; return the condition.

        Returns ``None`` when the generator finishes.  User exceptions
        are wrapped in :class:`ProcessError` with the process name.
        """
        try:
            condition = next(self._gen)
        except StopIteration:
            self._finished = True
            self._wait = None
            return None
        except SimulationError:
            raise
        except Exception as exc:  # noqa: BLE001 - deliberate wrap
            self._finished = True
            self._wait = None
            raise ProcessError(self.name, str(exc)) from exc
        if not isinstance(condition, WaitCondition):
            self._finished = True
            raise ProcessError(
                self.name,
                f"yielded {condition!r}, which is not a wait condition; "
                f"use wait_on / wait_until / wait_for / wait_forever",
            )
        self._wait = condition
        return condition

    def _satisfied_by_event(self) -> bool:
        """Whether the current wait is satisfied, given an event occurred
        on one of its sensitivity signals this cycle."""
        wait = self._wait
        if isinstance(wait, WaitOn):
            return True
        if isinstance(wait, WaitUntil):
            return bool(wait.predicate())
        return False

    def __repr__(self) -> str:
        state = "finished" if self._finished else f"waiting on {self._wait!r}"
        return f"<Process {self.name}: {state}>"


__all__ = [
    "Process",
    "ProcessGenerator",
    "WaitFor",
    "WaitForever",
    "WaitOn",
    "WaitUntil",
]
