"""Signals, drivers, and resolution functions.

This module implements the slice of VHDL signal semantics the paper's
subset depends on:

* a signal has one *driver per driving process* (here: per explicitly
  created :class:`Driver`);
* a **resolved** signal combines the values of all its drivers through a
  user-supplied resolution function each time any driver changes -- the
  paper uses this to detect bus and port conflicts (its resolution
  function yields ``ILLEGAL`` when two sources collide);
* an **unresolved** signal admits at most one driver (elaboration error
  otherwise), exactly like a plain VHDL signal;
* an *event* on a signal is a change of its effective value; processes
  waiting on the signal are resumed only on events, not on mere
  transactions.

Driver scheduling follows VHDL's projected output waveform with
transport-style preemption, which is all the subset needs: an assignment
with zero delay takes effect in the **next delta cycle**, an assignment
with a positive delay takes effect at that future time, and a later
assignment preempts earlier pending transactions at or after its own
activation time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from .errors import ElaborationError, SimulationError
from .simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .scheduler import Simulator

#: A resolution function maps the list of driver values to one value.
ResolutionFn = Callable[[list], Any]


class Signal:
    """A named simulation signal with VHDL-style update semantics.

    Signals are created through :meth:`repro.kernel.Simulator.signal`
    rather than directly, so that the kernel can track them.

    Attributes
    ----------
    name:
        Diagnostic name, unique within a simulator.
    value:
        The current effective value (read-only property).
    """

    __slots__ = (
        "name",
        "_sim",
        "_value",
        "_resolution",
        "_drivers",
        "_waiters",
        "_watchers",
        "_last_event",
        "_event_count",
    )

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        init: Any,
        resolution: Optional[ResolutionFn] = None,
    ) -> None:
        self.name = name
        self._sim = sim
        self._value = init
        self._resolution = resolution
        self._drivers: list[Driver] = []
        # Processes currently blocked on this signal (managed by scheduler).
        self._waiters: set = set()
        # Callbacks invoked on every event: fn(signal, old, new).
        self._watchers: list[Callable[["Signal", Any, Any], None]] = []
        self._last_event: Optional[SimTime] = None
        self._event_count = 0

    # ------------------------------------------------------------------
    # public read API
    # ------------------------------------------------------------------
    @property
    def value(self) -> Any:
        """The current effective value of the signal."""
        return self._value

    @property
    def resolved(self) -> bool:
        """Whether the signal carries a resolution function."""
        return self._resolution is not None

    @property
    def last_event(self) -> Optional[SimTime]:
        """Simulation time of the most recent event, or ``None``."""
        return self._last_event

    @property
    def event_count(self) -> int:
        """Total number of events observed on this signal."""
        return self._event_count

    @property
    def driver_count(self) -> int:
        """Number of drivers attached to this signal."""
        return len(self._drivers)

    def watch(self, callback: Callable[["Signal", Any, Any], None]) -> None:
        """Register ``callback(signal, old, new)`` to run on every event.

        Watchers are the hook used by the diagnostic layer to localize
        ILLEGAL values to a specific control step and phase.
        """
        self._watchers.append(callback)

    # ------------------------------------------------------------------
    # kernel-internal API
    # ------------------------------------------------------------------
    def _attach_driver(self, driver: "Driver") -> None:
        if self._drivers and not self.resolved:
            raise ElaborationError(
                f"signal {self.name!r} is unresolved but would have "
                f"{len(self._drivers) + 1} drivers; declare it with a "
                f"resolution function to allow multiple sources"
            )
        self._drivers.append(driver)

    def _recompute(self, now: SimTime) -> bool:
        """Recompute the effective value; return True if an event occurred."""
        if self._resolution is not None:
            new = self._resolution([d._current for d in self._drivers])
        elif self._drivers:
            new = self._drivers[0]._current
        else:  # no drivers: value can only change via initial value
            return False
        if new == self._value:
            return False
        old = self._value
        self._value = new
        self._last_event = now
        self._event_count += 1
        for watcher in self._watchers:
            watcher(self, old, new)
        return True

    def __repr__(self) -> str:
        kind = "resolved " if self.resolved else ""
        return f"<{kind}Signal {self.name}={self._value!r}>"


class Driver:
    """One source of a signal, owned by one process (or test harness).

    A driver holds a *current* contribution plus a projected waveform of
    pending transactions.  ``set(value)`` schedules the new contribution
    for the next delta cycle; ``set(value, delay=d)`` schedules it ``d``
    time units in the future.  A new call preempts pending transactions
    whose activation time is at or after the new one (transport delay
    preemption), which matches what the subset's single-assignment
    processes require.
    """

    __slots__ = ("signal", "owner", "_current", "_pending", "_sim")

    def __init__(self, sim: "Simulator", signal: Signal, owner: str, init: Any) -> None:
        self.signal = signal
        self.owner = owner
        self._sim = sim
        self._current = init
        # Pending transactions as a list of (SimTime, value), kept sorted.
        self._pending: list[tuple[SimTime, Any]] = []
        signal._attach_driver(self)

    def set(self, value: Any, delay: int = 0) -> None:
        """Schedule a new driving value.

        With ``delay == 0`` the value becomes effective in the next delta
        cycle (VHDL's ``sig <= v;``); with ``delay > 0`` it becomes
        effective at ``now.time + delay`` (VHDL's ``sig <= v after d;``).
        """
        if delay < 0:
            raise SimulationError(
                f"driver {self.owner!r} of {self.signal.name!r}: "
                f"negative delay {delay}"
            )
        now = self._sim.now
        # Activation keys are plain (time, delta) int tuples -- hot
        # path, so avoid SimTime object comparisons.
        if delay == 0:
            when = (now.time, now.delta + 1)
        else:
            when = (now.time + delay, 0)
        # Transport-style preemption: drop pending transactions at or
        # after the new activation time.
        if self._pending:
            self._pending = [p for p in self._pending if p[0] < when]
        self._pending.append((when, value))
        self._sim._schedule_driver_update(self, when)

    @property
    def current(self) -> Any:
        """The value this driver currently contributes."""
        return self._current

    def _apply_due(self, now_key: tuple) -> bool:
        """Apply all transactions due at or before ``now_key``.

        Returns True if the driver's contribution changed.
        """
        changed = False
        while self._pending and self._pending[0][0] <= now_key:
            _, value = self._pending.pop(0)
            if value != self._current:
                self._current = value
                changed = True
            else:
                # A transaction without a value change is still a
                # transaction in VHDL; resolved signals must re-resolve
                # because another driver may have changed concurrently.
                changed = changed or self.signal.resolved
        return changed

    def __repr__(self) -> str:
        return f"<Driver {self.owner}->{self.signal.name} {self._current!r}>"


def single_driver_resolution(values: list) -> Any:
    """Resolution for signals that should have exactly one active driver.

    Provided as a convenience for tests; the paper's own resolution
    function lives in :mod:`repro.core.values`.
    """
    if len(values) != 1:
        raise SimulationError(
            f"single_driver_resolution called with {len(values)} drivers"
        )
    return values[0]


def iter_driver_values(signal: Signal) -> Iterable[Any]:
    """Yield the current contribution of each driver of ``signal``.

    Diagnostic helper used to report *which* sources collided when a
    resolved signal resolves to a conflict value.
    """
    for driver in signal._drivers:
        yield driver.owner, driver._current
