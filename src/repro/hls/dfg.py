"""Dataflow graphs for high-level synthesis.

Builds a dataflow DAG from a straight-line :class:`Program`:

* one **operation node** per BinOp occurrence;
* **input nodes** for program inputs and **constant nodes** for
  literals;
* SSA-style def-use: each variable reference binds to the node that
  most recently defined it.

The graph is a :class:`networkx.DiGraph` so standard algorithms
(topological order, longest path) drive the schedulers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import networkx as nx

from .expr import Const, Expr, Program, Var

#: Operator symbol -> functional-unit class.
OP_CLASSES = {
    "+": "ALU",
    "-": "ALU",
    "&": "LOGIC",
    "|": "LOGIC",
    "^": "LOGIC",
    ">>": "SHIFT",
    "<<": "SHIFT",
    "*": "MUL",
}

#: Functional-unit class -> (standard op names, latency, pipelined).
UNIT_CLASSES = {
    "ALU": (("ADD", "SUB"), 0, True),
    "LOGIC": (("AND", "OR", "XOR"), 0, True),
    "SHIFT": (("RSHIFT", "LSHIFT"), 0, True),
    "MUL": (("MULT",), 2, True),
}

#: Operator symbol -> standard operation name.
OP_NAMES = {
    "+": "ADD",
    "-": "SUB",
    "&": "AND",
    "|": "OR",
    "^": "XOR",
    ">>": "RSHIFT",
    "<<": "LSHIFT",
    "*": "MULT",
}


@dataclass(frozen=True)
class DfgNode:
    """One node of the dataflow graph.

    ``kind`` is ``"input"``, ``"const"`` or ``"op"``.  Operation nodes
    carry the operator symbol and the unit class; input nodes carry the
    variable name; constant nodes the literal value.
    """

    ident: str
    kind: str
    op: Optional[str] = None
    var: Optional[str] = None
    value: Optional[int] = None

    @property
    def unit_class(self) -> Optional[str]:
        if self.kind != "op":
            return None
        return OP_CLASSES[self.op]

    def __str__(self) -> str:
        if self.kind == "input":
            return f"{self.ident}:in({self.var})"
        if self.kind == "const":
            return f"{self.ident}:#{self.value}"
        return f"{self.ident}:{self.op}"


@dataclass
class Dataflow:
    """A program's dataflow graph plus its variable bindings."""

    graph: nx.DiGraph
    nodes: dict[str, DfgNode]
    #: program output variable -> node identifier producing its value
    outputs: dict[str, str]
    #: program input variable -> its input node identifier
    inputs: dict[str, str]

    @property
    def op_nodes(self) -> list[DfgNode]:
        """Operation nodes in topological order."""
        return [
            self.nodes[n]
            for n in nx.topological_sort(self.graph)
            if self.nodes[n].kind == "op"
        ]

    def preds(self, node: DfgNode) -> tuple[DfgNode, DfgNode]:
        """The (left, right) operand nodes of an op node.

        Stored as a node attribute rather than edge data because both
        operands may come from the *same* producer (``a * a``), which a
        simple DiGraph would collapse into one edge.
        """
        left, right = self.graph.nodes[node.ident]["operands"]
        return self.nodes[left], self.nodes[right]

    def critical_path_length(self, latency_of) -> int:
        """Longest dependence chain in *schedule steps*.

        ``latency_of(unit_class)`` gives each class's latency; an edge
        from producer p costs ``latency_of(p) + 1`` steps (write +
        readability, see the emitter's timing model).
        """
        dist: dict[str, int] = {}
        for ident in nx.topological_sort(self.graph):
            node = self.nodes[ident]
            if node.kind != "op":
                dist[ident] = 0
                continue
            best = 1
            for pred_id, _ in self.graph.in_edges(ident):
                pred = self.nodes[pred_id]
                if pred.kind == "op":
                    best = max(
                        best,
                        dist[pred_id] + latency_of(pred.unit_class) + 1,
                    )
            dist[ident] = best
        return max(dist.values(), default=0)


def build_dataflow(program: Program, cse: bool = True) -> Dataflow:
    """Construct the dataflow graph of a program.

    With ``cse`` (the default), identical operations on identical
    operands share one node (local value numbering) -- straight-line
    programs are SSA by construction, so the sharing is always sound.
    """
    graph = nx.DiGraph()
    nodes: dict[str, DfgNode] = {}
    counter = itertools.count(1)
    #: variable -> producing node ident
    bindings: dict[str, str] = {}
    inputs: dict[str, str] = {}
    const_nodes: dict[int, str] = {}
    #: (op, left ident, right ident) -> node ident, for value numbering
    value_numbers: dict[tuple[str, str, str], str] = {}

    def add(node: DfgNode) -> str:
        nodes[node.ident] = node
        graph.add_node(node.ident)
        return node.ident

    def input_node(name: str) -> str:
        if name not in inputs:
            ident = add(DfgNode(f"in_{name}", "input", var=name))
            inputs[name] = ident
        return inputs[name]

    def const_node(value: int) -> str:
        if value not in const_nodes:
            ident = add(DfgNode(f"k_{value}", "const", value=value))
            const_nodes[value] = ident
        return const_nodes[value]

    def visit(expr: Expr) -> str:
        if isinstance(expr, Const):
            return const_node(expr.value)
        if isinstance(expr, Var):
            if expr.name in bindings:
                return bindings[expr.name]
            return input_node(expr.name)
        left = visit(expr.left)
        right = visit(expr.right)
        key = (expr.op, left, right)
        if cse and key in value_numbers:
            return value_numbers[key]
        ident = add(DfgNode(f"n{next(counter)}", "op", op=expr.op))
        graph.add_edge(left, ident)
        graph.add_edge(right, ident)
        graph.nodes[ident]["operands"] = (left, right)
        if cse:
            value_numbers[key] = ident
        return ident

    outputs: dict[str, str] = {}
    for stmt in program.statements:
        result = visit(stmt.expr)
        bindings[stmt.target] = result
        outputs[stmt.target] = result
    return Dataflow(graph=graph, nodes=nodes, outputs=outputs, inputs=inputs)
