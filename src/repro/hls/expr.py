"""A small algorithmic-level language for the HLS front end.

Paper §4: "High level synthesis results are translated into our subset
and can then be simulated at a high level before the next synthesis
steps translate to a more concrete implementation."  To exercise that
flow end to end we need an algorithmic input language; this module
provides a deliberately small straight-line one:

    t    = (a + b) * (c - d)
    out  = t + (x >> 2)

A *program* is a sequence of assignments.  Expressions combine
identifiers and non-negative integer literals with the binary
operators ``+ - * & | ^ >> <<`` (usual precedence) and parentheses.
Variables read before any assignment are the program's inputs; every
assigned variable is observable as an output.

The AST is evaluated directly for reference results, fed to the
dataflow-graph builder for scheduling, and compared symbolically by
the verification layer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Mapping, Union


class ExprError(ValueError):
    """Raised for syntax or evaluation errors in the small language."""


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Const:
    """An integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var:
    """A variable reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp:
    """A binary operation."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Expr = Union[Const, Var, BinOp]


@dataclass(frozen=True)
class Assignment:
    """One program statement: ``target = expr``."""

    target: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass(frozen=True)
class Program:
    """A straight-line program."""

    statements: tuple[Assignment, ...]

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)

    @property
    def inputs(self) -> list[str]:
        """Variables read before being assigned, in first-use order."""
        assigned: set[str] = set()
        seen: list[str] = []
        for stmt in self.statements:
            for var in iter_vars(stmt.expr):
                if var not in assigned and var not in seen:
                    seen.append(var)
            assigned.add(stmt.target)
        return seen

    @property
    def outputs(self) -> list[str]:
        """All assigned variables, in first-assignment order."""
        seen: list[str] = []
        for stmt in self.statements:
            if stmt.target not in seen:
                seen.append(stmt.target)
        return seen


def iter_vars(expr: Expr) -> Iterator[str]:
    """All variable names in an expression (with repeats)."""
    if isinstance(expr, Var):
        yield expr.name
    elif isinstance(expr, BinOp):
        yield from iter_vars(expr.left)
        yield from iter_vars(expr.right)


# ----------------------------------------------------------------------
# evaluation (the algorithmic reference semantics)
# ----------------------------------------------------------------------
#: Supported operators and their semantics on masked naturals.
OPERATORS = {
    "+": lambda a, b, m: (a + b) & m,
    "-": lambda a, b, m: (a - b) & m,
    "*": lambda a, b, m: (a * b) & m,
    "&": lambda a, b, m: a & b,
    "|": lambda a, b, m: a | b,
    "^": lambda a, b, m: a ^ b,
    ">>": lambda a, b, m: a >> min(b, m.bit_length()),
    "<<": lambda a, b, m: (a << min(b, m.bit_length())) & m,
}


def evaluate(
    program: Program, inputs: Mapping[str, int], width: int = 32
) -> dict[str, int]:
    """Run the program directly; returns the final variable environment."""
    mask = (1 << width) - 1
    env: dict[str, int] = {}
    for name in program.inputs:
        try:
            env[name] = inputs[name] & mask
        except KeyError:
            raise ExprError(f"missing input {name!r}") from None
    for stmt in program.statements:
        env[stmt.target] = eval_expr(stmt.expr, env, width)
    return env


def eval_expr(expr: Expr, env: Mapping[str, int], width: int = 32) -> int:
    mask = (1 << width) - 1
    if isinstance(expr, Const):
        return expr.value & mask
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise ExprError(f"unbound variable {expr.name!r}") from None
    return OPERATORS[expr.op](
        eval_expr(expr.left, env, width), eval_expr(expr.right, env, width), mask
    )


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_]\w*)|(?P<op>>>|<<|[-+*&|^()=]))"
)

#: Operator precedence levels, loosest first.
_PRECEDENCE = [["|"], ["^"], ["&"], [">>", "<<"], ["+", "-"], ["*"]]


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        if text[pos:].isspace():
            break
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExprError(f"bad character {text[pos]!r} at column {pos}")
        tokens.append(match.group(match.lastgroup))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], context: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.context = context

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ExprError(f"{self.context}: unexpected end of expression")
        self.pos += 1
        return token

    def parse_expr(self, level: int = 0) -> Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_atom()
        left = self.parse_expr(level + 1)
        while self.peek() in _PRECEDENCE[level]:
            op = self.next()
            right = self.parse_expr(level + 1)
            left = BinOp(op, left, right)
        return left

    def parse_atom(self) -> Expr:
        token = self.next()
        if token == "(":
            inner = self.parse_expr()
            if self.next() != ")":
                raise ExprError(f"{self.context}: missing ')'")
            return inner
        if token.isdigit():
            return Const(int(token))
        if re.fullmatch(r"[A-Za-z_]\w*", token):
            return Var(token)
        raise ExprError(f"{self.context}: unexpected token {token!r}")


def parse_expression(text: str) -> Expr:
    """Parse a single expression."""
    parser = _Parser(_tokenize(text), text.strip())
    expr = parser.parse_expr()
    if parser.peek() is not None:
        raise ExprError(f"{text.strip()}: trailing tokens")
    return expr


def parse_program(text: str) -> Program:
    """Parse a straight-line program, one assignment per line.

    Blank lines and ``#`` comments are ignored.
    """
    statements: list[Assignment] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#")[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ExprError(f"line {lineno}: expected 'target = expr'")
        target, _, body = line.partition("=")
        target = target.strip()
        if not re.fullmatch(r"[A-Za-z_]\w*", target):
            raise ExprError(f"line {lineno}: bad target {target!r}")
        statements.append(Assignment(target, parse_expression(body)))
    if not statements:
        raise ExprError("empty program")
    return Program(tuple(statements))
