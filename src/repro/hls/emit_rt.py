"""Emission of scheduled/allocated dataflow graphs as RT models.

The final HLS stage: turn (DFG, schedule, binding, allocation) into a
clock-free register-transfer model in the paper's subset -- "High
level synthesis results are translated into our subset and can then
be simulated at a high level" (§4).

Generated structure:

* one register per program input (preloaded at elaboration), one per
  allocated temp, plus constant registers;
* one functional unit per (class, instance) the binding uses, with
  op-select ports where a class implements several operations;
* one complete 9-tuple transfer per DFG operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..core.model import RTModel
from ..core.modules_lib import alu_spec
from ..core.transfer import RegisterTransfer
from .allocation import Allocation, allocate
from .dfg import Dataflow, DfgNode, OP_NAMES, UNIT_CLASSES, build_dataflow
from .expr import Program, evaluate, parse_program
from .scheduling import OpSchedule, ScheduleError, list_schedule


@dataclass
class SynthesisResult:
    """Everything the HLS flow produced for one program."""

    program: Program
    dfg: Dataflow
    schedule: OpSchedule
    allocation: Allocation
    model: RTModel
    #: program output variable -> register holding it after the run
    output_regs: dict[str, str]

    def simulate(
        self, inputs: Mapping[str, int], backend: str = "event"
    ) -> dict[str, int]:
        """Run the RT model on concrete inputs; returns the outputs."""
        values = {
            name: inputs[name] & ((1 << self.model.width) - 1)
            for name in self.program.inputs
        }
        sim = self.model.elaborate(
            register_values=values, backend=backend
        ).run()
        if not sim.clean:
            raise ScheduleError(
                f"synthesized model reported conflicts:\n"
                + sim.monitor.report()
            )
        return {
            var: sim[reg] for var, reg in self.output_regs.items()
        }

    def simulate_batch(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        backend: str = "compiled-batched",
    ) -> list[dict[str, int]]:
        """Run the RT model on many input vectors; per-vector outputs.

        The E9 validation sweep: with the default ``compiled-batched``
        backend all vectors go through one walk of the action tables;
        any scalar backend name falls back to one run per vector with
        identical results.
        """
        mask = (1 << self.model.width) - 1
        batch = [
            {name: vec[name] & mask for name in self.program.inputs}
            for vec in input_vectors
        ]
        if backend != "compiled-batched":
            return [self.simulate(vec, backend=backend) for vec in batch]
        sim = self.model.elaborate(
            register_values=batch, backend=backend
        ).run()
        if not sim.clean:
            bad = [i for i, ok in enumerate(sim.clean_mask) if not ok]
            raise ScheduleError(
                f"synthesized model reported conflicts for "
                f"{len(bad)}/{len(batch)} vectors (first: {bad[0]}):\n"
                + sim.monitors[bad[0]].report()
            )
        regs = sim.registers
        return [
            {var: regs[i][reg] for var, reg in self.output_regs.items()}
            for i in range(len(batch))
        ]

    def reference(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Direct evaluation of the program (the algorithmic level)."""
        env = evaluate(self.program, inputs, self.model.width)
        return {var: env[var] for var in self.output_regs}


def synthesize(
    source: str | Program,
    resources: Optional[Mapping[str, int]] = None,
    width: int = 32,
    name: str = "hls_design",
) -> SynthesisResult:
    """The complete flow: parse, build DFG, schedule, allocate, emit."""
    program = source if isinstance(source, Program) else parse_program(source)
    dfg = build_dataflow(program)
    schedule = list_schedule(dfg, resources)
    allocation = allocate(dfg, schedule)
    model, output_regs = emit_model(
        program, dfg, schedule, allocation, width=width, name=name
    )
    return SynthesisResult(
        program=program,
        dfg=dfg,
        schedule=schedule,
        allocation=allocation,
        model=model,
        output_regs=output_regs,
    )


def emit_model(
    program: Program,
    dfg: Dataflow,
    schedule: OpSchedule,
    allocation: Allocation,
    width: int = 32,
    name: str = "hls_design",
) -> tuple[RTModel, dict[str, str]]:
    """Emit the RT model for a scheduled, allocated DFG."""
    cs_max = max(schedule.makespan, 1)
    model = RTModel(name, cs_max=cs_max, width=width)

    for var in program.inputs:
        model.register(var)
    for reg in allocation.temp_names():
        model.register(reg)
    for bus in allocation.bus_names():
        model.bus(bus)

    # Functional units: one per (class, instance) actually bound.
    used_units = sorted(set(schedule.binding.values()))
    unit_name: dict[tuple[str, int], str] = {}
    for unit_class, instance in used_units:
        ops, latency, pipelined = UNIT_CLASSES[unit_class]
        uname = f"{unit_class}{instance}"
        model.module(
            alu_spec(
                uname, ops, latency=latency, pipelined=pipelined, width=width
            )
        )
        unit_name[(unit_class, instance)] = uname

    def reg_of(node: DfgNode) -> str:
        if node.kind == "input":
            return node.var
        if node.kind == "const":
            return model.constant(node.value & ((1 << width) - 1))
        return allocation.result_reg[node.ident]

    for node in dfg.op_nodes:
        left, right = dfg.preds(node)
        uname = unit_name[schedule.binding[node.ident]]
        spec = model.modules[uname]
        bus1, bus2 = allocation.read_buses[node.ident]
        op_name = OP_NAMES[node.op]
        model.add_transfer(
            RegisterTransfer(
                src1=reg_of(left),
                bus1=bus1,
                src2=reg_of(right),
                bus2=bus2,
                read_step=schedule.issue_step(node.ident),
                module=uname,
                write_step=schedule.write_step(node.ident),
                write_bus=allocation.write_bus[node.ident],
                dest=allocation.result_reg[node.ident],
                op=op_name if spec.multi_op else None,
            )
        )

    output_regs: dict[str, str] = {}
    for var, producer in dfg.outputs.items():
        node = dfg.nodes[producer]
        output_regs[var] = reg_of(node)
    return model, output_regs
