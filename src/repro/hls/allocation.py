"""Storage and interconnect allocation for scheduled dataflow graphs.

Given a schedule + binding, this module allocates:

* **registers** for operation results, reusing registers between
  values with disjoint lifetimes (the classic left-edge algorithm);
* **buses** for operand reads and result writes, sized to the maximum
  concurrent use per control-step phase (reads of a step must use
  distinct buses; so must writes; a read and a write of the same step
  may share, since they occupy the bus in different phases -- exactly
  as the paper's Fig. 1 reuses B1).

The result is a :class:`Allocation` consumed by the RT emitter.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .dfg import Dataflow
from .scheduling import OpSchedule


@dataclass
class Allocation:
    """Storage/interconnect assignment for a scheduled DFG."""

    #: op node ident -> result register name
    result_reg: dict[str, str] = field(default_factory=dict)
    #: number of temp registers allocated
    temp_count: int = 0
    #: op node ident -> (bus1, bus2) for its operand reads
    read_buses: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: op node ident -> bus for its result write
    write_bus: dict[str, str] = field(default_factory=dict)
    #: total buses allocated
    bus_count: int = 0

    def bus_names(self) -> list[str]:
        return [f"BUS{i}" for i in range(self.bus_count)]

    def temp_names(self) -> list[str]:
        return [f"T{i}" for i in range(self.temp_count)]


def allocate(dfg: Dataflow, schedule: OpSchedule) -> Allocation:
    """Allocate registers and buses for a scheduled dataflow graph."""
    alloc = Allocation()
    _allocate_registers(dfg, schedule, alloc)
    _allocate_buses(dfg, schedule, alloc)
    return alloc


def _lifetimes(dfg: Dataflow, schedule: OpSchedule) -> dict[str, tuple[int, int]]:
    """Value lifetime per op node: [write step, last read step].

    Output values live to the end of the schedule (the environment
    reads them after the run).
    """
    horizon = schedule.makespan
    output_nodes = set(dfg.outputs.values())
    lives: dict[str, tuple[int, int]] = {}
    for node in dfg.op_nodes:
        born = schedule.write_step(node.ident)
        last = born
        for succ_id in dfg.graph.successors(node.ident):
            if dfg.nodes[succ_id].kind == "op":
                last = max(last, schedule.issue_step(succ_id))
        if node.ident in output_nodes:
            last = horizon
        lives[node.ident] = (born, last)
    return lives


def _allocate_registers(
    dfg: Dataflow, schedule: OpSchedule, alloc: Allocation
) -> None:
    """Left-edge register allocation over value lifetimes."""
    lives = _lifetimes(dfg, schedule)
    # Sort by birth (left edge); greedily pack into register tracks.
    order = sorted(lives, key=lambda ident: (lives[ident][0], ident))
    track_free_at: list[int] = []  # per register: first step it is free
    for ident in order:
        born, last = lives[ident]
        for track, free_at in enumerate(track_free_at):
            # The old value may be overwritten in the step after its
            # last read (reads happen in RA, the overwrite lands at CR).
            if free_at <= born:
                alloc.result_reg[ident] = f"T{track}"
                track_free_at[track] = last + 1
                break
        else:
            track = len(track_free_at)
            alloc.result_reg[ident] = f"T{track}"
            track_free_at.append(last + 1)
    alloc.temp_count = len(track_free_at)


def _allocate_buses(
    dfg: Dataflow, schedule: OpSchedule, alloc: Allocation
) -> None:
    """Per-phase bus assignment from a shared pool."""
    reads_by_step: dict[int, list[str]] = defaultdict(list)
    writes_by_step: dict[int, list[str]] = defaultdict(list)
    for node in dfg.op_nodes:
        reads_by_step[schedule.issue_step(node.ident)].append(node.ident)
        writes_by_step[schedule.write_step(node.ident)].append(node.ident)
    max_buses = 0
    for step, idents in reads_by_step.items():
        for slot, ident in enumerate(sorted(idents)):
            alloc.read_buses[ident] = (f"BUS{2 * slot}", f"BUS{2 * slot + 1}")
        max_buses = max(max_buses, 2 * len(idents))
    for step, idents in writes_by_step.items():
        for slot, ident in enumerate(sorted(idents)):
            alloc.write_bus[ident] = f"BUS{slot}"
        max_buses = max(max_buses, len(idents))
    alloc.bus_count = max_buses
