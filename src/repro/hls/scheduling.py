"""Operation scheduling: ASAP, ALAP and resource-constrained list
scheduling.

Timing model (matching the subset's transfer semantics): an operation
issued in control step ``s`` on a unit of latency ``L`` reads its
operands in step ``s``, its result is written to a register in step
``s + L`` (latched in that step's CR phase) and is readable from step
``s + L + 1`` on.  A dependence edge from producer ``p`` to consumer
``c`` therefore enforces ``s(c) >= s(p) + L(p) + 1``.  Program inputs
and constants sit in preloaded registers, readable from step 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .dfg import Dataflow, UNIT_CLASSES


class ScheduleError(ValueError):
    """Raised when no feasible schedule exists."""


def class_latency(unit_class: str) -> int:
    return UNIT_CLASSES[unit_class][1]


@dataclass
class OpSchedule:
    """A complete schedule: op node ident -> issue step, plus binding."""

    steps: dict[str, int] = field(default_factory=dict)
    #: op node ident -> (unit_class, instance index)
    binding: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: unit class -> number of instances used
    instances: dict[str, int] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        """Last write step of the schedule (the needed ``cs_max``)."""
        last = 0
        for ident, step in self.steps.items():
            unit_class, _ = self.binding[ident]
            last = max(last, step + class_latency(unit_class))
        return last

    def issue_step(self, ident: str) -> int:
        return self.steps[ident]

    def write_step(self, ident: str) -> int:
        unit_class, _ = self.binding[ident]
        return self.steps[ident] + class_latency(unit_class)


def asap_schedule(dfg: Dataflow) -> dict[str, int]:
    """Unconstrained as-soon-as-possible issue steps."""
    steps: dict[str, int] = {}
    for node in dfg.op_nodes:
        earliest = 1
        for pred_id in dfg.graph.predecessors(node.ident):
            pred = dfg.nodes[pred_id]
            if pred.kind == "op":
                earliest = max(
                    earliest,
                    steps[pred_id] + class_latency(pred.unit_class) + 1,
                )
        steps[node.ident] = earliest
    return steps


def alap_schedule(dfg: Dataflow, horizon: Optional[int] = None) -> dict[str, int]:
    """As-late-as-possible issue steps against a horizon.

    ``horizon`` defaults to the ASAP makespan (the critical-path
    length), making ALAP - ASAP the classic mobility/slack.
    """
    asap = asap_schedule(dfg)
    if horizon is None:
        horizon = max(
            (
                asap[n.ident] + class_latency(n.unit_class)
                for n in dfg.op_nodes
            ),
            default=0,
        )
    steps: dict[str, int] = {}
    for node in reversed(dfg.op_nodes):
        latest = horizon - class_latency(node.unit_class)
        for succ_id in dfg.graph.successors(node.ident):
            succ = dfg.nodes[succ_id]
            if succ.kind == "op":
                latest = min(
                    latest,
                    steps[succ_id] - class_latency(node.unit_class) - 1,
                )
        if latest < asap[node.ident]:
            raise ScheduleError(
                f"horizon {horizon} infeasible: node {node} needs step "
                f">= {asap[node.ident]} but must issue by {latest}"
            )
        steps[node.ident] = latest
    return steps


def list_schedule(
    dfg: Dataflow,
    resources: Optional[Mapping[str, int]] = None,
) -> OpSchedule:
    """Resource-constrained list scheduling with ALAP-slack priority.

    ``resources`` bounds the unit instances per class, e.g.
    ``{"ALU": 1, "MUL": 1}``; classes not mentioned get one instance.
    Classes with pipelined units accept one issue per instance per
    step; non-pipelined units block their instance for
    ``latency + 1`` steps.
    """
    limits = dict(resources or {})
    for node in dfg.op_nodes:
        limits.setdefault(node.unit_class, 1)
    for unit_class, count in limits.items():
        if unit_class not in UNIT_CLASSES:
            raise ScheduleError(f"unknown unit class {unit_class!r}")
        if count < 1:
            raise ScheduleError(
                f"need at least one {unit_class!r} instance, got {count}"
            )

    asap = asap_schedule(dfg)
    try:
        alap = alap_schedule(dfg)
        slack = {n: alap[n] - asap[n] for n in asap}
    except ScheduleError:  # pragma: no cover - alap(asap horizon) is feasible
        slack = {n: 0 for n in asap}

    schedule = OpSchedule(instances=dict(limits))
    remaining = {n.ident for n in dfg.op_nodes}
    #: (class, instance) -> step until which the instance is busy
    busy_until: dict[tuple[str, int], int] = {}
    step = 1
    guard = 0

    def operands_readable(ident: str) -> bool:
        for pred_id in dfg.graph.predecessors(ident):
            pred = dfg.nodes[pred_id]
            if pred.kind != "op":
                continue  # inputs/constants are readable from step 1
            if pred_id in remaining:
                return False
            readable = (
                schedule.steps[pred_id]
                + class_latency(pred.unit_class)
                + 1
            )
            if readable > step:
                return False
        return True

    while remaining:
        guard += 1
        if guard > 100_000:
            raise ScheduleError("list scheduling did not converge")
        # Ops whose operands are readable at this step, most urgent first.
        ready = sorted(
            (ident for ident in remaining if operands_readable(ident)),
            key=lambda ident: (slack[ident], ident),
        )
        issued_this_step: dict[tuple[str, int], bool] = {}
        for ident in ready:
            node = dfg.nodes[ident]
            unit_class = node.unit_class
            _, latency, pipelined = (
                UNIT_CLASSES[unit_class][0],
                UNIT_CLASSES[unit_class][1],
                UNIT_CLASSES[unit_class][2],
            )
            for instance in range(limits[unit_class]):
                key = (unit_class, instance)
                if issued_this_step.get(key):
                    continue
                if busy_until.get(key, 0) >= step:
                    continue
                schedule.steps[ident] = step
                schedule.binding[ident] = key
                issued_this_step[key] = True
                if not pipelined:
                    busy_until[key] = step + latency
                remaining.discard(ident)
                break
        step += 1
    return schedule
