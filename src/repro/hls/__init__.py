"""Mini high-level synthesis front end (S11, paper §4).

Algorithmic input language (:mod:`expr`), dataflow graphs
(:mod:`dfg`), ASAP/ALAP/list scheduling (:mod:`scheduling`),
register/bus allocation (:mod:`allocation`), and emission into the
clock-free RT subset (:mod:`emit_rt`).
"""

from .allocation import Allocation, allocate
from .dfg import Dataflow, DfgNode, OP_CLASSES, UNIT_CLASSES, build_dataflow
from .emit_rt import SynthesisResult, emit_model, synthesize
from .expr import (
    Assignment,
    BinOp,
    Const,
    ExprError,
    Program,
    Var,
    evaluate,
    parse_expression,
    parse_program,
)
from .scheduling import (
    OpSchedule,
    ScheduleError,
    alap_schedule,
    asap_schedule,
    list_schedule,
)

__all__ = [
    "Allocation",
    "Assignment",
    "BinOp",
    "Const",
    "Dataflow",
    "DfgNode",
    "ExprError",
    "OP_CLASSES",
    "OpSchedule",
    "Program",
    "ScheduleError",
    "SynthesisResult",
    "UNIT_CLASSES",
    "Var",
    "alap_schedule",
    "allocate",
    "asap_schedule",
    "build_dataflow",
    "emit_model",
    "evaluate",
    "list_schedule",
    "parse_expression",
    "parse_program",
    "synthesize",
]
