"""Automatic translation of control-step models to clocked RTL (paper §4).

    "There are several ways to translate a control step scheme into a
    clock scheme based on clock signals.  The transformation into a
    usual synthesizable RT description based on clock signals can be
    performed automatically.  We are now developing such automatic
    translation rules especially aiming at their formal correctness."

This module implements the canonical mapping -- **one clock cycle per
control step**:

* the controller becomes a step counter (the FSM state register);
* each register gets a write-enable and an input multiplexer selecting,
  per state, the functional unit whose result the schedule writes to
  it;
* buses disappear into multiplexers (their scheduling role is already
  discharged: the static schedule proved the sharing feasible);
* a latency-L unit becomes a combinational operator followed by L
  pipeline registers;
* operand routing becomes per-state multiplexers feeding each unit
  from the register outputs the schedule names.

The translation is *table-driven*: the result is a set of decode
tables (which unit fires with which operation and operands in which
state; which register latches from which unit in which state) -- the
same tables a synthesis tool would turn into gates.  Both the fast
cycle simulator and the event-driven clocked kernel model execute
these tables, and the equivalence check (experiment E8) compares the
per-step register traces against the clock-free original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.model import RTModel
from ..core.modules_lib import ModuleSpec


class TranslationError(ValueError):
    """Raised when a model cannot be translated to clocked RTL."""


@dataclass(frozen=True)
class UnitIssue:
    """One functional-unit activation: in state ``step`` the unit
    applies ``op`` to the outputs of registers ``left`` / ``right``."""

    step: int
    op: str
    left: Optional[str]
    right: Optional[str]


@dataclass(frozen=True)
class RegWrite:
    """One register write: in state ``step`` register ``register``
    latches the result of ``module`` (its pipeline tail for latency>0)."""

    step: int
    register: str
    module: str


@dataclass
class ClockedTranslation:
    """The decode tables of the translated design."""

    model: RTModel
    #: module name -> step -> issue
    issues: dict[str, dict[int, UnitIssue]] = field(default_factory=dict)
    #: register name -> step -> write
    writes: dict[str, dict[int, RegWrite]] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        """Clock cycles of one run (= control steps of the original)."""
        return self.model.cs_max

    def module_spec(self, name: str) -> ModuleSpec:
        return self.model.modules[name]

    def describe(self) -> str:
        """Human-readable decode tables."""
        lines = [
            f"clocked translation of {self.model.name!r}: "
            f"{self.cycles} cycles/run"
        ]
        for module, table in sorted(self.issues.items()):
            lines.append(f"  unit {module}:")
            for step, issue in sorted(table.items()):
                operands = ", ".join(
                    p for p in (issue.left, issue.right) if p is not None
                )
                lines.append(f"    state {step}: {issue.op}({operands})")
        for register, table in sorted(self.writes.items()):
            for step, write in sorted(table.items()):
                lines.append(
                    f"  reg {register}: state {step} <- {write.module}"
                )
        return "\n".join(lines)


def translate(model: RTModel) -> ClockedTranslation:
    """Translate a clock-free RT model into clocked decode tables.

    Requires every transfer to be *complete* (read and write halves
    present) or a pure read half feeding a later write half of the
    same module at the latency distance -- which is exactly what
    :func:`repro.core.schedule.analyze` verifies.  Conflicting
    schedules are rejected: a model that the paper's resolution
    function would drive to ILLEGAL has no clocked meaning.
    """
    from ..core.schedule import analyze  # local import: avoid cycle

    report = analyze(model)
    if not report.clean:
        raise TranslationError(
            "cannot translate a conflicting schedule to clocked RTL:\n"
            + str(report)
        )
    result = ClockedTranslation(model=model)
    for transfer in model.transfers:
        spec = model.modules[transfer.module]
        if transfer.has_read:
            # Reads on a two-input unit may arrive as two partial
            # tuples (one per operand); merge them into one issue.
            table = result.issues.setdefault(transfer.module, {})
            existing = table.get(transfer.read_step)
            left, right = transfer.src1, transfer.src2
            op = transfer.op or (existing.op if existing else None)
            if existing is not None:
                if existing.left is not None and left is not None:
                    raise TranslationError(
                        f"unit {transfer.module!r} left operand fed twice "
                        f"in state {transfer.read_step}"
                    )
                left = left if left is not None else existing.left
                right = right if right is not None else existing.right
            table[transfer.read_step] = UnitIssue(
                step=transfer.read_step,
                op=op or spec.default_op,
                left=left,
                right=right,
            )
        if transfer.has_write:
            write = RegWrite(
                step=transfer.write_step,
                register=transfer.dest,
                module=transfer.module,
            )
            wtable = result.writes.setdefault(transfer.dest, {})
            if transfer.write_step in wtable:
                raise TranslationError(
                    f"register {transfer.dest!r} written twice in state "
                    f"{transfer.write_step}"
                )
            wtable[transfer.write_step] = write
    # Second pass: every write must collect a value its unit produces
    # (the issue sits latency states earlier).
    for register, wtable in result.writes.items():
        for step, write in wtable.items():
            spec = model.modules[write.module]
            issue_step = step - spec.latency
            if issue_step not in result.issues.get(write.module, {}):
                raise TranslationError(
                    f"register {register!r} collects from "
                    f"{write.module!r} in state {step}, but the unit has "
                    f"no issue in state {issue_step}"
                )
    return result
