"""Per-step equivalence between clock-free and clocked executions.

The translation's correctness criterion (the "formal correctness" the
paper announces as ongoing work) is observational: after every control
step s, every register of the clock-free model holds the same value as
the corresponding register of the clocked model after clock cycle s.

:func:`check_equivalence` runs both sides and compares the full
per-step register traces; experiment E8 exercises it over a corpus of
models including the Fig.-1 example, random schedules and the IKS
chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.model import RTModel
from ..core.phases import Phase
from ..core.simulator import RTSimulation
from .clocked_sim import ClockedRun, simulate_cycles
from .translate import ClockedTranslation, translate


def clockfree_step_trace(sim: RTSimulation) -> dict[str, dict[int, int]]:
    """Register value after each control step, from a traced run.

    The clock-free register latches during CR of step s; the new value
    becomes visible at RA of step s+1.  "After step s" therefore reads
    the RA sample of step s+1, and the final step reads the register's
    terminal value.
    """
    if sim.tracer is None:
        raise ValueError("clockfree_step_trace needs a run with trace=True")
    cs_max = sim.model.cs_max
    result: dict[str, dict[int, int]] = {}
    for register in sim.model.registers:
        ra_samples = sim.tracer.step_values(f"{register}_out", Phase.RA)
        per_step = {}
        for step in range(1, cs_max):
            per_step[step] = ra_samples[step + 1]
        per_step[cs_max] = sim[register]
        result[register] = per_step
    return result


@dataclass
class Mismatch:
    """One disagreement between the two executions."""

    register: str
    step: int
    clockfree: int
    clocked: int

    def __str__(self) -> str:
        return (
            f"{self.register} after cs{self.step}: clock-free="
            f"{self.clockfree} clocked={self.clocked}"
        )


@dataclass
class EquivalenceReport:
    """Outcome of a clock-free vs clocked comparison."""

    model_name: str
    steps: int
    registers: int
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def __str__(self) -> str:
        if self.equivalent:
            return (
                f"{self.model_name}: equivalent over {self.steps} steps x "
                f"{self.registers} registers"
            )
        lines = [f"{self.model_name}: {len(self.mismatches)} mismatch(es):"]
        lines.extend(f"  {m}" for m in self.mismatches[:20])
        return "\n".join(lines)


def check_equivalence(
    model: RTModel,
    register_values: Optional[Mapping[str, int]] = None,
    translation: Optional[ClockedTranslation] = None,
) -> EquivalenceReport:
    """Run both executions of ``model`` and compare per-step traces."""
    translation = translation or translate(model)
    rt_sim = model.elaborate(register_values=register_values, trace=True).run()
    clock_free = clockfree_step_trace(rt_sim)
    clocked: ClockedRun = simulate_cycles(translation, register_values)
    report = EquivalenceReport(
        model_name=model.name,
        steps=model.cs_max,
        registers=len(model.registers),
    )
    for register, per_step in clock_free.items():
        for step, expected in per_step.items():
            actual = clocked.after_cycle(register, step)
            if actual != expected:
                report.mismatches.append(
                    Mismatch(register, step, expected, actual)
                )
    report.mismatches.sort(key=lambda m: (m.step, m.register))
    return report
