"""Phase-accurate clocked translation: six clock cycles per control step.

Paper §2.2: "Of course, there are different ways to implement control
steps.  The choice of a specific control step implementation also
influences the implementation of registers and modules."

:mod:`repro.clocked.translate` implements the dense mapping (one clock
cycle per step: buses vanish into multiplexers, the whole
read-compute-write path is combinational).  This module implements the
opposite end of the trade-off -- a **literal hardware realization of
the six-phase scheme**, where every phase is a clock cycle and every
hop lands in a register:

* ``ra``: bus registers capture the selected register outputs;
* ``rb``: module input (and op) registers capture the buses;
* ``cm``: unit pipelines advance (latency-0 units stay combinational
  into the WA capture);
* ``wa``: bus registers capture unit outputs;
* ``wb``: register-input staging registers capture the buses;
* ``cr``: architectural registers latch staged values.

Cost: 6x the cycles of the dense mapping.  Benefit: every
combinational path is a single hop (register -> mux -> register), the
classic frequency/latency trade.  Observational equivalence per
control step against the clock-free model holds for both mappings
(experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.model import RTModel
from ..core.phases import Phase
from ..core.schedule import analyze
from ..core.values import DISC
from .clocked_sim import _combine_clocked
from .translate import TranslationError


@dataclass
class PhaseAccurateRun:
    """Result of a phase-accurate clocked simulation."""

    registers: dict[str, int]
    #: register -> step -> value after that step's CR clock edge
    trace: dict[str, dict[int, int]] = field(default_factory=dict)
    clock_cycles: int = 0

    def after_step(self, register: str, step: int) -> int:
        return self.trace[register][step]


def simulate_phase_accurate(
    model: RTModel,
    register_values: Optional[Mapping[str, int]] = None,
) -> PhaseAccurateRun:
    """Execute the six-cycles-per-step hardware realization.

    The micro-architectural state is exactly the six-phase scheme's:
    bus registers, unit input/op registers, unit pipelines and
    register-input staging flops, all clocked; the schedule's TRANS
    instances become the (statically decoded) capture enables.
    """
    report = analyze(model)
    if not report.clean:
        raise TranslationError(
            "cannot translate a conflicting schedule:\n" + str(report)
        )
    specs = model.trans_specs()
    by_cycle: dict[tuple[int, Phase], list] = {}
    for spec in specs:
        by_cycle.setdefault((spec.step, spec.phase), []).append(spec)

    regs: dict[str, int] = {}
    for decl in model.registers.values():
        regs[decl.name] = decl.init
    for name, value in (register_values or {}).items():
        regs[name] = value

    bus_reg: dict[str, int] = {name: DISC for name in model.buses}
    unit_in: dict[str, int] = {}
    unit_op: dict[str, int] = {}
    unit_out: dict[str, int] = {}
    pipes: dict[str, list[int]] = {}
    for name, spec in model.modules.items():
        for i in range(1, spec.arity + 1):
            unit_in[f"{name}_in{i}"] = DISC
        if spec.multi_op:
            unit_op[name] = DISC
        unit_out[name] = DISC
        if spec.latency > 0:
            pipes[name] = [DISC] * spec.latency
    staged: dict[str, int] = {name: DISC for name in model.registers}

    def source_value(port: str) -> int:
        """Value of a TRANS source port in the current cycle."""
        if port.startswith("op:"):
            raise AssertionError("op sources resolved separately")
        if port.endswith("_out"):
            base = port[: -len("_out")]
            if base in model.modules:
                return unit_out[base]
            return regs[base]
        return bus_reg[port]

    trace: dict[str, dict[int, int]] = {name: {} for name in regs}
    cycles = 0
    for step in range(1, model.cs_max + 1):
        for phase in Phase:
            cycles += 1
            actions = by_cycle.get((step, phase), [])
            if phase is Phase.RA or phase is Phase.WA:
                # Bus registers capture their scheduled sources; all
                # other buses return to DISC (the TRANS release).
                next_bus = {name: DISC for name in bus_reg}
                for spec_item in actions:
                    next_bus[spec_item.sink] = source_value(spec_item.source)
                bus_reg = next_bus
            elif phase is Phase.RB:
                next_in = {name: DISC for name in unit_in}
                next_op = {name: DISC for name in unit_op}
                for spec_item in actions:
                    if spec_item.sink.endswith("_op"):
                        base = spec_item.sink[: -len("_op")]
                        op_name = spec_item.source[3:]
                        next_op[base] = model.modules[base].op_code(op_name)
                    else:
                        next_in[spec_item.sink] = bus_reg[spec_item.source]
                unit_in = next_in
                unit_op = next_op
            elif phase is Phase.CM:
                for name, mspec in model.modules.items():
                    operands = [
                        unit_in[f"{name}_in{i}"]
                        for i in range(1, mspec.arity + 1)
                    ]
                    code = unit_op.get(name, DISC)
                    if not mspec.multi_op:
                        op_name = mspec.default_op
                    elif code == DISC:
                        op_name = mspec.default_op
                    else:
                        op_name = sorted(mspec.operations)[code]
                    value = _combine_clocked(mspec, op_name, operands)
                    if mspec.latency == 0:
                        unit_out[name] = value
                    else:
                        pipe = pipes[name]
                        unit_out[name] = pipe[-1]
                        pipe[1:] = pipe[:-1]
                        pipe[0] = value
            elif phase is Phase.WB:
                staged = {name: DISC for name in staged}
                for spec_item in actions:
                    base = spec_item.sink[: -len("_in")]
                    staged[base] = bus_reg[spec_item.source]
            elif phase is Phase.CR:
                for name, value in staged.items():
                    if value != DISC:
                        regs[name] = value
                for name in regs:
                    trace[name][step] = regs[name]
    return PhaseAccurateRun(
        registers=dict(regs), trace=trace, clock_cycles=cycles
    )


def check_phase_accurate_equivalence(
    model: RTModel,
    register_values: Optional[Mapping[str, int]] = None,
):
    """Per-step equivalence of the phase-accurate mapping against the
    clock-free model (same report type as the dense mapping's check)."""
    from .equivalence import EquivalenceReport, Mismatch, clockfree_step_trace

    rt_sim = model.elaborate(register_values=register_values, trace=True).run()
    clock_free = clockfree_step_trace(rt_sim)
    run = simulate_phase_accurate(model, register_values)
    report = EquivalenceReport(
        model_name=f"{model.name} (phase-accurate)",
        steps=model.cs_max,
        registers=len(model.registers),
    )
    for register, per_step in clock_free.items():
        for step, expected in per_step.items():
            actual = run.after_step(register, step)
            if actual != expected:
                report.mismatches.append(
                    Mismatch(register, step, expected, actual)
                )
    report.mismatches.sort(key=lambda m: (m.step, m.register))
    return report
