"""Clocked back end (S9, paper §4's automatic translation).

Control-step models translate automatically into clocked RTL decode
tables (:mod:`translate`), executable by a fast cycle simulator or an
event-driven kernel model with a real clock (:mod:`clocked_sim`),
checkable against the clock-free original step by step
(:mod:`equivalence`), and emittable as synthesizable-style VHDL
(:mod:`emitter`).
"""

from .clocked_sim import (
    ClockedKernelSim,
    ClockedRun,
    elaborate_clocked,
    simulate_cycles,
)
from .emitter import emit_clocked_vhdl
from .equivalence import (
    EquivalenceReport,
    Mismatch,
    check_equivalence,
    clockfree_step_trace,
)
from .phase_accurate import (
    PhaseAccurateRun,
    check_phase_accurate_equivalence,
    simulate_phase_accurate,
)
from .translate import (
    ClockedTranslation,
    RegWrite,
    TranslationError,
    UnitIssue,
    translate,
)

__all__ = [
    "ClockedKernelSim",
    "ClockedRun",
    "ClockedTranslation",
    "EquivalenceReport",
    "Mismatch",
    "PhaseAccurateRun",
    "RegWrite",
    "TranslationError",
    "UnitIssue",
    "check_equivalence",
    "check_phase_accurate_equivalence",
    "clockfree_step_trace",
    "elaborate_clocked",
    "emit_clocked_vhdl",
    "simulate_cycles",
    "simulate_phase_accurate",
    "translate",
]
