"""Execution of translated clocked designs.

Two executions of the same decode tables:

* :func:`simulate_cycles` -- a fast table-driven cycle simulator (the
  reference semantics of the translation);
* :func:`elaborate_clocked` -- an event-driven model on the kernel
  with a real toggling clock signal, one process per register plus the
  state counter and unit pipelines, physical time advancing with each
  half period.  This is the "usual RT model" whose simulation cost the
  clock-free scheme avoids; experiment E5/E8 compares its kernel
  statistics against the control-step original.

Uninitialized storage is modeled with DISC (the simulation analogue of
std_logic ``'X'``); registers keep their value unless an enabled write
delivers a non-DISC result -- mirroring the clock-free REG semantics so
the per-step register traces are comparable bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.diagnostics import ConflictEvent, ConflictLog
from ..core.modules_lib import ModuleSpec
from ..core.phases import Phase, StepPhase
from ..core.values import DISC, ILLEGAL
from ..kernel import SimStats, Simulator, wait_for, wait_until
from .translate import ClockedTranslation


def _combine_clocked(
    spec: ModuleSpec, op_name: str, operands: list[int]
) -> int:
    """Operand combination with the subset's DISC/ILLEGAL rules."""
    op = spec.operations[op_name]
    used = operands[: op.arity]
    if any(v == ILLEGAL for v in used):
        return ILLEGAL
    if all(v == DISC for v in used):
        return DISC
    if any(v == DISC for v in used):
        return ILLEGAL
    return op.apply(used, spec.width)


@dataclass
class ClockedRun:
    """Result of a cycle simulation."""

    registers: dict[str, int]
    #: register -> cycle -> value *after* that cycle's clock edge.
    trace: dict[str, dict[int, int]] = field(default_factory=dict)
    cycles: int = 0

    def after_cycle(self, register: str, cycle: int) -> int:
        """Register value after the given clock cycle."""
        return self.trace[register][cycle]


def simulate_cycles(
    translation: ClockedTranslation,
    register_values: Optional[Mapping[str, int]] = None,
) -> ClockedRun:
    """Run the decode tables through the fast cycle simulator."""
    model = translation.model
    regs: dict[str, int] = {}
    for decl in model.registers.values():
        regs[decl.name] = decl.init
    for name, value in (register_values or {}).items():
        regs[name] = value
    pipes: dict[str, list[int]] = {
        name: [DISC] * spec.latency
        for name, spec in model.modules.items()
        if spec.latency > 0
    }
    trace: dict[str, dict[int, int]] = {name: {} for name in regs}

    for cycle in range(1, translation.cycles + 1):
        # 1. combinational unit results for this state
        results: dict[str, int] = {}
        for module, table in translation.issues.items():
            issue = table.get(cycle)
            if issue is None:
                results[module] = DISC
                continue
            spec = model.modules[module]
            operands = [
                regs[name] if name is not None else DISC
                for name in (issue.left, issue.right)
            ]
            results[module] = _combine_clocked(spec, issue.op, operands)
        # 2. register write values (read pipeline tails *before* shift)
        latches: dict[str, int] = {}
        for register, table in translation.writes.items():
            write = table.get(cycle)
            if write is None:
                continue
            spec = model.modules[write.module]
            if spec.latency == 0:
                value = results.get(write.module, DISC)
            else:
                value = pipes[write.module][-1]
            if value != DISC:
                latches[register] = value
        # 3. pipeline shift (stage in this cycle's combinational result)
        for module, pipe in pipes.items():
            pipe[1:] = pipe[:-1]
            pipe[0] = results.get(module, DISC)
        # 4. clock edge: apply latches, snapshot
        regs.update(latches)
        for name, value in regs.items():
            trace[name][cycle] = value
    return ClockedRun(registers=dict(regs), trace=trace, cycles=translation.cycles)


# ----------------------------------------------------------------------
# event-driven clocked model on the kernel
# ----------------------------------------------------------------------
@dataclass
class ClockedKernelSim:
    """Handle to an elaborated event-driven clocked design.

    Conforms to the :class:`repro.engine.Backend` protocol so the
    benchmark harness compares it against the clock-free backends
    through one interface.  The clocked translation has no resolved
    buses -- all sharing was compiled into mux tables -- so conflicts
    can only surface as ILLEGAL values latched into registers; the
    monitor localizes those to the clock cycle (reported as control
    step, phase CR) in which they were latched.
    """

    sim: Simulator
    translation: ClockedTranslation
    _reg_signals: dict = field(default_factory=dict)
    monitor: ConflictLog = field(default_factory=ConflictLog)
    _probe: Optional[object] = None

    #: Engine kind reported to observers (see repro.observe).
    backend_name = "clocked"

    def run(self) -> "ClockedKernelSim":
        if self._probe is None:
            self.sim.run()
            self._scan_illegal()
            return self
        import time as _time

        self._probe.on_run_start(self)
        t0 = _time.perf_counter()
        self.sim.run()
        self._scan_illegal()
        self._probe.on_run_end(self, _time.perf_counter() - t0)
        return self

    @property
    def registers(self) -> dict[str, int]:
        return {name: sig.value for name, sig in self._reg_signals.items()}

    @property
    def conflicts(self) -> list[ConflictEvent]:
        return self.monitor.events

    @property
    def clean(self) -> bool:
        return self.monitor.clean and not any(
            value == ILLEGAL for value in self.registers.values()
        )

    @property
    def stats(self) -> SimStats:
        return self.sim.stats

    def _scan_illegal(self) -> None:
        cycle = min(self.translation.cycles, self.translation.model.cs_max)
        for name, sig in self._reg_signals.items():
            if sig.value == ILLEGAL:
                self.monitor.record(
                    ConflictEvent(
                        f"{name}_q", StepPhase(cycle, Phase.CR), ()
                    )
                )


def elaborate_clocked(
    translation: ClockedTranslation,
    register_values: Optional[Mapping[str, int]] = None,
    half_period: int = 5,
    observe=None,
) -> ClockedKernelSim:
    """Build the clocked design as kernel processes with a real clock.

    The clock toggles in physical time (``half_period`` ns per phase);
    every register process wakes on every rising edge -- the cost
    profile of conventional clocked RTL simulation that the paper's
    subset avoids.

    ``observe`` attaches a :class:`repro.observe.Probe`.  The clocked
    translation has no six-phase microstructure -- one clock cycle does
    the work of a whole control step -- so each cycle reports a single
    phase boundary at ``(cycle, CR)`` and register latches are
    attributed there too.  There are no resolved buses, hence no
    ``on_bus_drive`` events; conflicts (ILLEGAL latched into a
    register) stream through the monitor listener.
    """
    model = translation.model
    sim = Simulator()
    clk = sim.signal("CLK", init=0)
    clk_drv = sim.driver(clk, owner="clkgen")
    state = sim.signal("STATE", init=1)
    state_drv = sim.driver(state, owner="fsm")

    overrides = dict(register_values or {})
    reg_signals = {}
    reg_drivers = {}
    for decl in model.registers.values():
        init = overrides.get(decl.name, decl.init)
        sig = sim.signal(f"{decl.name}_q", init=init)
        reg_signals[decl.name] = sig
        reg_drivers[decl.name] = sim.driver(sig, owner=decl.name)

    # Pipeline tails are *signals*: a register latching a latency-L
    # result reads the tail value latched at the previous edge, exactly
    # like a flip-flop chain in hardware (and free of process-ordering
    # races within the edge cycle).
    pipe_state: dict[str, list[int]] = {}
    pipe_tail = {}
    pipe_tail_drv = {}
    for name, spec in model.modules.items():
        if spec.latency > 0:
            pipe_state[name] = [DISC] * spec.latency
            sig = sim.signal(f"{name}_pipe_tail", init=DISC)
            pipe_tail[name] = sig
            pipe_tail_drv[name] = sim.driver(sig, owner=f"pipe_{name}")

    def clock_gen():
        for _ in range(translation.cycles):
            yield wait_for(half_period)
            clk_drv.set(1)
            yield wait_for(half_period)
            clk_drv.set(0)

    def rising_edge():
        return wait_until(lambda: clk.value == 1, clk)

    def fsm():
        while True:
            yield rising_edge()
            state_drv.set(state.value + 1)

    def unit_result(module: str, cycle: int) -> int:
        issue = translation.issues.get(module, {}).get(cycle)
        if issue is None:
            return DISC
        spec = model.modules[module]
        operands = [
            reg_signals[name].value if name is not None else DISC
            for name in (issue.left, issue.right)
        ]
        return _combine_clocked(spec, issue.op, operands)

    def make_register_process(register: str):
        table = translation.writes.get(register, {})

        def reg_proc():
            while True:
                yield rising_edge()
                write = table.get(state.value)
                if write is None:
                    continue
                spec = model.modules[write.module]
                if spec.latency == 0:
                    value = unit_result(write.module, state.value)
                else:
                    value = pipe_tail[write.module].value
                if value != DISC:
                    reg_drivers[register].set(value)

        return reg_proc

    def make_pipe_process(module: str):
        pipe = pipe_state[module]

        def pipe_proc():
            while True:
                yield rising_edge()
                staged = unit_result(module, state.value)
                pipe[1:] = pipe[:-1]
                pipe[0] = staged
                pipe_tail_drv[module].set(pipe[-1])

        return pipe_proc

    sim.add_process("clkgen", clock_gen)
    sim.add_process("fsm", fsm)
    for register in model.registers:
        sim.add_process(f"reg_{register}", make_register_process(register))
    for module in pipe_state:
        sim.add_process(f"pipe_{module}", make_pipe_process(module))

    monitor = ConflictLog(
        listener=observe.on_conflict if observe is not None else None
    )
    if observe is not None:
        # One probe "phase" per clock cycle, at CR: the edge that does
        # the whole control step's work.  The edge cycle emits the
        # boundary; the latch driven there becomes effective -- and its
        # watch callback fires -- one delta cycle later, still before
        # the next edge, so latches land between their own boundary and
        # the next one.
        cycle_box = [0]

        def _make_latch_cb(register: str):
            def _cb(sig, old, new):
                observe.on_register_latch(
                    StepPhase(max(cycle_box[0], 1), Phase.CR), register, new
                )

            return _cb

        for register, sig in reg_signals.items():
            sig.watch(_make_latch_cb(register))

        def probe_observer():
            while True:
                yield rising_edge()
                cycle_box[0] += 1
                observe.on_step(cycle_box[0])
                observe.on_phase(StepPhase(cycle_box[0], Phase.CR))

        sim.add_process("probe_observer", probe_observer)

    return ClockedKernelSim(
        sim=sim,
        translation=translation,
        _reg_signals=reg_signals,
        monitor=monitor,
        _probe=observe,
    )
