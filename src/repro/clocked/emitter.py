"""Synthesizable-style VHDL emission of translated clocked designs.

Produces the "usual RT description based on clock signals" (paper §4)
from the decode tables: one clocked process per register with a case
distinction on the FSM state, a state-counter process, pipeline
registers for multi-cycle units, and combinational selected-signal
expressions for the unit operations.

The output targets the common logic-synthesis subset (clocked process
+ case statement, as in [4]); it is a deliverable of the flow, not
re-parsed by this package.
"""

from __future__ import annotations

from ..core.values import DISC
from .translate import ClockedTranslation


def emit_clocked_vhdl(translation: ClockedTranslation) -> str:
    """Render the clocked design as VHDL source text."""
    model = translation.model
    name = _ident(model.name)
    width = model.width
    lines: list[str] = []
    w = lines.append

    w("library ieee;")
    w("use ieee.std_logic_1164.all;")
    w("use ieee.numeric_std.all;")
    w("")
    w(f"-- Clocked translation of clock-free RT model {model.name!r}:")
    w(f"-- one clock cycle per control step, {translation.cycles} cycles per run.")
    w(f"entity {name}_clocked is")
    w("  port (clk, reset: in std_logic);")
    w(f"end {name}_clocked;")
    w("")
    w(f"architecture rtl of {name}_clocked is")
    w(f"  subtype word is unsigned({width - 1} downto 0);")
    w(f"  signal state: natural range 0 to {translation.cycles + 1} := 1;")
    for reg in model.registers.values():
        init = "" if reg.init == DISC else f" := to_unsigned({reg.init}, {width})"
        w(f"  signal {_ident(reg.name)}_q: word{init};")
    for module, spec in model.modules.items():
        if spec.latency > 0:
            for stage in range(spec.latency):
                w(f"  signal {_ident(module)}_p{stage}: word;")
        w(f"  signal {_ident(module)}_y: word;")
    w("begin")
    w("")
    w("  -- state counter (the synthesized controller)")
    w("  fsm: process (clk)")
    w("  begin")
    w("    if rising_edge(clk) then")
    w("      if reset = '1' then state <= 1;")
    w(f"      elsif state <= {translation.cycles} then state <= state + 1;")
    w("      end if;")
    w("    end if;")
    w("  end process;")
    w("")
    for module, table in sorted(translation.issues.items()):
        spec = model.modules[module]
        w(f"  -- unit {module} (latency {spec.latency})")
        w(f"  {_ident(module)}_comb: process (all)")
        w("  begin")
        w(f"    {_ident(module)}_y <= (others => '0');")
        w("    case state is")
        for step, issue in sorted(table.items()):
            expr = _op_expr(issue.op, issue.left, issue.right, width)
            w(f"      when {step} => {_ident(module)}_y <= {expr};")
        w("      when others => null;")
        w("    end case;")
        w("  end process;")
        if spec.latency > 0:
            w(f"  {_ident(module)}_pipe: process (clk)")
            w("  begin")
            w("    if rising_edge(clk) then")
            w(f"      {_ident(module)}_p0 <= {_ident(module)}_y;")
            for stage in range(1, spec.latency):
                w(
                    f"      {_ident(module)}_p{stage} <= "
                    f"{_ident(module)}_p{stage - 1};"
                )
            w("    end if;")
            w("  end process;")
        w("")
    for register, table in sorted(translation.writes.items()):
        w(f"  -- register {register}")
        w(f"  {_ident(register)}_reg: process (clk)")
        w("  begin")
        w("    if rising_edge(clk) then")
        w("      case state is")
        for step, write in sorted(table.items()):
            spec = model.modules[write.module]
            if spec.latency == 0:
                source = f"{_ident(write.module)}_y"
            else:
                source = f"{_ident(write.module)}_p{spec.latency - 1}"
            w(f"        when {step} => {_ident(register)}_q <= {source};")
        w("        when others => null;")
        w("      end case;")
        w("    end if;")
        w("  end process;")
        w("")
    w("end rtl;")
    return "\n".join(lines) + "\n"


def _ident(name: str) -> str:
    """A VHDL-safe identifier."""
    out = "".join(c if c.isalnum() else "_" for c in name)
    if not out or not out[0].isalpha():
        out = "m_" + out
    return out.lower()


_INFIX = {
    "ADD": "+",
    "SUB": "-",
    "MULT": "*",
    "AND": "and",
    "OR": "or",
    "XOR": "xor",
}


def _op_expr(op: str, left, right, width: int) -> str:
    lhs = f"{_ident(left)}_q" if left is not None else "(others => '0')"
    rhs = f"{_ident(right)}_q" if right is not None else "(others => '0')"
    if op in _INFIX:
        expr = f"{lhs} {_INFIX[op]} {rhs}"
        if op == "MULT":
            expr = f"resize({lhs} * {rhs}, {width})"
        return expr
    if op.startswith("ADD_SHR"):
        amount = int(op[len("ADD_SHR"):])
        return f"{lhs} + shift_right(signed({rhs}), {amount})"
    if op in ("PASS", "COPY"):
        return lhs
    # Coarse-grain operations (CORDIC etc.) become component calls in a
    # real flow; emit a named function application as a placeholder the
    # synthesis library would resolve.
    return f"{op.lower()}({lhs}, {rhs})"
