"""Reduced ordered binary decision diagrams (ROBDDs).

The paper's verification context (its refs [8] Deharbe/Borrione and
the EURO-DAC era generally) decided RT/gate equivalence with decision
diagrams; this module provides that substrate: a small, hash-consed
ROBDD package with the classic ``apply`` algorithm, plus word-level
helpers to build BDD vectors for the subset's operations and decide
**bit-level equivalence** of functional-unit operations.

Canonicity gives the main theorem for free: two operations of the same
width are equivalent iff their per-bit BDDs are *identical nodes*.
Used by :func:`check_operation_equivalence` to validate, e.g., that
the IKS adders' fused ``ADD_SHR<k>`` equals the composition of
``ARSHIFT`` and ``ADD``, and that the emitted VHDL module pattern
computes the same function as the native operation table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union


class Bdd:
    """A manager for reduced, ordered BDDs with hash-consing.

    Nodes are integers: 0 (false), 1 (true), or indices into the
    manager's node table.  Variables are identified by their *level*
    (0 = top of the order).
    """

    FALSE = 0
    TRUE = 1

    def __init__(self) -> None:
        # node id -> (level, low, high); ids 0/1 are terminals.
        self._nodes: list[Optional[tuple[int, int, int]]] = [None, None]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple, int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def var(self, level: int) -> int:
        """The BDD of the single variable at ``level``."""
        if level < 0:
            raise ValueError(f"variable level must be >= 0, got {level}")
        return self._mk(level, self.FALSE, self.TRUE)

    def const(self, value: bool) -> int:
        return self.TRUE if value else self.FALSE

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:  # reduction rule
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def _level(self, node: int) -> int:
        if node <= 1:
            return 1 << 30  # terminals sit below every variable
        return self._nodes[node][0]

    def _cofactors(self, node: int, level: int) -> tuple[int, int]:
        if node <= 1 or self._nodes[node][0] != level:
            return node, node
        _, low, high = self._nodes[node]
        return low, high

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` (the universal connective)."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level(f), self._level(g), self._level(h))
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._mk(
            level, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        self._ite_cache[key] = result
        return result

    def not_(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def equiv(self, f: int, g: int) -> bool:
        """Functional equivalence -- by canonicity, node identity."""
        return f == g

    # ------------------------------------------------------------------
    # evaluation / analysis
    # ------------------------------------------------------------------
    def evaluate(self, node: int, assignment: Sequence[bool]) -> bool:
        """Evaluate under a level -> bool assignment."""
        while node > 1:
            level, low, high = self._nodes[node]
            node = high if assignment[level] else low
        return node == self.TRUE

    def sat_count(self, node: int, n_vars: int) -> int:
        """Number of satisfying assignments over ``n_vars`` variables."""
        cache: dict[int, int] = {}

        def count(n: int, level: int) -> int:
            # Assignments over variables [level, n_vars).
            if n == self.FALSE:
                return 0
            if n == self.TRUE:
                return 1 << (n_vars - level)
            node_level, low, high = self._nodes[n]
            c = cache.get(n)
            if c is None:
                c = count(low, node_level + 1) + count(high, node_level + 1)
                cache[n] = c
            # Variables skipped between `level` and the node are free.
            return c << (node_level - level)

        return count(node, 0)

    def any_sat(self, node: int, n_vars: int) -> Optional[list[bool]]:
        """One satisfying assignment, or None."""
        if node == self.FALSE:
            return None
        assignment = [False] * n_vars
        while node > 1:
            level, low, high = self._nodes[node]
            if high != self.FALSE:
                assignment[level] = True
                node = high
            else:
                node = low
        return assignment

    @property
    def node_count(self) -> int:
        return len(self._nodes) - 2


# ----------------------------------------------------------------------
# word-level layer
# ----------------------------------------------------------------------
@dataclass
class BddWord:
    """A little-endian vector of BDDs (bit 0 first)."""

    bits: list[int]

    def __len__(self) -> int:
        return len(self.bits)


def word_inputs(bdd: Bdd, width: int, count: int) -> list[BddWord]:
    """``count`` input words of ``width`` bits with interleaved variable
    order (bit i of every word adjacent -- the good order for
    arithmetic)."""
    words = []
    for w in range(count):
        bits = [bdd.var(i * count + w) for i in range(width)]
        words.append(BddWord(bits))
    return words


def word_const(bdd: Bdd, value: int, width: int) -> BddWord:
    return BddWord(
        [bdd.const(bool((value >> i) & 1)) for i in range(width)]
    )


def word_add(bdd: Bdd, a: BddWord, b: BddWord) -> BddWord:
    """Ripple-carry addition modulo 2**width."""
    carry = bdd.FALSE
    out = []
    for abit, bbit in zip(a.bits, b.bits):
        s = bdd.xor(bdd.xor(abit, bbit), carry)
        carry = bdd.or_(
            bdd.and_(abit, bbit), bdd.and_(carry, bdd.xor(abit, bbit))
        )
        out.append(s)
    return BddWord(out)


def word_neg(bdd: Bdd, a: BddWord) -> BddWord:
    """Two's-complement negation."""
    inverted = BddWord([bdd.not_(bit) for bit in a.bits])
    one = word_const(bdd, 1, len(a))
    return word_add(bdd, inverted, one)


def word_sub(bdd: Bdd, a: BddWord, b: BddWord) -> BddWord:
    return word_add(bdd, a, word_neg(bdd, b))


def word_bitwise(
    bdd: Bdd, op: Callable[[int, int], int], a: BddWord, b: BddWord
) -> BddWord:
    return BddWord([op(x, y) for x, y in zip(a.bits, b.bits)])


def word_shift_right_const(
    bdd: Bdd, a: BddWord, amount: int, arithmetic: bool = False
) -> BddWord:
    """Shift right by a constant; arithmetic keeps the sign bit."""
    width = len(a)
    fill = a.bits[-1] if arithmetic else bdd.FALSE
    bits = []
    for i in range(width):
        src = i + amount
        bits.append(a.bits[src] if src < width else fill)
    return BddWord(bits)


def word_equal(bdd: Bdd, a: BddWord, b: BddWord) -> int:
    """The BDD of bitwise equality of two words."""
    result = bdd.TRUE
    for x, y in zip(a.bits, b.bits):
        result = bdd.and_(result, bdd.not_(bdd.xor(x, y)))
    return result


# ----------------------------------------------------------------------
# operation equivalence
# ----------------------------------------------------------------------
#: Builders for the word-level semantics of the checkable operations.
_WORD_SEMANTICS: dict[str, Callable] = {
    "ADD": word_add,
    "SUB": word_sub,
    "AND": lambda bdd, a, b: word_bitwise(bdd, bdd.and_, a, b),
    "OR": lambda bdd, a, b: word_bitwise(bdd, bdd.or_, a, b),
    "XOR": lambda bdd, a, b: word_bitwise(bdd, bdd.xor, a, b),
}


def build_operation_word(
    bdd: Bdd, name: str, operands: Sequence[BddWord]
) -> BddWord:
    """Word BDD of a named operation (see ``_WORD_SEMANTICS``; shift
    variants ``ADD_SHR<k>`` and ``ARSHIFT``/``RSHIFT`` with constant
    amounts are synthesized on demand)."""
    if name in _WORD_SEMANTICS:
        return _WORD_SEMANTICS[name](bdd, *operands)
    if name.startswith("ADD_SHR"):
        amount = int(name[len("ADD_SHR"):])
        shifted = word_shift_right_const(
            bdd, operands[1], amount, arithmetic=True
        )
        return word_add(bdd, operands[0], shifted)
    raise KeyError(f"no word-level semantics for operation {name!r}")


@dataclass(frozen=True)
class OpEquivalence:
    """Outcome of a bit-level operation-equivalence check."""

    equivalent: bool
    width: int
    counterexample: Optional[tuple[int, ...]] = None

    def __str__(self) -> str:
        if self.equivalent:
            return f"equivalent at width {self.width} (BDD identity)"
        return (
            f"NOT equivalent at width {self.width}; counterexample "
            f"operands {self.counterexample}"
        )


def _compile_operation(
    bdd: Bdd, op, width: int, a: BddWord, b: BddWord
) -> BddWord:
    """Compile an integer operation to per-bit BDDs: one minterm per
    operand pair, OR-ed into every output bit the result sets.  Exact
    but exponential (O(4**width) minterms) -- widths <= ~6."""
    mask = (1 << width) - 1
    minterm_cache: dict[tuple[int, int], int] = {}

    def minterm(av: int, bv: int) -> int:
        node = bdd.TRUE
        for i in range(width):
            va = a.bits[i]
            vb = b.bits[i]
            node = bdd.and_(node, va if (av >> i) & 1 else bdd.not_(va))
            node = bdd.and_(node, vb if (bv >> i) & 1 else bdd.not_(vb))
        return node

    op_bits = [bdd.FALSE] * width
    operand_count = getattr(op, "arity", 2)
    for av in range(1 << width):
        for bv in range(1 << width):
            operands = (av, bv)[:operand_count]
            result = op.apply(operands, width) & mask
            if not result:
                continue
            term = minterm_cache.get((av, bv))
            if term is None:
                term = minterm(av, bv)
                minterm_cache[(av, bv)] = term
            for bit in range(width):
                if (result >> bit) & 1:
                    op_bits[bit] = bdd.or_(op_bits[bit], term)
    return BddWord(op_bits)


def check_operation_equivalence(
    op,
    word_fn: Union[str, Callable[[Bdd, BddWord, BddWord], BddWord], object],
    width: int,
) -> OpEquivalence:
    """Prove (or refute) that a :class:`repro.core.modules_lib.Operation`
    matches a reference semantics at ``width`` bits.

    The reference may be a word-level builder name (``"ADD"``, ...), a
    callable building a :class:`BddWord` from two input words (both
    modular semantics), or another Operation (compiled the same way --
    this is how saturating fixed-point operations are compared, e.g.
    the IKS adders' fused ``ADD_SHR<k>`` against the explicit
    shift-then-add composition).  Equivalence is decided by BDD node
    identity; refutations carry a concrete operand counterexample.
    """
    bdd = Bdd()
    a, b = word_inputs(bdd, width, 2)
    if isinstance(word_fn, str):
        reference = build_operation_word(bdd, word_fn, (a, b))
    elif hasattr(word_fn, "apply"):
        reference = _compile_operation(bdd, word_fn, width, a, b)
    else:
        reference = word_fn(bdd, a, b)
    compiled = _compile_operation(bdd, op, width, a, b)

    difference = bdd.not_(word_equal(bdd, compiled, reference))
    if difference == bdd.FALSE:
        return OpEquivalence(equivalent=True, width=width)
    witness = bdd.any_sat(difference, 2 * width)
    av = sum(
        (1 << i) for i in range(width) if witness[i * 2 + 0]
    )
    bv = sum(
        (1 << i) for i in range(width) if witness[i * 2 + 1]
    )
    return OpEquivalence(
        equivalent=False, width=width, counterexample=(av, bv)
    )
