"""Round-trip proofs for the tuple <-> TRANS-process mapping.

Paper §2.7: "These easy mappings lead to simple formal semantics" --
the mapping from register-transfer tuples to TRANS process instances
and back is the foundation of the paper's verification story.  This
module provides executable checks of the two directions:

* :func:`check_model_roundtrip` -- expanding a model's transfers into
  TRANS instances and reconstructing tuples (using the modules' real
  latencies) yields the original schedule;
* :func:`canonical_tuples` -- the canonical form used for comparison
  (partial read halves of the same (step, module) merge, exactly as
  the inverse mapping produces them).

The hypothesis-based property tests in ``tests/verify`` drive these
over randomly generated schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.model import RTModel
from ..core.transfer import (
    RegisterTransfer,
    expand_all,
    from_trans_specs,
)


@dataclass
class RoundtripReport:
    """Outcome of a tuple->process->tuple round trip."""

    original: list[str] = field(default_factory=list)
    reconstructed: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    extra: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing and not self.extra

    def __str__(self) -> str:
        if self.ok:
            return (
                f"round trip ok: {len(self.original)} canonical tuple(s) "
                f"reconstructed exactly"
            )
        lines = ["round trip FAILED:"]
        for item in self.missing:
            lines.append(f"  missing: {item}")
        for item in self.extra:
            lines.append(f"  extra:   {item}")
        return "\n".join(lines)


def canonical_tuples(
    transfers: Sequence[RegisterTransfer],
) -> list[RegisterTransfer]:
    """Canonical form of a schedule for round-trip comparison.

    Multiple partial read halves targeting the same (step, module)
    merge into one tuple; this is the form the inverse mapping
    naturally produces, and it is semantically identical (the TRANS
    instances coincide).
    """
    merged: dict[tuple, dict] = {}
    order: list[tuple] = []
    for transfer in transfers:
        key = (
            transfer.read_step,
            transfer.write_step,
            transfer.module,
        )
        if key not in merged:
            merged[key] = {}
            order.append(key)
        entry = merged[key]
        for field_name in (
            "src1",
            "bus1",
            "src2",
            "bus2",
            "read_step",
            "write_step",
            "write_bus",
            "dest",
            "op",
        ):
            value = getattr(transfer, field_name)
            if value is not None:
                entry[field_name] = value
        entry["module"] = transfer.module
    return sorted(
        (RegisterTransfer(**fields) for fields in merged.values()),
        key=str,
    )


def check_model_roundtrip(model: RTModel) -> RoundtripReport:
    """Round-trip a model's schedule through TRANS instances."""
    specs = expand_all(model.transfers)
    latency_of = lambda module: model.modules[module].latency  # noqa: E731
    reconstructed = from_trans_specs(specs, latency_of=latency_of)
    want = [str(t) for t in canonical_tuples(model.transfers)]
    got = [str(t) for t in sorted(reconstructed, key=str)]
    report = RoundtripReport(original=want, reconstructed=got)
    want_set, got_set = set(want), set(got)
    report.missing = sorted(want_set - got_set)
    report.extra = sorted(got_set - want_set)
    return report
