"""Symbolic execution of register-transfer models.

The paper's verification flow ("An automatic proving procedure has
been implemented, that performs the verification task", §4) relates RT
models to algorithmic descriptions.  The engine here executes a
model's *schedule* over symbolic values: registers hold expression
trees instead of numbers, functional units build new trees, and after
the run every register holds a closed-form expression of the model's
inputs -- which the equivalence layer then compares against the
algorithmic description.

The symbolic domain mirrors the subset's value domain: a register is
either DISC (never written), or an expression assumed to denote a
data value.  Schedules must be conflict-free (checked by the static
analysis) for symbolic execution to be meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

from ..core.model import RTModel
from ..core.schedule import analyze
from ..core.values import DISC


class SymbolicError(ValueError):
    """Raised when a model cannot be executed symbolically."""


# ----------------------------------------------------------------------
# the expression domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SymConst:
    """A known constant value."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SymVar:
    """A free input value (a register whose content is unknown)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SymOp:
    """An operation applied to symbolic operands."""

    op: str
    args: tuple["SymExpr", ...]

    def __str__(self) -> str:
        return f"{self.op}({', '.join(map(str, self.args))})"


SymExpr = Union[SymConst, SymVar, SymOp]


def sym_vars(expr: SymExpr) -> set[str]:
    """Free variables of an expression."""
    if isinstance(expr, SymVar):
        return {expr.name}
    if isinstance(expr, SymOp):
        out: set[str] = set()
        for arg in expr.args:
            out |= sym_vars(arg)
        return out
    return set()


def evaluate_sym(
    expr: SymExpr, env: Mapping[str, int], model_width: int, ops: Mapping[str, object]
) -> int:
    """Evaluate a symbolic expression on concrete inputs.

    ``ops`` maps operation names to :class:`repro.core.modules_lib.
    Operation` instances (collected during symbolic execution).
    """
    if isinstance(expr, SymConst):
        return expr.value
    if isinstance(expr, SymVar):
        try:
            return env[expr.name]
        except KeyError:
            raise SymbolicError(f"no value for input {expr.name!r}") from None
    operation = ops[expr.op]
    operands = [evaluate_sym(a, env, model_width, ops) for a in expr.args]
    return operation.apply(operands, model_width)  # type: ignore[attr-defined]


# ----------------------------------------------------------------------
# symbolic execution of the schedule
# ----------------------------------------------------------------------
@dataclass
class SymbolicRun:
    """Result of a symbolic execution."""

    registers: dict[str, Optional[SymExpr]]
    #: operation name -> Operation (for concrete re-evaluation)
    operations: dict[str, object]
    width: int

    def expr(self, register: str) -> SymExpr:
        value = self.registers.get(register)
        if value is None:
            raise SymbolicError(f"register {register!r} holds no value (DISC)")
        return value

    def concrete(self, register: str, env: Mapping[str, int]) -> int:
        """Evaluate one register's expression on concrete inputs."""
        return evaluate_sym(self.expr(register), env, self.width, self.operations)


def symbolic_run(
    model: RTModel,
    symbolic_registers: Iterable[str] = (),
) -> SymbolicRun:
    """Execute a model's schedule over symbolic values.

    ``symbolic_registers`` become free variables (the design's
    inputs); all other registers start from their declared presets
    (constants) or DISC.
    """
    from ..clocked.translate import translate  # shares the decode tables

    report = analyze(model)
    if not report.clean:
        raise SymbolicError(
            "cannot execute a conflicting schedule symbolically:\n"
            + str(report)
        )
    translation = translate(model)

    regs: dict[str, Optional[SymExpr]] = {}
    symbolic = set(symbolic_registers)
    unknown = symbolic - set(model.registers)
    if unknown:
        raise SymbolicError(f"unknown symbolic registers: {sorted(unknown)}")
    for decl in model.registers.values():
        if decl.name in symbolic:
            regs[decl.name] = SymVar(decl.name)
        elif decl.init != DISC:
            regs[decl.name] = SymConst(decl.init)
        else:
            regs[decl.name] = None

    operations: dict[str, object] = {}
    pipes: dict[str, list[Optional[SymExpr]]] = {
        name: [None] * spec.latency
        for name, spec in model.modules.items()
        if spec.latency > 0
    }

    for cycle in range(1, translation.cycles + 1):
        results: dict[str, Optional[SymExpr]] = {}
        for module, table in translation.issues.items():
            issue = table.get(cycle)
            if issue is None:
                results[module] = None
                continue
            spec = model.modules[module]
            operation = spec.operations[issue.op]
            operands = []
            for name in (issue.left, issue.right)[: operation.arity]:
                if name is None:
                    raise SymbolicError(
                        f"unit {module} at step {cycle}: missing operand"
                    )
                value = regs[name]
                if value is None:
                    raise SymbolicError(
                        f"unit {module} at step {cycle} reads register "
                        f"{name!r} which holds no value"
                    )
                operands.append(value)
            # Fold constants eagerly; otherwise build a tree.
            qualified = f"{issue.op}"
            operations[qualified] = operation
            if all(isinstance(v, SymConst) for v in operands):
                folded = operation.apply(
                    [v.value for v in operands], spec.width
                )
                results[module] = SymConst(folded)
            else:
                results[module] = SymOp(qualified, tuple(operands))
        latches: dict[str, SymExpr] = {}
        for register, table in translation.writes.items():
            write = table.get(cycle)
            if write is None:
                continue
            spec = model.modules[write.module]
            if spec.latency == 0:
                value = results.get(write.module)
            else:
                value = pipes[write.module][-1]
            if value is not None:
                latches[register] = value
        for module, pipe in pipes.items():
            pipe[1:] = pipe[:-1]
            pipe[0] = results.get(module)
        regs.update(latches)
    return SymbolicRun(registers=regs, operations=operations, width=model.width)
