"""Equivalence checking between RT models and algorithmic descriptions.

Two complementary procedures, as in the paper's verification flow:

* **normalization**: symbolic expressions are put into a canonical
  form (constants folded, associative-commutative operators flattened
  and sorted); two descriptions whose normal forms coincide are
  equivalent.  This decides most HLS-generated designs, since the RT
  side computes literally the same tree modulo re-association.
* **randomized refutation**: when normal forms differ, the check is
  completed by evaluating both sides on random inputs; any
  disagreement is a counterexample, agreement over the trial budget
  is reported as "probably equivalent" (the classic fallback of
  algebraic-simplification-based provers like the one in [9]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..core.model import RTModel
from ..hls.dfg import OP_NAMES as OP_NAMES_BY_SYMBOL
from ..hls.expr import Const, Expr, Program, Var, evaluate
from .symbolic import SymConst, SymExpr, SymOp, SymVar, symbolic_run

#: Operations that may be flattened and sorted (associative+commutative).
AC_OPS = {"ADD", "MULT", "AND", "OR", "XOR", "MIN", "MAX"}


def normalize(expr: SymExpr, width: int, ops: Mapping[str, object]) -> SymExpr:
    """Canonical form: fold constants, flatten/sort AC operators."""
    if not isinstance(expr, SymOp):
        return expr
    args = [normalize(a, width, ops) for a in expr.args]
    operation = ops.get(expr.op)
    # Full constant folding when the operation is known.
    if operation is not None and all(isinstance(a, SymConst) for a in args):
        return SymConst(
            operation.apply([a.value for a in args], width)  # type: ignore[attr-defined]
        )
    if expr.op in AC_OPS:
        flat: list[SymExpr] = []
        for arg in args:
            if isinstance(arg, SymOp) and arg.op == expr.op:
                flat.extend(arg.args)
            else:
                flat.append(arg)
        # Fold the constant subset together.
        consts = [a for a in flat if isinstance(a, SymConst)]
        rest = [a for a in flat if not isinstance(a, SymConst)]
        if operation is not None and len(consts) > 1:
            folded = consts[0].value
            for c in consts[1:]:
                folded = operation.apply([folded, c.value], width)  # type: ignore[attr-defined]
            consts = [SymConst(folded)]
        flat = sorted(rest, key=_sort_key) + consts
        if len(flat) == 1:
            return flat[0]
        return SymOp(expr.op, tuple(flat))
    return SymOp(expr.op, tuple(args))


def _sort_key(expr: SymExpr) -> tuple:
    if isinstance(expr, SymVar):
        return (0, expr.name)
    if isinstance(expr, SymConst):
        return (1, expr.value)
    return (2, expr.op, str(expr))


def program_symbolic_env(program: Program) -> dict[str, SymExpr]:
    """Symbolically evaluate an algorithmic program.

    Returns the final environment mapping each variable to an
    expression over the program's inputs, using the same operation
    names as the RT side so normal forms are comparable.
    """
    env: dict[str, SymExpr] = {name: SymVar(name) for name in program.inputs}
    for stmt in program.statements:
        env[stmt.target] = _expr_to_sym(stmt.expr, env)
    return env


def _expr_to_sym(expr: Expr, env: Mapping[str, SymExpr]) -> SymExpr:
    if isinstance(expr, Const):
        return SymConst(expr.value)
    if isinstance(expr, Var):
        return env[expr.name]
    left = _expr_to_sym(expr.left, env)
    right = _expr_to_sym(expr.right, env)
    return SymOp(OP_NAMES_BY_SYMBOL[expr.op], (left, right))


@dataclass
class EquivalenceResult:
    """Outcome of one register-vs-expression comparison."""

    register: str
    variable: str
    method: str  # "normal-form" | "random" | "counterexample"
    equivalent: bool
    counterexample: Optional[dict[str, int]] = None

    def __str__(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "DIFFERENT"
        extra = (
            f" counterexample={self.counterexample}"
            if self.counterexample
            else ""
        )
        return (
            f"{self.variable} ~ {self.register}: {verdict} "
            f"({self.method}){extra}"
        )


def draw_trial_vectors(
    inputs: Sequence[str], width: int, trials: int, seed: int
) -> list[dict[str, int]]:
    """Materialize all randomized-refutation input vectors up front.

    One rng walk per check: vector ``t`` depends only on ``(seed, t)``,
    never on how many trials an earlier register pair consumed before
    an early exit -- and the resulting list is exactly the
    ``register_values`` batch the ``compiled-batched`` backend takes.
    """
    rng = random.Random(seed)
    return [
        {name: rng.randrange(0, 1 << width) for name in inputs}
        for _ in range(trials)
    ]


class _ModelEvaluator:
    """Refutation oracle that *simulates* the model (``backend=`` path).

    Lazily sweeps the full trial batch through the chosen backend --
    one run for ``compiled-batched``, one elaboration per vector for
    scalar backends -- and serves every register pair from the same
    sweep.  Nothing runs if every pair already decided by normal form.
    """

    def __init__(
        self, model: RTModel, envs: Sequence[Mapping[str, int]], backend: str
    ) -> None:
        self._model = model
        self._envs = envs
        self._backend = backend
        self._results: Optional[list[dict[str, int]]] = None

    def value(self, register: str, trial: int) -> int:
        if self._results is None:
            self._results = self._sweep()
        return self._results[trial][register]

    def _sweep(self) -> list[dict[str, int]]:
        if self._backend == "compiled-batched":
            sim = self._model.elaborate(
                register_values=list(self._envs), backend=self._backend
            ).run()
            return sim.registers
        return [
            self._model.elaborate(
                register_values=env, backend=self._backend
            ).run().registers
            for env in self._envs
        ]


def check_program_vs_model(
    program: Program,
    model: RTModel,
    output_regs: Mapping[str, str],
    trials: int = 64,
    seed: int = 12345,
    backend: Optional[str] = None,
    properties: Optional[Sequence] = None,
    coverage_db: object = None,
) -> list[EquivalenceResult]:
    """Verify an RT model against its algorithmic source program.

    ``output_regs`` maps program variables to the registers holding
    them (as produced by :func:`repro.hls.synthesize`).  Registers
    named after program inputs are treated as symbolic.

    ``backend`` selects how the randomized-refutation side evaluates
    the model: None (the default) evaluates the symbolic run's
    expressions directly; a backend name simulates the model itself on
    the trial vectors -- ``"compiled-batched"`` sweeps the whole trial
    batch in one run.  The trial vectors are identical either way
    (drawn up front from ``seed``).

    ``properties`` (a sequence of :class:`repro.observe.Property`)
    adds the runtime monitors as an extra oracle: every trial vector
    is swept through the assertion checker and each property
    contributes one ``method="monitor"`` result -- failing with the
    first offending vector as counterexample, or passing over the
    whole trial batch.  Functional equivalence alone misses these
    (a bus conflict that resolves to the right value, a transient
    ILLEGAL overwritten before the output step); the monitor oracle
    rejects them.

    ``coverage_db`` (any :data:`repro.observe.coverage.CoverageDBArg`
    shape -- True, a path, or a ready ``CoverageDB``) additionally
    measures the structural coverage the trial sweep achieved and
    merges it into the cumulative on-disk DB, so refutation trials
    feed the same saturation campaign as ``repro cover`` runs.  Needs
    ``backend`` (the symbolic path never executes the model).
    """
    run = symbolic_run(model, symbolic_registers=list(program.inputs))
    prog_env = program_symbolic_env(program)
    # The program side may use operations the model never executed;
    # extend the operation table for normalization/evaluation.
    from ..core.modules_lib import standard_operation

    ops = dict(run.operations)
    for symbol, op_name in OP_NAMES_BY_SYMBOL.items():
        ops.setdefault(op_name, standard_operation(op_name))

    trial_envs = draw_trial_vectors(
        program.inputs, model.width, trials, seed
    )
    evaluator = (
        _ModelEvaluator(model, trial_envs, backend)
        if backend is not None
        else None
    )
    results: list[EquivalenceResult] = []
    for variable, register in output_regs.items():
        model_expr = normalize(run.expr(register), model.width, ops)
        prog_expr = normalize(prog_env[variable], model.width, ops)
        if model_expr == prog_expr:
            results.append(
                EquivalenceResult(register, variable, "normal-form", True)
            )
            continue
        # Randomized refutation.
        counterexample = None
        for t, env in enumerate(trial_envs):
            if evaluator is not None:
                lhs = evaluator.value(register, t)
            else:
                lhs = run.concrete(register, env)
            rhs = evaluate(program, env, model.width)[variable]
            if lhs != rhs:
                counterexample = dict(env)
                break
        if counterexample is not None:
            results.append(
                EquivalenceResult(
                    register,
                    variable,
                    "counterexample",
                    False,
                    counterexample,
                )
            )
        else:
            results.append(
                EquivalenceResult(register, variable, "random", True)
            )
    if properties:
        results.extend(
            _monitor_oracle(model, trial_envs, properties, backend)
        )
    if coverage_db is not None and coverage_db is not False:
        _accumulate_coverage(model, trial_envs, backend, coverage_db)
    return results


def _accumulate_coverage(
    model: RTModel,
    trial_envs: Sequence[Mapping[str, int]],
    backend: Optional[str],
    coverage_db: object,
) -> None:
    """Merge the trial sweep's structural coverage into the DB."""
    from ..observe import as_coverage_db, measure_coverage

    db = as_coverage_db(coverage_db)
    if db is None:
        return
    if backend is None:
        raise ValueError(
            "coverage_db needs a backend= that executes the model "
            "(the symbolic oracle never runs it)"
        )
    if backend == "compiled-batched":
        report = measure_coverage(
            model, backend=backend, register_values=list(trial_envs)
        )
    else:
        report = None
        for env in trial_envs:
            lane = measure_coverage(
                model, backend=backend, register_values=dict(env)
            )
            report = lane if report is None else report.merge(lane)
    if report is not None:
        db.update(report)


def _monitor_oracle(
    model: RTModel,
    trial_envs: Sequence[Mapping[str, int]],
    properties: Sequence,
    backend: Optional[str],
) -> list[EquivalenceResult]:
    """Sweep the trial vectors through the runtime monitors.

    One result per property: the first trial vector violating it is
    the counterexample; a property no vector violates passes with
    ``register="*"`` (it constrains the whole run, not one output)."""
    from ..observe import check_model

    sweep_backend = backend or "compiled-batched"
    reports = check_model(
        model, properties, backend=sweep_backend,
        register_values=list(trial_envs),
    ) if sweep_backend == "compiled-batched" else [
        check_model(model, properties, backend=sweep_backend,
                    register_values=dict(env))
        for env in trial_envs
    ]
    results: list[EquivalenceResult] = []
    for prop in properties:
        offending = next(
            (
                (t, violation)
                for t, report in enumerate(reports)
                for violation in report.violations
                if violation.prop == prop.label
            ),
            None,
        )
        if offending is None:
            results.append(
                EquivalenceResult("*", prop.label, "monitor", True)
            )
        else:
            t, violation = offending
            results.append(
                EquivalenceResult(
                    violation.signal or "*",
                    prop.label,
                    "monitor",
                    False,
                    dict(trial_envs[t]),
                )
            )
    return results


def all_equivalent(results: Sequence[EquivalenceResult]) -> bool:
    """Whether every output verified."""
    return all(r.equivalent for r in results)
