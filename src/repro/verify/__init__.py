"""Verification tools (S12, the paper's "automatic proving procedure").

Symbolic execution of RT schedules (:mod:`symbolic`), equivalence
checking against algorithmic programs (:mod:`equivalence`), and
round-trip proofs of the tuple <-> TRANS mapping (:mod:`roundtrip`).
"""

from .bdd import (
    Bdd,
    BddWord,
    OpEquivalence,
    check_operation_equivalence,
    word_add,
    word_const,
    word_equal,
    word_inputs,
    word_sub,
)
from .equivalence import (
    AC_OPS,
    EquivalenceResult,
    all_equivalent,
    check_program_vs_model,
    draw_trial_vectors,
    normalize,
    program_symbolic_env,
)
from .roundtrip import RoundtripReport, canonical_tuples, check_model_roundtrip
from .symbolic import (
    SymConst,
    SymExpr,
    SymOp,
    SymVar,
    SymbolicError,
    SymbolicRun,
    sym_vars,
    symbolic_run,
)

__all__ = [
    "AC_OPS",
    "Bdd",
    "BddWord",
    "EquivalenceResult",
    "OpEquivalence",
    "check_operation_equivalence",
    "word_add",
    "word_const",
    "word_equal",
    "word_inputs",
    "word_sub",
    "RoundtripReport",
    "SymConst",
    "SymExpr",
    "SymOp",
    "SymVar",
    "SymbolicError",
    "SymbolicRun",
    "all_equivalent",
    "canonical_tuples",
    "check_model_roundtrip",
    "check_program_vs_model",
    "draw_trial_vectors",
    "normalize",
    "program_symbolic_env",
    "sym_vars",
    "symbolic_run",
]
