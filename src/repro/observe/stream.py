"""Live NDJSON probe streaming over a socket.

:class:`StreamServer` is an ordinary :class:`~repro.observe.probe.Probe`
attached through the same ``observe=`` hook as every other observer, so
it inherits the canonical per-cycle emission order for free.  Each
callback serializes to the *same* event dicts the JSONL recorder
writes (one JSON object per ``\\n``-terminated line -- NDJSON), pushed
to every connected client; ``repro watch HOST:PORT`` is the matching
tail/pretty-print client.

Backpressure is explicit, never blocking, and accounted *per client*:
every watcher gets its own bounded :class:`RecordQueue` drained by its
own sender thread, and when a watcher falls behind only *its* queue
overflows -- the event is dropped and counted against that client
(``server.client_drops()``) while faster watchers keep receiving the
full stream.  ``server.dropped`` aggregates the per-client counts (so
one slow ``repro watch`` can no longer mask another's losses, they are
itemized) and ``run_metrics(stream=server)`` surfaces
``stream_events`` / ``stream_dropped`` next to the kernel counters.
:mod:`repro.serve` reuses :class:`RecordQueue` for the same
per-connection backpressure accounting on its WebSocket watch feeds.

Monitors compose with streaming: wire an
:class:`~repro.observe.monitor.AssertionMonitor` listener to
:meth:`StreamServer.emit_violation` and watchers see each assertion
failure live, as an extra ``{"event": "violation", ...}`` record type
on the same wire.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from typing import IO, TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from . import recorder
from .probe import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .monitor import Violation

#: Sentinel shutting down a sender thread.
_CLOSE = object()


class RecordQueue:
    """A bounded, never-blocking handoff queue with loss accounting.

    The producer calls :meth:`offer`; when the consumer has fallen
    behind and the queue is full the record is dropped and counted
    instead of stalling the producer.  One instance per consumer makes
    losses attributable: :class:`StreamServer` keeps one per watcher,
    :mod:`repro.serve` one per WebSocket watch subscription.

    Thread-safe.  Consumers either block in :meth:`get` (dedicated
    sender threads) or batch-drain with :meth:`drain` (asyncio tasks
    scheduled right after the producer's :meth:`offer`).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self._q: "queue.Queue[Any]" = queue.Queue(maxsize=maxsize)
        #: records accepted into the queue
        self.accepted = 0
        #: records dropped because this consumer's queue was full
        self.dropped = 0

    def offer(self, item: Any) -> bool:
        """Enqueue without blocking; count (and report) a full queue."""
        try:
            self._q.put_nowait(item)
        except queue.Full:
            self.dropped += 1
            return False
        self.accepted += 1
        return True

    def get(self) -> Any:
        """Blocking take (sender-thread consumers)."""
        return self._q.get()

    def pending(self) -> bool:
        """True while items are queued (consumer-side peek)."""
        return not self._q.empty()

    def put(self, item: Any) -> None:
        """Blocking enqueue that never drops (shutdown sentinels that
        must preserve already-queued records, unlike :meth:`close`)."""
        self._q.put(item)

    def drain(self) -> List[Any]:
        """Take everything currently queued without blocking."""
        items: List[Any] = []
        while True:
            try:
                items.append(self._q.get_nowait())
            except queue.Empty:
                return items

    def close(self) -> None:
        """Wake the consumer with the close sentinel, even when full."""
        while True:
            try:
                self._q.put_nowait(_CLOSE)
                return
            except queue.Full:
                try:  # make room: the consumer is gone anyway
                    self._q.get_nowait()
                except queue.Empty:
                    pass


class _ClientSlot:
    """One connected watcher: its socket, queue, and delivery counters."""

    __slots__ = ("conn", "peer", "queue", "sent", "thread")

    def __init__(self, conn: socket.socket, max_queue: int) -> None:
        self.conn = conn
        try:
            host, port = conn.getpeername()[:2]
            self.peer = f"{host}:{port}"
        except OSError:  # racing a disconnect
            self.peer = "?"
        self.queue = RecordQueue(max_queue)
        #: records actually written to this watcher's socket
        self.sent = 0
        self.thread: Optional[threading.Thread] = None


class StreamServer(Probe):
    """Serve the probe event stream as NDJSON over TCP.

    Parameters
    ----------
    host, port:
        Bind address; port 0 (default) picks a free port --
        ``server.address`` is the bound ``(host, port)`` pair.
    max_queue:
        Bound of each *watcher's* event queue; a watcher that falls
        behind drops events from its own queue only, counted against
        that client (see :meth:`client_drops`).
    wait_for_client:
        Seconds ``on_run_start`` waits for at least one client before
        the run proceeds (0 = do not wait).  Lets ``repro watch``
        attach before the first event without racing the run.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 1024,
        wait_for_client: float = 0.0,
    ) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(8)
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self.wait_for_client = wait_for_client
        self.max_queue = max_queue
        #: records offered to the fanout (one per probe callback)
        self.events = 0
        #: watcher connections accepted over the server's lifetime
        #: (``run_metrics(stream=server)`` reports it next to the
        #: delivery counters).
        self.clients_total = 0
        self._slots: List[_ClientSlot] = []
        #: (peer, sent, dropped) tallies of departed watchers, so the
        #: aggregate counters survive disconnects.
        self._departed: List[Tuple[str, int, int]] = []
        self._lock = threading.Lock()
        self._have_client = threading.Event()
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-stream-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # server plumbing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:  # listening socket closed
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            slot = _ClientSlot(conn, self.max_queue)
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._slots.append(slot)
                self.clients_total += 1
            slot.thread = threading.Thread(
                target=self._sender_loop,
                args=(slot,),
                name=f"repro-stream-send-{slot.peer}",
                daemon=True,
            )
            slot.thread.start()
            self._have_client.set()

    def _sender_loop(self, slot: _ClientSlot) -> None:
        """Drain one watcher's queue onto its socket (one thread each,
        so a stalled watcher only ever stalls itself)."""
        while True:
            item = slot.queue.get()
            if item is _CLOSE:
                return
            data = (json.dumps(item, separators=(",", ":")) + "\n").encode("utf-8")
            try:
                slot.conn.sendall(data)
            except OSError:
                self._retire(slot)
                return
            slot.sent += 1

    def _retire(self, slot: _ClientSlot) -> None:
        """Move a dead watcher's counters into the departed tally."""
        with self._lock:
            if slot in self._slots:
                self._slots.remove(slot)
                self._departed.append(
                    (slot.peer, slot.sent, slot.queue.dropped)
                )
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def emit(self, record: dict) -> None:
        """Offer one event dict to every connected client's queue.

        Never blocks the simulation: a full queue counts a drop
        against that client alone."""
        self.events += 1
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            slot.queue.offer(record)

    def emit_violation(self, violation: "Violation") -> None:
        """Monitor listener hook: stream an assertion failure live."""
        self.emit({"event": "violation", **violation.to_dict()})

    @property
    def client_count(self) -> int:
        """Watchers connected right now."""
        with self._lock:
            return len(self._slots)

    @property
    def dropped(self) -> int:
        """Events lost to backpressure, summed over all watchers
        (including departed ones); itemize with :meth:`client_drops`."""
        with self._lock:
            return sum(s.queue.dropped for s in self._slots) + sum(
                d for _peer, _sent, d in self._departed
            )

    def client_drops(self) -> List[dict]:
        """Per-client delivery accounting, one row per watcher.

        Each row is ``{"peer", "sent", "dropped", "connected"}``;
        departed watchers keep their rows so a slow client's losses
        stay visible (and attributable) after it hangs up."""
        with self._lock:
            live = [
                {
                    "peer": s.peer,
                    "sent": s.sent,
                    "dropped": s.queue.dropped,
                    "connected": True,
                }
                for s in self._slots
            ]
            gone = [
                {
                    "peer": peer,
                    "sent": sent,
                    "dropped": dropped,
                    "connected": False,
                }
                for peer, sent, dropped in self._departed
            ]
        return live + gone

    def close(self, timeout: float = 5.0) -> None:
        """Drain the per-client queues, hang up, stop every thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # One process-metrics sample per server lifetime.
        from .metrics import record_stream_close

        record_stream_close(self)
        self._sock.close()
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            slot.queue.close()
        for slot in slots:
            if slot.thread is not None:
                slot.thread.join(timeout=timeout)
        with self._lock:
            slots, self._slots = self._slots, []
            for slot in slots:
                self._departed.append(
                    (slot.peer, slot.sent, slot.queue.dropped)
                )
        for slot in slots:
            try:
                slot.conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            slot.conn.close()
        self._accept_thread.join(timeout=timeout)

    def __enter__(self) -> "StreamServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # probe interface -- same wire records as the JSONL recorder
    # ------------------------------------------------------------------
    def on_run_start(self, backend: Any) -> None:
        if self.wait_for_client > 0:
            self._have_client.wait(self.wait_for_client)
        self.emit(recorder.run_start_event(backend))

    def on_step(self, step: int) -> None:
        self.emit(recorder.step_event(step))

    def on_phase(self, at: Any) -> None:
        self.emit(recorder.phase_event(at))

    def on_bus_drive(self, at: Any, bus: str, value: int) -> None:
        self.emit(recorder.bus_event(at, bus, value))

    def on_register_latch(self, at: Any, register: str, value: int) -> None:
        self.emit(recorder.latch_event(at, register, value))

    def on_conflict(self, event: Any) -> None:
        self.emit(recorder.conflict_event(event))

    def on_run_end(self, backend: Any, wall: float) -> None:
        self.emit(recorder.run_end_event(backend, wall))


# ----------------------------------------------------------------------
# the watch client
# ----------------------------------------------------------------------
def parse_endpoint(text: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` endpoint (host defaults to localhost)."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad endpoint {text!r} (expected HOST:PORT)") from None
    if not (0 < port < 65536):
        raise ValueError(f"bad port {port} in endpoint {text!r}")
    return host, port


def format_event(event: dict) -> str:
    """One human-readable line per wire record (the watch pretty-printer)."""
    kind = event.get("event", "?")
    cs, ph = event.get("cs"), event.get("ph")
    where = f"cs{cs}.{ph}" if cs is not None and ph is not None else "--"
    if kind == "run_start":
        return (
            f"run_start  model={event.get('model')} backend={event.get('backend')} "
            f"cs_max={event.get('cs_max')}"
        )
    if kind == "step":
        return f"step       cs{cs}"
    if kind == "phase":
        return f"phase      {where}"
    if kind == "bus":
        return f"bus        {where} {event.get('signal')} = {event.get('value')}"
    if kind == "latch":
        return f"latch      {where} {event.get('register')} = {event.get('value')}"
    if kind == "conflict":
        drivers = ", ".join(f"{o}={v}" for o, v in event.get("drivers", []))
        return f"CONFLICT   {where} {event.get('signal')} (drivers: {drivers})"
    if kind == "violation":
        return (
            f"VIOLATION  {where} [{event.get('property')}] "
            f"{event.get('signal') or ''} {event.get('message')}".rstrip()
        )
    if kind == "run_end":
        return (
            f"run_end    clean={event.get('clean')} "
            f"wall={event.get('wall', 0.0):.4f}s"
        )
    return f"{kind}  {json.dumps(event, separators=(',', ':'))}"


def watch_stream(
    host: str,
    port: int,
    out: IO[str],
    raw: bool = False,
    max_events: Optional[int] = None,
    timeout: Optional[float] = None,
    on_event: Optional[Callable[[dict], None]] = None,
) -> int:
    """Tail a :class:`StreamServer` until EOF (or ``max_events``).

    Prints one line per event (raw NDJSON with ``raw=True``) and
    returns the number of events received.  ``timeout`` bounds both the
    connect and each read; ``on_event`` sees every decoded record
    (used by tests and embedders)."""
    seen = 0
    with socket.create_connection((host, port), timeout=timeout) as conn:
        if timeout is not None:
            conn.settimeout(timeout)
        buffer = b""
        while max_events is None or seen < max_events:
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                seen += 1
                if on_event is not None:
                    on_event(event)
                out.write((line.decode("utf-8") if raw else format_event(event)) + "\n")
                if max_events is not None and seen >= max_events:
                    break
    return seen
