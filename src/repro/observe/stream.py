"""Live NDJSON probe streaming over a socket.

:class:`StreamServer` is an ordinary :class:`~repro.observe.probe.Probe`
attached through the same ``observe=`` hook as every other observer, so
it inherits the canonical per-cycle emission order for free.  Each
callback serializes to the *same* event dicts the JSONL recorder
writes (one JSON object per ``\\n``-terminated line -- NDJSON), pushed
to every connected client; ``repro watch HOST:PORT`` is the matching
tail/pretty-print client.

Backpressure is explicit, never blocking: events pass through a
bounded queue between the simulation thread and the sender thread, and
when the queue is full the event is *dropped* and counted
(``server.dropped``) rather than stalling the run.
``run_metrics(stream=server)`` surfaces ``stream_events`` /
``stream_dropped`` next to the kernel counters.

Monitors compose with streaming: wire an
:class:`~repro.observe.monitor.AssertionMonitor` listener to
:meth:`StreamServer.emit_violation` and watchers see each assertion
failure live, as an extra ``{"event": "violation", ...}`` record type
on the same wire.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from typing import IO, TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from . import recorder
from .probe import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .monitor import Violation

#: Sentinel shutting down the sender thread.
_CLOSE = object()


class StreamServer(Probe):
    """Serve the probe event stream as NDJSON over TCP.

    Parameters
    ----------
    host, port:
        Bind address; port 0 (default) picks a free port --
        ``server.address`` is the bound ``(host, port)`` pair.
    max_queue:
        Bound of the event queue between the simulation and the sender
        thread; a full queue drops events (counted in ``dropped``).
    wait_for_client:
        Seconds ``on_run_start`` waits for at least one client before
        the run proceeds (0 = do not wait).  Lets ``repro watch``
        attach before the first event without racing the run.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 1024,
        wait_for_client: float = 0.0,
    ) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(8)
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self.wait_for_client = wait_for_client
        self.events = 0
        self.dropped = 0
        #: watcher connections accepted over the server's lifetime
        #: (``run_metrics(stream=server)`` reports it next to the
        #: delivery counters).
        self.clients_total = 0
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max_queue)
        self._clients: List[socket.socket] = []
        self._lock = threading.Lock()
        self._have_client = threading.Event()
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-stream-accept", daemon=True
        )
        self._sender_thread = threading.Thread(
            target=self._sender_loop, name="repro-stream-send", daemon=True
        )
        self._accept_thread.start()
        self._sender_thread.start()

    # ------------------------------------------------------------------
    # server plumbing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:  # listening socket closed
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._clients.append(conn)
                self.clients_total += 1
            self._have_client.set()

    def _sender_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                return
            data = (json.dumps(item, separators=(",", ":")) + "\n").encode("utf-8")
            with self._lock:
                clients = list(self._clients)
            dead = []
            for conn in clients:
                try:
                    conn.sendall(data)
                except OSError:
                    dead.append(conn)
            if dead:
                with self._lock:
                    for conn in dead:
                        if conn in self._clients:
                            self._clients.remove(conn)
                        conn.close()

    def emit(self, record: dict) -> None:
        """Enqueue one event dict for every connected client.

        Never blocks the simulation: a full queue counts a drop."""
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            self.dropped += 1
        else:
            self.events += 1

    def emit_violation(self, violation: "Violation") -> None:
        """Monitor listener hook: stream an assertion failure live."""
        self.emit({"event": "violation", **violation.to_dict()})

    @property
    def client_count(self) -> int:
        """Watchers connected right now."""
        with self._lock:
            return len(self._clients)

    def close(self, timeout: float = 5.0) -> None:
        """Drain the queue, hang up on clients, stop both threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # One process-metrics sample per server lifetime.
        from .metrics import record_stream_close

        record_stream_close(self)
        try:
            self._queue.put(_CLOSE, timeout=timeout)
        except queue.Full:
            pass
        self._sender_thread.join(timeout=timeout)
        self._sock.close()
        with self._lock:
            clients, self._clients = self._clients, []
        for conn in clients:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self._accept_thread.join(timeout=timeout)

    def __enter__(self) -> "StreamServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # probe interface -- same wire records as the JSONL recorder
    # ------------------------------------------------------------------
    def on_run_start(self, backend: Any) -> None:
        if self.wait_for_client > 0:
            self._have_client.wait(self.wait_for_client)
        self.emit(recorder.run_start_event(backend))

    def on_step(self, step: int) -> None:
        self.emit(recorder.step_event(step))

    def on_phase(self, at: Any) -> None:
        self.emit(recorder.phase_event(at))

    def on_bus_drive(self, at: Any, bus: str, value: int) -> None:
        self.emit(recorder.bus_event(at, bus, value))

    def on_register_latch(self, at: Any, register: str, value: int) -> None:
        self.emit(recorder.latch_event(at, register, value))

    def on_conflict(self, event: Any) -> None:
        self.emit(recorder.conflict_event(event))

    def on_run_end(self, backend: Any, wall: float) -> None:
        self.emit(recorder.run_end_event(backend, wall))


# ----------------------------------------------------------------------
# the watch client
# ----------------------------------------------------------------------
def parse_endpoint(text: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` endpoint (host defaults to localhost)."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad endpoint {text!r} (expected HOST:PORT)") from None
    if not (0 < port < 65536):
        raise ValueError(f"bad port {port} in endpoint {text!r}")
    return host, port


def format_event(event: dict) -> str:
    """One human-readable line per wire record (the watch pretty-printer)."""
    kind = event.get("event", "?")
    cs, ph = event.get("cs"), event.get("ph")
    where = f"cs{cs}.{ph}" if cs is not None and ph is not None else "--"
    if kind == "run_start":
        return (
            f"run_start  model={event.get('model')} backend={event.get('backend')} "
            f"cs_max={event.get('cs_max')}"
        )
    if kind == "step":
        return f"step       cs{cs}"
    if kind == "phase":
        return f"phase      {where}"
    if kind == "bus":
        return f"bus        {where} {event.get('signal')} = {event.get('value')}"
    if kind == "latch":
        return f"latch      {where} {event.get('register')} = {event.get('value')}"
    if kind == "conflict":
        drivers = ", ".join(f"{o}={v}" for o, v in event.get("drivers", []))
        return f"CONFLICT   {where} {event.get('signal')} (drivers: {drivers})"
    if kind == "violation":
        return (
            f"VIOLATION  {where} [{event.get('property')}] "
            f"{event.get('signal') or ''} {event.get('message')}".rstrip()
        )
    if kind == "run_end":
        return (
            f"run_end    clean={event.get('clean')} "
            f"wall={event.get('wall', 0.0):.4f}s"
        )
    return f"{kind}  {json.dumps(event, separators=(',', ':'))}"


def watch_stream(
    host: str,
    port: int,
    out: IO[str],
    raw: bool = False,
    max_events: Optional[int] = None,
    timeout: Optional[float] = None,
    on_event: Optional[Callable[[dict], None]] = None,
) -> int:
    """Tail a :class:`StreamServer` until EOF (or ``max_events``).

    Prints one line per event (raw NDJSON with ``raw=True``) and
    returns the number of events received.  ``timeout`` bounds both the
    connect and each read; ``on_event`` sees every decoded record
    (used by tests and embedders)."""
    seen = 0
    with socket.create_connection((host, port), timeout=timeout) as conn:
        if timeout is not None:
            conn.settimeout(timeout)
        buffer = b""
        while max_events is None or seen < max_events:
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                seen += 1
                if on_event is not None:
                    on_event(event)
                out.write((line.decode("utf-8") if raw else format_event(event)) + "\n")
                if max_events is not None and seen >= max_events:
                    break
    return seen
