"""Hierarchical span tracing as a probe, exported as Chrome trace JSON.

:class:`SpanTracer` turns one run into a tree of wall-clock spans --
``run`` wrapping per-control-step ``cs<N>`` spans wrapping per-phase
``ra``/``rb``/``cm``/``wa``/``wb``/``cr`` spans -- plus the
elaboration-side spans the CLI opens around it (``elaborate``, with
the plan resolution synthesized underneath from the backend's
``plan_build_ms``) and, for sharded runs, one worker span per shard
re-parented onto its own track by the coordinator (workers are
separate processes; their wall comes back through the barrier
metrics, so the coordinator re-emits it into the one trace file).

Spans share the :class:`~repro.observe.profiler.Profiler`'s clock
(``time.perf_counter``) and are cut at exactly the same probe
boundaries, so the sum of a run's phase spans reconciles with the
profiler's per-phase wall totals (tested in
``tests/observe/test_trace_spans.py``).

The output is the Chrome trace-event format (``"traceEvents"`` with
complete ``ph="X"`` events; timestamps and durations in microseconds)
-- load the file in Perfetto (ui.perfetto.dev) or ``chrome://tracing``.
Like every probe, the tracer costs nothing when not attached, and the
per-cycle cost when attached is one ``perf_counter`` call plus one
list append (measured by the E6 overhead benchmark next to the
profiler's).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..core.phases import Phase
from .probe import Probe

__all__ = ["RequestContext", "SpanTracer", "new_trace_id"]

#: Track ids: the coordinator's spans live on tid 0; shard K's
#: synthesized worker span lives on tid K + 1.
MAIN_TID = 0


def new_trace_id() -> str:
    """A 16-hex-char random trace id for one service request."""
    return os.urandom(8).hex()


class SpanTracer(Probe):
    """Collects hierarchical wall-clock spans for one process."""

    def __init__(self) -> None:
        #: Clock origin: every span timestamp is relative to this.
        self.t0 = time.perf_counter()
        #: Completed spans as Chrome trace events (``ph="X"``).
        self.spans: List[Dict[str, Any]] = []
        #: Explicit track names (tid -> label) set via
        #: :meth:`alloc_track`; tids without a label keep the
        #: main/shard naming convention in :meth:`_metadata`.
        self.track_labels: Dict[int, str] = {}
        self._next_tid = 1
        self._run_start: Optional[float] = None
        self._step_open: Optional[tuple] = None  # (step, start)
        self._phase_open: Optional[tuple] = None  # (StepPhase, start)
        self._elaborate_span: Optional[Dict[str, Any]] = None

    def alloc_track(self, label: str) -> int:
        """Reserve a named track (Chrome tid) for a span source.

        The service uses one track per connection and one per batching
        lane so overlapping request spans render side by side instead
        of stacking on tid 0."""
        tid = self._next_tid
        self._next_tid += 1
        self.track_labels[tid] = label
        return tid

    # ------------------------------------------------------------------
    # span plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter()

    def _us(self, t: float) -> float:
        return (t - self.t0) * 1e6

    def add_span(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        *,
        dur: Optional[float] = None,
        tid: int = MAIN_TID,
        cat: str = "repro",
        args: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Record one complete span.

        ``start``/``end`` are ``perf_counter`` readings on this
        tracer's clock; ``dur`` (seconds) may replace ``end`` for
        spans whose duration was measured elsewhere (plan build,
        shard worker walls)."""
        if dur is None:
            dur = (end if end is not None else self._now()) - start
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": self._us(start),
            "dur": max(dur, 0.0) * 1e6,
            "pid": 0,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.spans.append(event)
        return event

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "repro",
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        """Bracket a code region as a span (e.g. elaboration)."""
        start = self._now()
        try:
            yield
        finally:
            event = self.add_span(
                name, start, self._now(), cat=cat, args=args
            )
            if name == "elaborate":
                self._elaborate_span = event

    # ------------------------------------------------------------------
    # Probe interface (the run-side hierarchy)
    # ------------------------------------------------------------------
    def on_run_start(self, backend: Any) -> None:
        self._run_start = self._now()
        self._step_open = None
        self._phase_open = None

    def on_phase(self, at) -> None:
        now = self._now()
        if self._phase_open is not None:
            prev, start = self._phase_open
            self.add_span(
                prev.phase.vhdl_name, start, now,
                cat="phase", args={"cs": prev.step},
            )
        if at.phase is Phase.RA:
            if self._step_open is not None:
                step, start = self._step_open
                self.add_span(f"cs{step}", start, now, cat="step")
            self._step_open = (at.step, now)
        self._phase_open = (at, now)

    def on_run_end(self, backend: Any, wall: float) -> None:
        now = self._now()
        if self._phase_open is not None:
            prev, start = self._phase_open
            self.add_span(
                prev.phase.vhdl_name, start, now,
                cat="phase", args={"cs": prev.step},
            )
            self._phase_open = None
        if self._step_open is not None:
            step, start = self._step_open
            self.add_span(f"cs{step}", start, now, cat="step")
            self._step_open = None
        name = getattr(backend, "backend_name", type(backend).__name__)
        start = self._run_start if self._run_start is not None else now - wall
        self.add_span("run", start, now, args={"backend": name})
        self._run_start = None

    # ------------------------------------------------------------------
    # coordinator-side synthesis
    # ------------------------------------------------------------------
    def annotate_backend(self, backend: Any) -> None:
        """Synthesize spans only the backend knows about.

        * plan resolution: ``plan_build_ms`` happened inside
          elaboration; re-emit it as a child at the elaborate span's
          start (or the clock origin when elaboration was not
          bracketed), named after the cache verdict;
        * sharded workers: each worker's execution wall (from the
          barrier metrics) becomes one span on its own track,
          re-parented under the coordinator's run span.
        """
        state = getattr(backend, "plan_cache_state", None)
        if state is not None:
            if self._elaborate_span is not None:
                plan_ts = self._elaborate_span["ts"]
            else:
                plan_ts = 0.0
            build_ms = getattr(backend, "plan_build_ms", 0.0)
            event = {
                "name": f"plan:{state}",
                "cat": "plan",
                "ph": "X",
                "ts": plan_ts,
                "dur": build_ms * 1e3,
                "pid": 0,
                "tid": MAIN_TID,
            }
            plan = getattr(backend, "model_plan", None)
            if plan is not None:
                event["args"] = {"digest": plan.digest[:16]}
            self.spans.append(event)
        run_span = next(
            (s for s in reversed(self.spans) if s["name"] == "run"), None
        )
        run_ts = run_span["ts"] if run_span is not None else 0.0
        for row in getattr(backend, "shard_metrics", None) or ():
            self.spans.append({
                "name": f"shard{int(row['shard'])}:execute",
                "cat": "shard",
                "ph": "X",
                "ts": run_ts,
                "dur": row["worker_wall"] * 1e6,
                "pid": 0,
                "tid": int(row["shard"]) + 1,
                "args": {
                    "syncs": row["syncs"],
                    "bytes_to_worker": row["bytes_to_worker"],
                    "bytes_from_worker": row["bytes_from_worker"],
                },
            })

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _metadata(self) -> List[Dict[str, Any]]:
        tids = sorted({span["tid"] for span in self.spans})
        events: List[Dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": MAIN_TID,
            "args": {"name": "repro"},
        }]
        for tid in tids:
            label = self.track_labels.get(tid) or (
                "main" if tid == MAIN_TID else f"shard {tid - 1} worker"
            )
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": label},
            })
        return events

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object."""
        ordered = sorted(self.spans, key=lambda s: (s["tid"], s["ts"]))
        return {
            "traceEvents": self._metadata() + ordered,
            "displayTimeUnit": "ms",
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    # ------------------------------------------------------------------
    # reconciliation helpers (tested against the Profiler)
    # ------------------------------------------------------------------
    def phase_wall(self) -> Dict[str, float]:
        """Per-phase summed span seconds (the Profiler's quantity)."""
        totals: Dict[str, float] = {}
        names = {phase.vhdl_name for phase in Phase}
        for span in self.spans:
            if span.get("cat") == "phase" and span["name"] in names:
                totals[span["name"]] = (
                    totals.get(span["name"], 0.0) + span["dur"] / 1e6
                )
        return totals

    def run_wall(self) -> float:
        """Summed seconds of the ``run`` spans."""
        return sum(
            span["dur"] / 1e6
            for span in self.spans
            if span["name"] == "run"
        )


class RequestContext:
    """Trace id + span plumbing for one service request.

    Minted by the server at HTTP/WebSocket accept and threaded through
    the batching scheduler, so every stage of a request's life --
    accept, parse, queue, coalesce, sweep, serialize -- lands in *one*
    :class:`SpanTracer` under one ``trace`` id (the Chrome trace's
    ``args.trace``).  ``tracer=None`` makes every method a no-op, so
    the context can be threaded unconditionally while tracing stays
    structurally free when disabled.
    """

    __slots__ = ("trace_id", "tracer", "tid", "op")

    def __init__(
        self,
        trace_id: str,
        tracer: Optional[SpanTracer] = None,
        tid: int = MAIN_TID,
        op: str = "",
    ) -> None:
        self.trace_id = trace_id
        self.tracer = tracer
        self.tid = tid
        self.op = op

    def add_span(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
        tid: Optional[int] = None,
    ) -> Optional[Dict[str, Any]]:
        """One complete request-stage span tagged with the trace id."""
        if self.tracer is None:
            return None
        merged: Dict[str, Any] = {"trace": self.trace_id}
        if self.op:
            merged["op"] = self.op
        if args:
            merged.update(args)
        return self.tracer.add_span(
            name, start, end,
            tid=self.tid if tid is None else tid,
            cat="serve", args=merged,
        )

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Bracket one request stage (no-op without a tracer)."""
        if self.tracer is None:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_span(name, start, time.perf_counter(), args=args or None)
