"""VCD waveform export and a small reader for round-trip checks.

The abstract RT level indexes waveforms by ``(control step, phase)``;
the VCD mapping (shared with :meth:`repro.core.trace.TraceLog.write_vcd`)
lays those out on a synthetic timescale of **one tick per phase**::

    tick = (step - 1) * 6 + int(phase)        # cs1.ra -> #0, cs1.rb -> #1 ...

and maps the subset's special values onto their std-logic analogues:
DISC becomes ``z`` (high impedance -- nothing drives the bus) and
ILLEGAL becomes ``x`` (conflict), so any run opens in GTKWave with
conflicts showing as the familiar red ``x`` regions.

:func:`export_vcd` writes the waveform of any traced backend;
:func:`parse_vcd` reads a VCD file back into per-signal change lists
(value-change-dump semantics: one entry per effective change), which
the round-trip tests compare against the original trace.
"""

from __future__ import annotations

from io import StringIO
from typing import IO, Any, Dict, List, Tuple, Union

from ..core.phases import PHASES_PER_STEP
from ..core.trace import TraceLog
from ..core.values import DISC, ILLEGAL


class VCDError(ValueError):
    """Raised for malformed VCD input or untraced sources."""


def export_vcd(
    source: Union[TraceLog, Any],
    out: Union[str, IO[str]],
    design_name: str = "rt_model",
) -> None:
    """Write ``source``'s waveform as VCD.

    ``source`` is a :class:`~repro.core.trace.TraceLog` or any backend
    exposing one as ``.tracer`` (i.e. elaborated with ``trace=True``).
    ``out`` is a path or a writable text file.
    """
    trace = source if isinstance(source, TraceLog) else getattr(
        source, "tracer", None
    )
    if trace is None:
        raise VCDError(
            "source has no trace; elaborate with trace=True to export VCD"
        )
    model = getattr(source, "model", None)
    if design_name == "rt_model" and getattr(model, "name", None):
        design_name = model.name
    if hasattr(out, "write"):
        trace.write_vcd(out, design_name=design_name)  # type: ignore[arg-type]
    else:
        with open(out, "w", encoding="utf-8") as handle:
            trace.write_vcd(handle, design_name=design_name)


def step_phase_tick(step: int, phase: int) -> int:
    """The VCD tick of a ``(step, phase)`` point (cs1.ra -> 0)."""
    return max((step - 1) * PHASES_PER_STEP + phase, 0)


class VCDWave:
    """Parsed VCD contents: declared variables plus their change lists."""

    def __init__(self) -> None:
        self.timescale: str = ""
        self.design_name: str = ""
        #: signal name -> short identifier, in declaration order.
        self.idents: Dict[str, str] = {}
        #: signal name -> [(tick, value)] with DISC/ILLEGAL decoded.
        self.changes: Dict[str, List[Tuple[int, int]]] = {}
        #: signals valued inside a ``$dumpvars`` block -- i.e. wires
        #: whose tick-0 state the file states explicitly.  Everything
        #: else is VCD-uninitialized and reads ``x`` before its first
        #: change (see :meth:`value_at`).
        self.initialized: set = set()

    @property
    def signals(self) -> List[str]:
        return list(self.idents)

    def history(self, name: str) -> List[Tuple[int, int]]:
        """The (tick, value) change sequence of one signal."""
        try:
            return self.changes[name]
        except KeyError:
            raise KeyError(f"unknown VCD signal {name!r}") from None

    def value_at(self, name: str, tick: int) -> int:
        """The signal's value in force at ``tick``.

        Before a signal's first recorded change it is *uninitialized*,
        which four-state VCD semantics render as ``x`` (ILLEGAL) -- a
        deliberately different answer from an explicit ``z`` dump.
        Our own exporter opens with a ``$dumpvars`` block valuing every
        watched signal at tick 0 (DISC wires as ``bz``), so the
        x-vs-uninitialized distinction survives a round trip: only a
        wire the file never values reads ILLEGAL here.
        """
        history = self.history(name)
        if not history or tick < history[0][0]:
            return ILLEGAL
        value = history[0][1]
        for when, new in history:
            if when > tick:
                break
            value = new
        return value


def _decode_vcd_value(text: str) -> int:
    body = text.lower()
    if body in ("z", "bz"):
        return DISC
    if body in ("x", "bx"):
        return ILLEGAL
    if body.startswith("b"):
        body = body[1:]
    if not body or set(body) - {"0", "1"}:
        raise VCDError(f"unparseable VCD value {text!r}")
    return int(body, 2)


def parse_vcd(source: Union[str, IO[str]]) -> VCDWave:
    """Parse VCD text (or a readable file) into a :class:`VCDWave`.

    Understands the subset this repo emits -- header sections,
    ``$var`` declarations, ``#tick`` markers, vector (``b...``) and
    scalar value changes -- which is also the common core every VCD
    writer produces.
    """
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        text = source
    if "\n" not in text and not text.lstrip().startswith("$"):
        # A path-like string rather than VCD text.
        with open(text, encoding="utf-8") as handle:
            text = handle.read()

    wave = VCDWave()
    by_ident: Dict[str, str] = {}
    tick = 0
    in_definitions = True
    in_dumpvars = False
    tokens_iter = iter(text.split("\n"))
    for raw in tokens_iter:
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$timescale"):
                wave.timescale = " ".join(
                    line.replace("$timescale", "").replace("$end", "").split()
                )
            elif line.startswith("$scope"):
                parts = line.split()
                if len(parts) >= 3:
                    wave.design_name = parts[2]
            elif line.startswith("$var"):
                parts = line.split()
                # $var <type> <width> <ident> <name...> $end
                if len(parts) < 6 or parts[-1] != "$end":
                    raise VCDError(f"malformed $var line: {line!r}")
                ident = parts[3]
                name = " ".join(parts[4:-1])
                wave.idents[name] = ident
                wave.changes[name] = []
                by_ident[ident] = name
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("#"):
            try:
                tick = int(line[1:])
            except ValueError:
                raise VCDError(f"malformed time marker {line!r}") from None
            continue
        if line.startswith("$"):
            # The $dumpvars initialization block contains ordinary
            # value changes; remember which signals it covers.
            if line.startswith("$dumpvars"):
                in_dumpvars = True
            elif line.startswith("$end"):
                in_dumpvars = False
            continue
        if line[0] in "bB":
            try:
                value_text, ident = line.split()
            except ValueError:
                raise VCDError(f"malformed value change {line!r}") from None
        else:  # scalar: value and ident juxtaposed
            value_text, ident = line[0], line[1:].strip()
        name = by_ident.get(ident)
        if name is None:
            raise VCDError(f"value change for undeclared ident {ident!r}")
        if in_dumpvars:
            wave.initialized.add(name)
        wave.changes[name].append((tick, _decode_vcd_value(value_text)))
    return wave


def trace_to_vcd_text(trace: TraceLog, design_name: str = "rt_model") -> str:
    """Render a trace as VCD text in memory (testing convenience)."""
    out = StringIO()
    trace.write_vcd(out, design_name=design_name)
    return out.getvalue()
