"""Structured event recording and run-report aggregation.

:class:`JsonlRecorder` is a :class:`~repro.observe.probe.Probe` that
serializes the observation stream as JSON Lines -- one self-describing
object per line, with a **stable schema** (version tag on the
``run_start`` line) so logs written today remain machine-readable:

================  ====================================================
``run_start``     ``schema``, ``model``, ``backend``, ``cs_max``
``step``          ``cs``
``phase``         ``cs``, ``ph`` (vhdl name), ``t`` (seconds since start)
``bus``           ``cs``, ``ph``, ``signal``, ``value``
``latch``         ``cs``, ``ph``, ``register``, ``value``
``conflict``      ``cs``, ``ph``, ``signal``, ``drivers`` ([owner, value])
``run_end``       ``wall``, ``clean``, ``stats``, ``registers``, plus
                  ``plan_cache`` / ``plan_build_ms`` for runs through
                  the shared lowering pipeline
================  ====================================================

Values use the subset's std-logic analogues: naturals stay integers,
DISC is the string ``"z"`` and ILLEGAL the string ``"x"`` -- the same
mapping the VCD export uses, so the two artifacts read consistently.

:class:`RunReport` aggregates such a stream (live from a recorder, or
re-read from a file) into the debugging summary the model-based
diagnosis literature asks for: counters, the conflict timeline grouped
by ``(CS, PH)``, per-resource occupancy, and wall time per phase.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from ..core.values import DISC, ILLEGAL
from .probe import Probe

#: Schema version stamped on every ``run_start`` line.
SCHEMA_VERSION = 1


def encode_value(value: int) -> Union[int, str]:
    """JSON encoding of a subset value (DISC -> "z", ILLEGAL -> "x")."""
    if value == DISC:
        return "z"
    if value == ILLEGAL:
        return "x"
    return value


def decode_value(value: Union[int, str]) -> int:
    """Inverse of :func:`encode_value`."""
    if value == "z":
        return DISC
    if value == "x":
        return ILLEGAL
    return int(value)


def _backend_kind(backend: Any) -> Optional[str]:
    return getattr(backend, "backend_name", None)


def _model_name(backend: Any) -> Optional[str]:
    model = getattr(backend, "model", None)
    return getattr(model, "name", None)


# ----------------------------------------------------------------------
# event-dict builders -- the one place the wire schema is spelled out.
# JsonlRecorder writes these to files; the NDJSON stream server
# (repro.observe.stream) pushes the identical dicts over a socket.
# ----------------------------------------------------------------------
def run_start_event(backend: Any) -> dict:
    model = getattr(backend, "model", None)
    return {
        "event": "run_start",
        "schema": SCHEMA_VERSION,
        "model": _model_name(backend),
        "backend": _backend_kind(backend),
        "cs_max": getattr(model, "cs_max", None),
    }


def step_event(step: int) -> dict:
    return {"event": "step", "cs": step}


def phase_event(at: Any, t: Optional[float] = None) -> dict:
    return {
        "event": "phase",
        "cs": at.step,
        "ph": at.phase.vhdl_name,
        "t": t,
    }


def bus_event(at: Any, bus: str, value: int) -> dict:
    return {
        "event": "bus",
        "cs": at.step if at is not None else None,
        "ph": at.phase.vhdl_name if at is not None else None,
        "signal": bus,
        "value": encode_value(value),
    }


def latch_event(at: Any, register: str, value: int) -> dict:
    return {
        "event": "latch",
        "cs": at.step if at is not None else None,
        "ph": at.phase.vhdl_name if at is not None else None,
        "register": register,
        "value": encode_value(value),
    }


def conflict_event(event: Any) -> dict:
    at = event.at
    return {
        "event": "conflict",
        "cs": at.step if at is not None else None,
        "ph": at.phase.vhdl_name if at is not None else None,
        "signal": event.signal,
        "drivers": [[owner, encode_value(value)] for owner, value in event.sources],
    }


def run_end_event(backend: Any, wall: float) -> dict:
    stats = getattr(backend, "stats", None)
    record = {
        "event": "run_end",
        "wall": wall,
        "clean": bool(getattr(backend, "clean", True)),
        "stats": {
            "cycles": stats.cycles,
            "delta_cycles": stats.delta_cycles,
            "events": stats.events,
            "process_resumes": stats.process_resumes,
            "transactions": stats.transactions,
        }
        if stats is not None
        else {},
        "registers": {
            name: encode_value(value)
            for name, value in getattr(backend, "registers", {}).items()
        },
    }
    # Backends elaborated through the shared lowering pipeline carry
    # their plan-cache verdict; record it so `repro report` can render
    # it (additive -- readers of schema 1 logs ignore absent keys).
    plan_state = getattr(backend, "plan_cache_state", None)
    if plan_state is not None:
        record["plan_cache"] = plan_state
        record["plan_build_ms"] = getattr(backend, "plan_build_ms", 0.0)
    return record


class JsonlRecorder(Probe):
    """Record the probe stream as JSONL (and/or in memory).

    Parameters
    ----------
    out:
        A path or writable text file object.  None records in memory
        only (``self.events``).
    keep_events:
        Keep the event dicts in ``self.events`` as well as writing
        them.  Defaults to True when ``out`` is None, else False (a
        chip-scale sweep should not buffer its own log).
    """

    def __init__(
        self,
        out: Union[str, IO[str], None] = None,
        keep_events: Optional[bool] = None,
    ) -> None:
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        if out is None:
            pass
        elif hasattr(out, "write"):
            self._handle = out  # type: ignore[assignment]
        else:
            self._handle = open(out, "w", encoding="utf-8")
            self._owns_handle = True
        self._keep = keep_events if keep_events is not None else out is None
        self.events: List[dict] = []
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    def _emit(self, event: dict) -> None:
        if self._keep:
            self.events.append(event)
        if self._handle is not None:
            self._handle.write(json.dumps(event, separators=(",", ":")))
            self._handle.write("\n")

    def close(self) -> None:
        """Flush and close the output file (if this recorder opened it)."""
        if self._handle is not None:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Probe interface
    # ------------------------------------------------------------------
    def on_run_start(self, backend: Any) -> None:
        self._t0 = time.perf_counter()
        self._emit(run_start_event(backend))

    def on_step(self, step: int) -> None:
        self._emit(step_event(step))

    def on_phase(self, at) -> None:
        if self._t0 is None:
            self._t0 = time.perf_counter()
        self._emit(phase_event(at, time.perf_counter() - self._t0))

    def on_bus_drive(self, at, bus: str, value: int) -> None:
        self._emit(bus_event(at, bus, value))

    def on_register_latch(self, at, register: str, value: int) -> None:
        self._emit(latch_event(at, register, value))

    def on_conflict(self, event) -> None:
        self._emit(conflict_event(event))

    def on_run_end(self, backend: Any, wall: float) -> None:
        self._emit(run_end_event(backend, wall))
        self.close()


def read_events(path: Union[str, IO[str]], strict: bool = True) -> List[dict]:
    """Parse a JSONL event log back into event dicts.

    With ``strict=False`` a malformed *final* record -- the partial
    last line a killed run leaves behind -- is skipped with a warning
    instead of raising; malformed records anywhere else still raise
    (that is corruption, not truncation).  ``repro report`` and
    :meth:`RunReport.from_jsonl` use the lenient mode so a recording
    survives its producer's death.
    """
    if hasattr(path, "read"):
        lines = path.read().splitlines()  # type: ignore[union-attr]
    else:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    numbered = [
        (lineno, line.strip())
        for lineno, line in enumerate(lines, 1)
        if line.strip()
    ]
    last_lineno = numbered[-1][0] if numbered else None
    events = []
    for lineno, line in numbered:
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if not strict and lineno == last_lineno:
                warnings.warn(
                    f"skipping truncated trailing record on line {lineno} "
                    f"({exc.msg})",
                    stacklevel=2,
                )
                continue
            raise ValueError(
                f"line {lineno}: not a JSON event record ({exc.msg})"
            ) from None
        if not isinstance(event, dict) or "event" not in event:
            if not strict and lineno == last_lineno:
                warnings.warn(
                    f"skipping malformed trailing record on line {lineno} "
                    "(missing 'event' field)",
                    stacklevel=2,
                )
                continue
            raise ValueError(f"line {lineno}: missing 'event' field")
        events.append(event)
    return events


@dataclass
class RunReport:
    """Aggregated view of one observed run.

    Built from a recorded event stream; serializes with
    :meth:`to_json` (stable keys) and renders with :meth:`render`
    (the human-readable form behind ``repro report``).
    """

    model: Optional[str] = None
    backend: Optional[str] = None
    cs_max: Optional[int] = None
    schema: int = SCHEMA_VERSION
    wall: Optional[float] = None
    clean: Optional[bool] = None
    #: plan-cache verdict ("hit"/"miss"/"given") and resolution wall
    #: milliseconds, for runs through the shared lowering pipeline.
    plan_cache: Optional[str] = None
    plan_build_ms: Optional[float] = None
    stats: Dict[str, int] = field(default_factory=dict)
    registers: Dict[str, Any] = field(default_factory=dict)
    #: events per record type ("phase", "bus", "latch", ...).
    counts: Dict[str, int] = field(default_factory=dict)
    #: conflict records in observation order.
    conflicts: List[dict] = field(default_factory=list)
    #: "cs<N>.<ph>" -> conflicting signal names, in timeline order.
    conflicts_by_location: Dict[str, List[str]] = field(default_factory=dict)
    #: bus -> number of observed effective-value changes (drives).
    bus_occupancy: Dict[str, int] = field(default_factory=dict)
    #: register -> number of observed latches.
    register_activity: Dict[str, int] = field(default_factory=dict)
    #: phase vhdl name -> accumulated wall seconds spent in its cycles.
    phase_wall: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_events(cls, events: Iterable[dict]) -> "RunReport":
        report = cls()
        last_phase: Optional[str] = None
        last_t: Optional[float] = None
        for event in events:
            kind = event.get("event", "?")
            report.counts[kind] = report.counts.get(kind, 0) + 1
            if kind == "run_start":
                report.model = event.get("model")
                report.backend = event.get("backend")
                report.cs_max = event.get("cs_max")
                report.schema = event.get("schema", SCHEMA_VERSION)
            elif kind == "phase":
                t = event.get("t")
                if t is not None and last_t is not None and last_phase:
                    report.phase_wall[last_phase] = (
                        report.phase_wall.get(last_phase, 0.0) + (t - last_t)
                    )
                last_phase, last_t = event.get("ph"), t
            elif kind == "bus":
                name = event.get("signal", "?")
                report.bus_occupancy[name] = (
                    report.bus_occupancy.get(name, 0) + 1
                )
            elif kind == "latch":
                name = event.get("register", "?")
                report.register_activity[name] = (
                    report.register_activity.get(name, 0) + 1
                )
            elif kind == "conflict":
                report.conflicts.append(event)
                where = f"cs{event.get('cs')}.{event.get('ph')}"
                report.conflicts_by_location.setdefault(where, []).append(
                    event.get("signal", "?")
                )
            elif kind == "run_end":
                report.wall = event.get("wall")
                report.clean = event.get("clean")
                report.plan_cache = event.get("plan_cache")
                report.plan_build_ms = event.get("plan_build_ms")
                report.stats = dict(event.get("stats", {}))
                report.registers = dict(event.get("registers", {}))
                if report.wall is not None and last_t is not None and last_phase:
                    report.phase_wall[last_phase] = (
                        report.phase_wall.get(last_phase, 0.0)
                        + max(report.wall - last_t, 0.0)
                    )
        return report

    @classmethod
    def from_jsonl(cls, path: Union[str, IO[str]], strict: bool = False) -> "RunReport":
        return cls.from_events(read_events(path, strict=strict))

    @classmethod
    def from_recorder(cls, recorder: JsonlRecorder) -> "RunReport":
        return cls.from_events(recorder.events)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "backend": self.backend,
            "cs_max": self.cs_max,
            "schema": self.schema,
            "wall": self.wall,
            "clean": self.clean,
            "plan_cache": self.plan_cache,
            "plan_build_ms": self.plan_build_ms,
            "stats": self.stats,
            "registers": self.registers,
            "counts": self.counts,
            "conflicts": self.conflicts,
            "conflicts_by_location": self.conflicts_by_location,
            "bus_occupancy": self.bus_occupancy,
            "register_activity": self.register_activity,
            "phase_wall": self.phase_wall,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """Human-readable multi-section run report."""
        lines = []
        title = self.model or "run"
        backend = f" [{self.backend}]" if self.backend else ""
        lines.append(f"run report: {title}{backend}")
        if self.cs_max is not None:
            lines.append(f"  control steps : {self.cs_max}")
        if self.wall is not None:
            lines.append(f"  wall time     : {self.wall * 1e3:.2f} ms")
        if self.clean is not None:
            lines.append(f"  clean         : {self.clean}")
        if self.plan_cache is not None:
            build = (
                f" (build {self.plan_build_ms:.2f} ms)"
                if self.plan_build_ms is not None
                else ""
            )
            lines.append(f"  plan cache    : {self.plan_cache}{build}")
        if self.stats:
            stat_text = ", ".join(f"{k}={v}" for k, v in self.stats.items())
            lines.append(f"  stats         : {stat_text}")
        if self.counts:
            count_text = ", ".join(
                f"{k}={v}" for k, v in sorted(self.counts.items())
            )
            lines.append(f"  events        : {count_text}")
        if self.conflicts_by_location:
            lines.append(f"conflicts ({len(self.conflicts)}):")
            for where, signals in self.conflicts_by_location.items():
                lines.append(f"  {where}: {', '.join(signals)}")
        else:
            lines.append("conflicts: none observed")
        if self.phase_wall:
            total = sum(self.phase_wall.values()) or 1.0
            lines.append("wall time per phase:")
            for name, secs in self.phase_wall.items():
                lines.append(
                    f"  {name}: {secs * 1e3:8.3f} ms"
                    f"  ({100.0 * secs / total:5.1f}%)"
                )
        if self.bus_occupancy:
            lines.append("bus occupancy (effective-value changes):")
            for name, count in sorted(
                self.bus_occupancy.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"  {name}: {count}")
        if self.register_activity:
            lines.append("register latches:")
            for name, count in sorted(
                self.register_activity.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"  {name}: {count}")
        if self.registers:
            lines.append("final registers:")
            for name, value in sorted(self.registers.items()):
                lines.append(f"  {name} = {value}")
        return "\n".join(lines)
