"""Event-kernel realization of the probe stream.

:class:`KernelProbeAdapter` is to :class:`~repro.observe.probe.Probe`
what :class:`~repro.core.diagnostics.ConflictMonitor` is to
:class:`~repro.core.diagnostics.ConflictLog`: watcher callbacks record
raw signal activity as it happens (cheap, no process wakeups), and one
drain process sensitive to the phase signal stamps each cycle's
observations with the ``(CS, PH)`` in force and forwards them through
:func:`~repro.observe.emit.emit_canonical_cycle` -- the shared
canonical per-cycle order (step boundary on RA only, phase boundary,
bus drives in bus declaration order, register latches in register
declaration order) that the sharded coordinator and the compiled
executors use too.

Conflicts are *not* produced here: the simulation's own
:class:`ConflictMonitor` forwards them via its record listener, which
runs before this adapter's drain in the same cycle (monitor process is
created first), matching the compiled executor's emission order
exactly.
"""

from __future__ import annotations

from typing import Sequence

from ..core.phases import Phase, StepPhase
from ..kernel import Signal, Simulator, wait_on
from .emit import emit_canonical_cycle
from .probe import Probe


class KernelProbeAdapter:
    """Feeds a :class:`Probe` from a running kernel elaboration.

    Parameters
    ----------
    sim, cs, ph:
        The kernel simulator and the control-step/phase signals.
    buses:
        Bus signals, in model declaration order.
    reg_outs:
        ``(register name, output signal)`` pairs, in declaration order.
    probe:
        The observer to drive.
    """

    def __init__(
        self,
        sim: Simulator,
        cs: Signal,
        ph: Signal,
        buses: Sequence[Signal],
        reg_outs: Sequence[tuple[str, Signal]],
        probe: Probe,
        name: str = "probe_adapter",
    ) -> None:
        self._cs = cs
        self._ph = ph
        self._probe = probe
        self._buses = list(buses)
        self._reg_outs = list(reg_outs)
        self._changed_buses: set[str] = set()
        self._changed_regs: set[str] = set()
        for sig in self._buses:
            sig.watch(self._on_bus_event)
        for _, sig in self._reg_outs:
            sig.watch(self._on_reg_event)
        sim.add_process(name, self._process)

    def _on_bus_event(self, sig: Signal, old: int, new: int) -> None:
        self._changed_buses.add(sig.name)

    def _on_reg_event(self, sig: Signal, old: int, new: int) -> None:
        self._changed_regs.add(sig.name)

    def _process(self):
        probe = self._probe
        while True:
            yield wait_on(self._ph)
            at = StepPhase(self._cs.value, Phase(self._ph.value))
            drives = [
                (sig.name, sig.value)
                for sig in self._buses
                if sig.name in self._changed_buses
            ]
            latches = [
                (reg, sig.value)
                for reg, sig in self._reg_outs
                if sig.name in self._changed_regs
            ]
            self._changed_buses.clear()
            self._changed_regs.clear()
            emit_canonical_cycle(probe, at, drives, latches)
