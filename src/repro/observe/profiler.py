"""Per-phase wall-clock profiling as a probe.

A control step spends its six phases on very different work -- RA/RB/
WA/WB move values through transfer asserts, CM evaluates every
functional unit, CR latches registers -- so a flat wall-clock number
hides where a big model actually burns time.  :class:`Profiler`
attributes the wall-clock interval between successive phase boundaries
to the phase *whose cycle just executed*, accumulating per-phase totals
and cycle counts over the whole run.

It is an ordinary :class:`~repro.observe.probe.Probe`: attach it alone
(``elaborate(observe=Profiler())``) or alongside the JSONL recorder via
:class:`~repro.observe.probe.ProbeSet`.  Results surface through
:meth:`report`, :meth:`to_json`, and -- merged into the one comparable
metrics row -- ``run_metrics(backend, profile=profiler)``.

For chip-scale sweeps the per-cycle ``perf_counter`` pair is itself
measurable overhead, so ``Profiler(sample_every=N)`` profiles only
every N-th control step (the first, the (N+1)-th, ...): boundaries in
unsampled steps are ignored entirely, per-phase walls and cycle counts
cover only the sampled steps, and the summary records ``sample_every``
and ``sampled_steps`` so consumers can extrapolate.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional

from ..core.phases import Phase
from .probe import Probe


class Profiler(Probe):
    """Accumulates wall time and cycle counts per control-step phase."""

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        #: profile every N-th control step (1 = profile everything).
        self.sample_every = sample_every
        #: phase vhdl name -> accumulated seconds.
        self.phase_wall: Dict[str, float] = {}
        #: phase vhdl name -> executed cycles.
        self.phase_cycles: Dict[str, int] = {}
        self.wall: float = 0.0
        self.steps: int = 0
        #: control steps actually profiled (== steps when sample_every=1).
        self.sampled_steps: int = 0
        self._run_t0: Optional[float] = None
        self._last_phase: Optional[str] = None
        self._last_t: Optional[float] = None
        self._active = True

    # ------------------------------------------------------------------
    # Probe interface
    # ------------------------------------------------------------------
    def on_run_start(self, backend: Any) -> None:
        self._run_t0 = time.perf_counter()
        self._last_phase = None
        self._last_t = None
        self._active = True

    def on_step(self, step: int) -> None:
        self.steps += 1
        if self.sample_every > 1:
            self._active = (self.steps - 1) % self.sample_every == 0
            if self._active:
                self.sampled_steps += 1
            else:
                # leaving a sampled step: close its last open interval
                # at the boundary instead of spilling into skipped steps
                self._last_phase = None
                self._last_t = None
        else:
            self.sampled_steps += 1

    def on_phase(self, at) -> None:
        if not self._active:
            return
        now = time.perf_counter()
        name = at.phase.vhdl_name
        self.phase_cycles[name] = self.phase_cycles.get(name, 0) + 1
        if self._last_phase is not None and self._last_t is not None:
            self.phase_wall[self._last_phase] = (
                self.phase_wall.get(self._last_phase, 0.0)
                + (now - self._last_t)
            )
        self._last_phase = name
        self._last_t = now

    def on_run_end(self, backend: Any, wall: float) -> None:
        now = time.perf_counter()
        if self._last_phase is not None and self._last_t is not None:
            self.phase_wall[self._last_phase] = (
                self.phase_wall.get(self._last_phase, 0.0)
                + (now - self._last_t)
            )
            self._last_phase = None
        self.wall += wall

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Stable-keyed profile summary (the ``--profile-out`` JSON)."""
        ordered = [phase.vhdl_name for phase in Phase]
        return {
            "wall": self.wall,
            "steps": self.steps,
            "sample_every": self.sample_every,
            "sampled_steps": self.sampled_steps,
            "phases": {
                name: {
                    "wall": self.phase_wall.get(name, 0.0),
                    "cycles": self.phase_cycles.get(name, 0),
                }
                for name in ordered
                if name in self.phase_cycles or name in self.phase_wall
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.summary(), indent=indent)

    def report(self) -> str:
        """Human-readable per-phase profile table."""
        summary = self.summary()
        total = sum(p["wall"] for p in summary["phases"].values()) or 1.0
        sampled = (
            f" ({self.sampled_steps} sampled, every {self.sample_every})"
            if self.sample_every > 1
            else ""
        )
        lines = [
            f"profile: {self.wall * 1e3:.2f} ms wall, {self.steps} control "
            f"steps{sampled}"
        ]
        for name, row in summary["phases"].items():
            lines.append(
                f"  {name}: {row['wall'] * 1e3:8.3f} ms "
                f"({100.0 * row['wall'] / total:5.1f}%)  "
                f"{row['cycles']} cycles"
            )
        return "\n".join(lines)
