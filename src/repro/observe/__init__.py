"""`repro.observe` -- one observability surface over every backend.

The paper's localizability claim (§2.7) makes the *observation stream*
of a run -- which (control step, phase) executed, what moved over
which bus, what latched, where ILLEGAL materialized -- the primary
debugging artifact.  This package turns that stream into a uniform,
machine-readable seam across all four execution styles (event kernel,
compiled executor, clocked translation, handshake network):

* :class:`Probe` / :class:`ProbeSet` -- the callback protocol backends
  drive via the ``observe=`` elaboration hook (zero cost when absent);
* :class:`JsonlRecorder` / :class:`RunReport` -- structured JSONL event
  logs with a stable schema, aggregated into conflict timelines,
  per-resource occupancy and per-phase wall time (``repro report``);
* :func:`export_vcd` / :func:`parse_vcd` -- waveforms for GTKWave, with
  DISC as ``z`` and ILLEGAL as ``x``;
* :class:`Profiler` -- per-phase wall-clock profiling, surfaced through
  ``run_metrics(backend, profile=...)`` and ``--profile``.

Future batched/sharded backends are expected to assert parity and
performance through this same surface (see ROADMAP.md).
"""

from .attach import KernelProbeAdapter
from .probe import Probe, ProbeSet, combine_probes
from .profiler import Profiler
from .recorder import (
    SCHEMA_VERSION,
    JsonlRecorder,
    RunReport,
    decode_value,
    encode_value,
    read_events,
)
from .vcd import VCDError, VCDWave, export_vcd, parse_vcd, step_phase_tick

__all__ = [
    "KernelProbeAdapter",
    "Probe",
    "ProbeSet",
    "combine_probes",
    "Profiler",
    "JsonlRecorder",
    "RunReport",
    "SCHEMA_VERSION",
    "decode_value",
    "encode_value",
    "read_events",
    "VCDError",
    "VCDWave",
    "export_vcd",
    "parse_vcd",
    "step_phase_tick",
]
