"""`repro.observe` -- one observability surface over every backend.

The paper's localizability claim (§2.7) makes the *observation stream*
of a run -- which (control step, phase) executed, what moved over
which bus, what latched, where ILLEGAL materialized -- the primary
debugging artifact.  This package turns that stream into a uniform,
machine-readable seam across all four execution styles (event kernel,
compiled executor, clocked translation, handshake network):

* :class:`Probe` / :class:`ProbeSet` -- the callback protocol backends
  drive via the ``observe=`` elaboration hook (zero cost when absent);
* :func:`emit_canonical_cycle` -- the canonical per-cycle emission
  order, shared by every backend's probe plumbing;
* :class:`JsonlRecorder` / :class:`RunReport` -- structured JSONL event
  logs with a stable schema, aggregated into conflict timelines,
  per-resource occupancy and per-phase wall time (``repro report``);
* :class:`AssertionMonitor` + the property catalogue (:func:`never`,
  :func:`always_at`, :func:`implies_within`, :func:`stable_between`,
  ...) -- temporal assertions evaluated online over the stream, with
  per-lane verdicts on the batched backend (``--monitor`` /
  ``--assert-file``);
* :class:`StreamServer` / :func:`watch_stream` -- live NDJSON event
  streaming over a socket with bounded-queue backpressure
  (``--stream`` / ``repro watch``);
* :func:`export_vcd` / :func:`parse_vcd` -- waveforms for GTKWave, with
  DISC as ``z`` and ILLEGAL as ``x``;
* :class:`Profiler` -- per-phase wall-clock profiling with a
  ``sample_every=N`` sampling mode for chip-scale sweeps, surfaced
  through ``run_metrics(backend, profile=...)`` and ``--profile``;
* :class:`CoverageModel` / :class:`CoverageProbe` /
  :class:`CoverageReport` / :class:`CoverageDB` -- structural coverage
  over the Plan IR (transfers, (CS, PH) cells, port value classes,
  conflict pairs), backend-identical and cumulative on disk
  (``repro cover`` / ``--cover``);
* :data:`~repro.observe.metrics.REGISTRY` -- the process-wide typed
  metrics registry (counters/gauges/histograms) fed by the plan cache,
  every backend and the stream server, exported as Prometheus text or
  JSON (``repro metrics`` / ``--metrics-out``);
* :class:`SpanTracer` -- hierarchical wall-clock spans (elaborate,
  plan, run, per-step, per-phase, per-shard worker) on the Profiler's
  clock, exported as Chrome trace-event JSON (``--trace-out``).
"""

from .attach import KernelProbeAdapter
from .log import AccessLogWriter, parse_access_log, wide_event
from .coverage import (
    CoverageDB,
    CoverageError,
    CoverageModel,
    CoverageProbe,
    CoverageReport,
    as_coverage_db,
    coverage_from_trace,
    coverage_model_for,
    measure_coverage,
)
from .emit import emit_canonical_cycle
from .metrics import (
    REGISTRY,
    MetricsError,
    MetricsRegistry,
    histogram_quantile,
    parse_prometheus,
)
from .monitor import (
    AssertionMonitor,
    AssertionReport,
    MonitorError,
    Property,
    Violation,
    always_at,
    check_model,
    default_properties,
    evaluate_trace,
    implies_within,
    load_properties,
    monitored_watch_list,
    never,
    never_illegal,
    no_conflicts,
    parse_properties,
    stable_between,
    when,
)
from .probe import Probe, ProbeSet, combine_probes
from .profiler import Profiler
from .recorder import (
    SCHEMA_VERSION,
    JsonlRecorder,
    RunReport,
    decode_value,
    encode_value,
    read_events,
)
from .stream import StreamServer, format_event, parse_endpoint, watch_stream
from .trace import RequestContext, SpanTracer, new_trace_id
from .vcd import VCDError, VCDWave, export_vcd, parse_vcd, step_phase_tick

__all__ = [
    "KernelProbeAdapter",
    "CoverageDB",
    "CoverageError",
    "CoverageModel",
    "CoverageProbe",
    "CoverageReport",
    "as_coverage_db",
    "coverage_from_trace",
    "coverage_model_for",
    "measure_coverage",
    "REGISTRY",
    "MetricsError",
    "MetricsRegistry",
    "histogram_quantile",
    "parse_prometheus",
    "AccessLogWriter",
    "parse_access_log",
    "wide_event",
    "RequestContext",
    "SpanTracer",
    "new_trace_id",
    "Probe",
    "ProbeSet",
    "combine_probes",
    "emit_canonical_cycle",
    "Profiler",
    "JsonlRecorder",
    "RunReport",
    "SCHEMA_VERSION",
    "decode_value",
    "encode_value",
    "read_events",
    "AssertionMonitor",
    "AssertionReport",
    "MonitorError",
    "Property",
    "Violation",
    "always_at",
    "check_model",
    "default_properties",
    "evaluate_trace",
    "implies_within",
    "load_properties",
    "monitored_watch_list",
    "never",
    "never_illegal",
    "no_conflicts",
    "parse_properties",
    "stable_between",
    "when",
    "StreamServer",
    "format_event",
    "parse_endpoint",
    "watch_stream",
    "VCDError",
    "VCDWave",
    "export_vcd",
    "parse_vcd",
    "step_phase_tick",
]
