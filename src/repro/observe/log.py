"""Wide-event structured JSON access logs for the service plane.

One request = one JSON line carrying everything needed to explain it
after the fact: trace id, operation, design digest, queue wait, sweep
wall, batch occupancy, HTTP status and wire error code.  The writer is
**bounded and never blocking**: the request path offers events to a
:class:`~repro.observe.stream.RecordQueue` and a dedicated writer
thread drains them to disk, so a slow filesystem back-pressures into
counted drops instead of stalled responses -- the same loss-accounting
discipline the stream server and WebSocket watch fan-out use.

The same event dictionaries feed the flight recorder
(:mod:`repro.serve.flight`), so a post-mortem dump and the access log
speak one schema (documented in ``docs/serving.md``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Any, Dict, List, Mapping, Optional

from .stream import RecordQueue

__all__ = ["AccessLogWriter", "parse_access_log", "wide_event"]

#: Sentinel shutting down the writer thread.
_CLOSE = object()


def wide_event(**fields: Any) -> Dict[str, Any]:
    """One wide event: ``{"event": "access", "ts": <epoch>, ...}``.

    ``None``-valued fields are elided so every line carries only what
    the request actually knew (an admission rejection has no digest,
    a health probe no batch).
    """
    event: Dict[str, Any] = {"event": "access", "ts": round(time.time(), 6)}
    for name, value in fields.items():
        if value is not None:
            event[name] = value
    return event


class AccessLogWriter:
    """Bounded async writer: JSON lines on a dedicated thread.

    ``path`` may be ``"-"`` for stdout.  :meth:`write` never blocks;
    when the writer thread has fallen ``maxsize`` events behind, the
    event is dropped and counted (:attr:`dropped`).
    """

    def __init__(self, path: str, maxsize: int = 4096) -> None:
        self.path = path
        self._queue = RecordQueue(maxsize=maxsize)
        self._handle: Optional[IO[str]] = None
        self._owns_handle = path != "-"
        self._thread = threading.Thread(
            target=self._run, name="repro-access-log", daemon=True
        )
        self._closed = False
        self._thread.start()

    # -- producer side (the request path; never blocks) -----------------
    def write(self, event: Mapping[str, Any]) -> bool:
        """Offer one wide event; returns False when it was dropped."""
        if self._closed:
            return False
        return self._queue.offer(dict(event))

    @property
    def accepted(self) -> int:
        return self._queue.accepted

    @property
    def dropped(self) -> int:
        return self._queue.dropped

    # -- the writer thread ----------------------------------------------
    def _run(self) -> None:
        handle: IO[str]
        if self.path == "-":
            handle = sys.stdout
        else:
            handle = open(self.path, "a", encoding="utf-8")
        self._handle = handle
        try:
            while True:
                item = self._queue.get()
                if item is _CLOSE:
                    return
                handle.write(
                    json.dumps(item, separators=(",", ":"), sort_keys=False)
                )
                handle.write("\n")
                # Flush at queue-empty boundaries: cheap at load (one
                # flush per drained burst), prompt when idle.
                if not self._queue.pending():
                    handle.flush()
        finally:
            handle.flush()
            if self._owns_handle:
                handle.close()

    def close(self, timeout: float = 5.0) -> None:
        """Flush and stop the writer thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Not RecordQueue.close(): that sentinel-injection discards
        # queued records when full, but a shutdown flush must keep them.
        self._queue.put(_CLOSE)
        self._thread.join(timeout=timeout)


def parse_access_log(path: str) -> List[Dict[str, Any]]:
    """Read a wide-event access log back; raises on malformed lines."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: malformed access-log line: {exc}"
                ) from None
            if not isinstance(event, dict) or event.get("event") != "access":
                raise ValueError(
                    f"{path}:{line_no}: not a wide access event: {line[:80]}"
                )
            events.append(event)
    return events
