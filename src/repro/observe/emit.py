"""The canonical per-cycle probe emission order, in one place.

Every RT backend drives an attached :class:`~repro.observe.probe.Probe`
with the *same* ordered stream (pinned by the differential probe
tests): within one simulation cycle, conflicts are forwarded first
(through the conflict monitor's listener), then the step boundary (RA
cycles only), the phase boundary, bus drives in bus declaration order,
and register latches in register declaration order.

:func:`emit_canonical_cycle` is that contract as code.  The event
kernel's :class:`~repro.observe.attach.KernelProbeAdapter`, the
compiled executor, the batched executor (N == 1) and the sharded
coordinator's step re-serialization all call it instead of each
re-implementing the ordering; the NDJSON stream server inherits the
order for free by being an ordinary probe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Tuple

from ..core.phases import Phase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.phases import StepPhase
    from .probe import Probe


def emit_canonical_cycle(
    probe: "Probe",
    at: "StepPhase",
    bus_drives: Iterable[Tuple[str, int]],
    register_latches: Iterable[Tuple[str, int]],
) -> None:
    """Forward one cycle's observations in the canonical order.

    ``bus_drives`` and ``register_latches`` must already be in
    declaration order (the caller owns the declaration tables); this
    helper owns everything else: the step boundary fires only on RA
    cycles, the phase boundary precedes all value callbacks, and buses
    precede register latches.  Conflicts are *not* emitted here -- they
    stream through the conflict monitor's listener before the cycle is
    re-serialized, on every backend.
    """
    if at.phase is Phase.RA:
        probe.on_step(at.step)
    probe.on_phase(at)
    for bus, value in bus_drives:
        probe.on_bus_drive(at, bus, value)
    for register, value in register_latches:
        probe.on_register_latch(at, register, value)
