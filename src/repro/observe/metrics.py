"""Process-wide typed metrics registry (counters, gauges, histograms).

One :class:`MetricsRegistry` instance -- the module-level
:data:`REGISTRY` -- collects operational counters from every layer
that wants to report them: the plan cache (hits, misses, build
milliseconds), the four simulation backends (runs, control steps,
dispatches, batch lanes, shard sync traffic) and the
:class:`~repro.observe.stream.StreamServer` (clients served, events
emitted, events dropped).  The registry is the machine-facing twin of
:func:`repro.engine.run_metrics`: ``run_metrics`` renders *one run* as
a human-readable row, the registry accumulates *the process* so a
campaign sweeping hundreds of runs has one scrape surface.

Exposition formats:

* :meth:`MetricsRegistry.to_prometheus` -- the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` + samples; histograms
  expand to ``_bucket{le=...}`` / ``_sum`` / ``_count`` series);
* :meth:`MetricsRegistry.to_dict` -- the same content as JSON-ready
  dictionaries;
* :func:`parse_prometheus` -- a small parser for the text format, so
  dumps round-trip in tests and ``repro metrics FILE`` can re-render a
  scrape.

Instrumentation discipline: every hook in the engine fires **once per
run** (or once per cache resolution / server shutdown), never inside
the per-cycle loop -- the disabled-observer hot path stays
structurally free and the enabled cost is one dictionary update per
run (asserted by the E6 overhead benchmark).

All mutation is guarded by one registry lock; the stream server's
sender thread and the main thread may report concurrently.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsError",
    "histogram_quantile",
    "parse_prometheus",
    "record_backend_run",
    "record_codegen_request",
    "record_plan_resolution",
    "record_serve_batch",
    "record_serve_deadline_budget",
    "record_serve_model",
    "record_serve_rejection",
    "record_serve_request",
    "record_serve_stage",
    "record_stream_close",
    "serve_models",
    "serve_queue_depth",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for millisecond timings (the plan
#: cache reports build_ms; sub-ms lowering and multi-second cold E6
#: lowering both land inside the range).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)


class MetricsError(ValueError):
    """Raised for invalid metric names, labels or kind mismatches."""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_suffix(labelnames: Tuple[str, ...], values: Tuple[str, ...],
                  extra: Optional[Tuple[Tuple[str, str], ...]] = None) -> str:
    pairs = list(zip(labelnames, values))
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


class _Child:
    """One labelled series of a metric family."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock


class Counter(_Child):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Child):
    """A value that can go up and down."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Child):
    """Cumulative-bucket histogram of observed values."""

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self, lock: threading.Lock, buckets: Tuple[float, ...]
    ) -> None:
        super().__init__(lock)
        self.buckets = buckets
        self._counts = [0] * len(buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            # Per-bucket counts; the exposition renders the cumulative
            # `le` series Prometheus expects.
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """A named metric plus all of its labelled children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        lock: threading.Lock,
        buckets: Tuple[float, ...],
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = lock
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not labelnames:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self) -> _Child:
        if self.kind == "histogram":
            return Histogram(self._lock, self.buckets)
        return _KINDS[self.kind](self._lock)

    def labels(self, **labelvalues: str) -> Any:
        if set(labelvalues) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    # Unlabelled convenience: family acts as its only child.
    def _only(self) -> _Child:
        if self._default is None:
            raise MetricsError(
                f"metric {self.name!r} is labelled "
                f"({list(self.labelnames)}); call .labels(...) first"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self._only().set(value)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        self._only().observe(value)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        return self._only().value  # type: ignore[attr-defined]

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A named collection of typed metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        #: Bumped by reset(); lets hot callers memoize labelled children
        #: safely (a stale memo entry would resurrect dropped families).
        self.generation = 0

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def _declare(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Iterable[str],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not _LABEL_RE.match(label):
                raise MetricsError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != names:
                    raise MetricsError(
                        f"metric {name!r} already declared as "
                        f"{family.kind} with labels "
                        f"{list(family.labelnames)}"
                    )
                return family
            family = _Family(
                name, help_text, kind, names, threading.Lock(), buckets
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "",
        labelnames: Iterable[str] = (),
    ) -> _Family:
        """Declare (or fetch) a counter family."""
        return self._declare(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str = "",
        labelnames: Iterable[str] = (),
    ) -> _Family:
        """Declare (or fetch) a gauge family."""
        return self._declare(name, help_text, "gauge", labelnames)

    def histogram(
        self, name: str, help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> _Family:
        """Declare (or fetch) a histogram family."""
        return self._declare(
            name, help_text, "histogram", labelnames, buckets
        )

    def reset(self) -> None:
        """Drop every family (tests; a fresh process-equivalent state)."""
        with self._lock:
            self._families.clear()
            self.generation += 1

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render as the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.append(
                f"# HELP {family.name} {_escape_help(family.help)}"
            )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                suffix = _label_suffix(family.labelnames, key)
                if isinstance(child, Histogram):
                    counts, total, count = child.snapshot()
                    running = 0
                    for bound, in_bucket in zip(child.buckets, counts):
                        running += in_bucket
                        le = _label_suffix(
                            family.labelnames, key,
                            extra=(("le", _format_value(bound)),),
                        )
                        lines.append(
                            f"{family.name}_bucket{le} {running}"
                        )
                    inf = _label_suffix(
                        family.labelnames, key, extra=(("le", "+Inf"),)
                    )
                    lines.append(f"{family.name}_bucket{inf} {count}")
                    lines.append(
                        f"{family.name}_sum{suffix} {_format_value(total)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {count}")
                else:
                    lines.append(
                        f"{family.name}{suffix} "
                        f"{_format_value(child.value)}"  # type: ignore[attr-defined]
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Any]:
        """Render as JSON-ready dictionaries (one entry per family)."""
        out: Dict[str, Any] = {}
        for family in self.families():
            samples: List[Dict[str, Any]] = []
            for key, child in family.children():
                labels = dict(zip(family.labelnames, key))
                if isinstance(child, Histogram):
                    counts, total, count = child.snapshot()
                    samples.append({
                        "labels": labels,
                        "buckets": {
                            _format_value(bound): running
                            for bound, running in zip(
                                child.buckets,
                                _cumulative(counts),
                            )
                        },
                        "sum": total,
                        "count": count,
                    })
                else:
                    samples.append({
                        "labels": labels,
                        "value": child.value,  # type: ignore[attr-defined]
                    })
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _cumulative(counts: List[int]) -> List[int]:
    out: List[int] = []
    running = 0
    for c in counts:
        running += c
        out.append(running)
    return out


#: The process-wide registry every engine hook reports into.
REGISTRY = MetricsRegistry()


# ----------------------------------------------------------------------
# parsing (round-trips the text exposition format)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def _unescape_label(value: str) -> str:
    return (
        value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    )


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse Prometheus text exposition back into dictionaries.

    Returns ``{metric_name: {"type": kind_or_None, "help": str,
    "samples": [{"labels": {...}, "value": float}, ...]}}`` where
    histogram series appear under their expanded sample names
    (``*_bucket`` / ``*_sum`` / ``*_count``), exactly as exposed.
    Raises :class:`MetricsError` on malformed lines, so a test that
    parses :meth:`MetricsRegistry.to_prometheus` output validates the
    format end to end.
    """
    metrics: Dict[str, Any] = {}
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            if name in helps:
                # Exposition hygiene: HELP/TYPE belong to the family,
                # exactly once, no matter how many label sets it has.
                raise MetricsError(
                    f"line {line_no}: duplicate # HELP for {name!r}"
                )
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in _KINDS:
                raise MetricsError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            if name in types:
                raise MetricsError(
                    f"line {line_no}: duplicate # TYPE for {name!r}"
                )
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise MetricsError(f"line {line_no}: malformed sample {raw!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        label_body = match.group("labels")
        if label_body:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_body):
                labels[pair.group(1)] = _unescape_label(pair.group(2))
                consumed += 1
            if consumed == 0:
                raise MetricsError(
                    f"line {line_no}: malformed labels {label_body!r}"
                )
        try:
            value = _parse_number(match.group("value"))
        except ValueError:
            raise MetricsError(
                f"line {line_no}: malformed value "
                f"{match.group('value')!r}"
            ) from None
        entry = metrics.setdefault(
            name, {"type": None, "help": "", "samples": []}
        )
        entry["samples"].append({"labels": labels, "value": value})
    for name, entry in metrics.items():
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and types.get(trimmed) == "histogram":
                base = trimmed
                break
        entry["type"] = types.get(name, types.get(base))
        entry["help"] = helps.get(name, helps.get(base, ""))
    return metrics


def histogram_quantile(
    buckets: Mapping[float, float], quantile: float
) -> float:
    """Upper-bound quantile estimate from cumulative ``le`` buckets.

    ``buckets`` maps bucket upper bounds (including ``inf`` for the
    ``+Inf`` series) to cumulative counts -- the shape a scraped
    ``*_bucket`` family parses into.  Returns the smallest bound whose
    cumulative count covers the quantile; a quantile landing in the
    ``+Inf`` bucket reports the largest finite bound (the estimate is
    then a floor, which is the honest direction for a tail latency).
    """
    if not 0.0 <= quantile <= 1.0:
        raise MetricsError(f"quantile must be in [0, 1], got {quantile}")
    items = sorted(buckets.items())
    if not items:
        return 0.0
    total = items[-1][1]
    if total <= 0:
        return 0.0
    target = quantile * total
    finite = [bound for bound, _ in items if bound != float("inf")]
    for bound, cumulative in items:
        if cumulative >= target:
            if bound == float("inf"):
                break
            return bound
    return finite[-1] if finite else float("inf")


# ----------------------------------------------------------------------
# engine hooks (each fires once per run / resolution / shutdown)
# ----------------------------------------------------------------------
def record_plan_resolution(source: str, build_ms: float) -> None:
    """Report one :func:`repro.engine.plan.resolve_plan` outcome."""
    REGISTRY.counter(
        "repro_plan_requests_total",
        "Plan resolutions by outcome (hit/miss/off/given).",
        ("source",),
    ).labels(source=source).inc()
    REGISTRY.histogram(
        "repro_plan_build_ms",
        "Wall milliseconds spent resolving a Plan (digest + lower or "
        "unpickle).",
    ).observe(build_ms)


def record_codegen_request(source: str, build_ms: float) -> None:
    """Report one :func:`repro.engine.codegen.resolve_codegen` outcome."""
    REGISTRY.counter(
        "repro_codegen_requests_total",
        "Codegen artifact resolutions by outcome (hit/miss/off).",
        ("source",),
    ).labels(source=source).inc()
    REGISTRY.histogram(
        "repro_codegen_build_ms",
        "Wall milliseconds spent resolving a generated executor "
        "(artifact load or generate + compile + exec).",
    ).observe(build_ms)


#: Per-backend memo of the three per-run labelled children, keyed by
#: backend name and guarded by the registry generation -- declaring a
#: family and resolving its labels costs regex validation and locking
#: that would otherwise dominate sub-100us simulation runs.
_RUN_SERIES: Dict[str, Tuple[int, Any, Any, Any]] = {}


def record_backend_run(backend: Any) -> None:
    """Report one completed backend run (called at the end of run())."""
    name = getattr(backend, "backend_name", type(backend).__name__)
    cached = _RUN_SERIES.get(name)
    if cached is None or cached[0] != REGISTRY.generation:
        runs = REGISTRY.counter(
            "repro_runs_total",
            "Completed simulation runs by backend.",
            ("backend",),
        ).labels(backend=name)
        steps_series = REGISTRY.counter(
            "repro_steps_total",
            "Control steps executed by backend.",
            ("backend",),
        ).labels(backend=name)
        dispatches = REGISTRY.counter(
            "repro_dispatches_total",
            "Process dispatches (kernel resumes / compiled cycle "
            "dispatches) by backend.",
            ("backend",),
        ).labels(backend=name)
        cached = (REGISTRY.generation, runs, steps_series, dispatches)
        _RUN_SERIES[name] = cached
    _gen, runs, steps_series, dispatches = cached
    runs.inc()
    model = getattr(backend, "model", None)
    steps = getattr(model, "cs_max", 0)
    if steps:
        steps_series.inc(steps)
    stats = getattr(backend, "stats", None)
    if stats is not None:
        dispatches.inc(stats.process_resumes)
    batch_size = getattr(backend, "batch_size", None)
    if batch_size is not None:
        REGISTRY.counter(
            "repro_lanes_total",
            "Input vectors swept by batched runs.",
        ).inc(batch_size)
    shard_metrics = getattr(backend, "shard_metrics", None)
    if shard_metrics:
        REGISTRY.counter(
            "repro_shard_syncs_total",
            "Control-step barriers completed, summed over shards.",
        ).inc(sum(m["syncs"] for m in shard_metrics))
        REGISTRY.counter(
            "repro_shard_sync_bytes_total",
            "Bytes exchanged over worker pipes at step barriers.",
        ).inc(sum(
            m["bytes_to_worker"] + m["bytes_from_worker"]
            for m in shard_metrics
        ))
        REGISTRY.gauge(
            "repro_shards",
            "Worker-process count of the most recent sharded run.",
        ).set(len(shard_metrics))


# ----------------------------------------------------------------------
# serve hooks (the simulation service; see repro.serve)
# ----------------------------------------------------------------------
#: Batch-occupancy buckets: lanes coalesced per sweep.
_BATCH_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)

#: Memo of labelled serve series, keyed like :data:`_RUN_SERIES` --
#: these hooks fire on every request of a server pushing thousands of
#: requests per second, so family declaration (regex + registry lock)
#: must not sit on the hot path.
_SERVE_SERIES: Dict[Tuple[str, ...], Tuple[int, Any]] = {}


def _serve_series(key: Tuple[str, ...], build) -> Any:
    cached = _SERVE_SERIES.get(key)
    if cached is None or cached[0] != REGISTRY.generation:
        cached = (REGISTRY.generation, build())
        _SERVE_SERIES[key] = cached
    return cached[1]


def record_serve_request(op: str, code: str, latency_ms: float) -> None:
    """Report one completed service request (op: simulate/verify/submit;
    code: ``ok`` or the :data:`repro.serve.protocol.ERROR_STATUS` key)."""
    _serve_series(("requests", op, code), lambda: REGISTRY.counter(
        "repro_serve_requests_total",
        "Service requests by operation and outcome code.",
        ("op", "code"),
    ).labels(op=op, code=code)).inc()
    _serve_series(("latency", op), lambda: REGISTRY.histogram(
        "repro_serve_request_ms",
        "End-to-end request latency (parse + queue + sweep + encode).",
        ("op",),
    ).labels(op=op)).observe(latency_ms)


def record_serve_batch(lanes: int, sweep_ms: float) -> None:
    """Report one coalesced plane sweep (lanes = batch occupancy)."""
    _serve_series(("sweeps",), lambda: REGISTRY.counter(
        "repro_serve_sweeps_total",
        "Coalesced plane sweeps executed by the batching scheduler.",
    )).inc()
    _serve_series(("lanes",), lambda: REGISTRY.histogram(
        "repro_serve_batch_lanes",
        "Lanes (concurrent requests) coalesced per sweep.",
        buckets=_BATCH_BUCKETS,
    )).observe(lanes)
    _serve_series(("sweep_ms",), lambda: REGISTRY.histogram(
        "repro_serve_sweep_ms",
        "Wall milliseconds per coalesced sweep (executor side).",
    )).observe(sweep_ms)


#: Deadline-budget buckets: the SLO-facing fraction of a request's own
#: ``deadline_ms`` consumed by the time it resolved (>1 = blown).
_BUDGET_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.5, 2.0, 5.0,
)


def record_serve_stage(stage: str, ms: float) -> None:
    """Report one per-stage request latency (parse/queue/serialize --
    the sweep stage has its own ``repro_serve_sweep_ms`` family)."""
    _serve_series(("stage", stage), lambda: REGISTRY.histogram(
        "repro_serve_stage_ms",
        "Per-stage request latency: parse (decode + validate), queue "
        "(enqueue to sweep dispatch), serialize (encode + write).",
        ("stage",),
    ).labels(stage=stage)).observe(ms)


def record_serve_deadline_budget(fraction: float) -> None:
    """Report the deadline-budget fraction one request consumed."""
    _serve_series(("budget",), lambda: REGISTRY.histogram(
        "repro_serve_deadline_budget_consumed",
        "Fraction of a request's deadline_ms consumed when it "
        "resolved; above 1.0 the deadline was blown.",
        buckets=_BUDGET_BUCKETS,
    )).observe(fraction)


def record_serve_rejection(reason: str) -> None:
    """Report one rejected/expired request (queue_full/closing/deadline)."""
    _serve_series(("rejections", reason), lambda: REGISTRY.counter(
        "repro_serve_rejections_total",
        "Requests rejected by admission control or expired deadlines.",
        ("reason",),
    ).labels(reason=reason)).inc()


def record_serve_model(cached: bool) -> None:
    """Report one model submission (cached = digest already resident)."""
    outcome = "hit" if cached else "miss"
    _serve_series(("models", outcome), lambda: REGISTRY.counter(
        "repro_serve_models_total",
        "Model submissions by cache outcome.",
        ("outcome",),
    ).labels(outcome=outcome)).inc()


def serve_queue_depth() -> Any:
    """The admitted-but-unswept request gauge (set by the scheduler)."""
    return _serve_series(("queue_depth",), lambda: REGISTRY.gauge(
        "repro_serve_queue_depth",
        "Requests admitted and waiting for (or riding) a sweep.",
    ))


def serve_models() -> Any:
    """The resident compiled-model count gauge (set by the server)."""
    return _serve_series(("resident",), lambda: REGISTRY.gauge(
        "repro_serve_models",
        "Designs resident in the in-process compiled-model cache.",
    ))


def record_stream_close(server: Any) -> None:
    """Report a StreamServer's delivery counters at shutdown."""
    REGISTRY.counter(
        "repro_stream_clients_total",
        "Watcher connections accepted by stream servers.",
    ).inc(getattr(server, "clients_total", 0))
    REGISTRY.counter(
        "repro_stream_events_total",
        "Events fanned out to stream watchers.",
    ).inc(getattr(server, "events", 0))
    REGISTRY.counter(
        "repro_stream_dropped_total",
        "Events dropped by the bounded stream queue (backpressure).",
    ).inc(getattr(server, "dropped", 0))
