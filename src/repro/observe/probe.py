"""The probe protocol: callbacks at the observable seams of a run.

The paper's central practical claim (§2.7) is *localizability*: design
errors surface as ILLEGAL values "in specific simulation cycles
associated with a specific phase of a specific control step".  A
:class:`Probe` receives exactly those observable moments -- control-step
and phase boundaries, register latches, bus drives, conflict events --
no matter which engine executes the model, so one observer works
unchanged across the event kernel, the compiled executor, the clocked
translation and the handshake style.

Design rules:

* **Zero-cost when absent.**  Backends take ``observe=None`` and guard
  every hook with ``if probe is not None``; no watcher process, no
  callback, no timestamp is installed on the disabled path (the E6
  benchmark asserts < 5% overhead).
* **Deterministic order.**  Within one simulation cycle the emission
  order is fixed -- conflicts recorded by the monitor, then the step
  boundary (RA only), the phase boundary, bus drives in bus declaration
  order, register latches in register declaration order.  The
  differential test pins that the *same probe* attached to the event
  and compiled backends sees identical ordered sequences.
* **Attribution matches the trace.**  A value driven during cycle *k*
  becomes effective in cycle *k + 1* (the kernel's driver pipeline);
  probes observe effective-value changes, stamped with the ``(CS, PH)``
  in force when the change landed -- the same attribution the tracer
  and the conflict monitor use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.diagnostics import ConflictEvent
    from ..core.phases import StepPhase


class Probe:
    """Base class / protocol for run observers.

    Every callback is a no-op here; subclass and override what you
    need.  Backends call these in a fixed per-cycle order (see the
    module docstring); ``on_run_start``/``on_run_end`` bracket the
    whole run and receive the backend object itself, so observers can
    snapshot final registers, stats and cleanliness without holding a
    separate reference.
    """

    def on_run_start(self, backend: Any) -> None:
        """The backend is about to execute (``run()`` entry)."""

    def on_step(self, step: int) -> None:
        """A control-step boundary: CS just became ``step``."""

    def on_phase(self, at: "StepPhase") -> None:
        """A phase boundary: the cycle at ``at`` is executing."""

    def on_bus_drive(self, at: "StepPhase | None", bus: str, value: int) -> None:
        """The effective value of ``bus`` changed to ``value`` at ``at``.

        ``at`` is None for styles without control-step time (the
        handshake network reports sink tokens through this hook).
        """

    def on_register_latch(
        self, at: "StepPhase | None", register: str, value: int
    ) -> None:
        """``register``'s output port took ``value`` at ``at``."""

    def on_conflict(self, event: "ConflictEvent") -> None:
        """A resolved signal materialized ILLEGAL (see the event's
        ``(CS, PH)`` location and colliding drivers)."""

    def on_run_end(self, backend: Any, wall: float) -> None:
        """The run finished; ``wall`` is its wall-clock seconds."""


class ProbeSet(Probe):
    """Fan one observation stream out to several probes, in order.

    ``ProbeSet(recorder, profiler)`` lets the CLI attach the JSONL
    recorder and the per-phase profiler in one pass without the
    backends knowing how many observers exist.
    """

    def __init__(self, *probes: Probe) -> None:
        self.probes: List[Probe] = [p for p in probes if p is not None]

    def on_run_start(self, backend: Any) -> None:
        for p in self.probes:
            p.on_run_start(backend)

    def on_step(self, step: int) -> None:
        for p in self.probes:
            p.on_step(step)

    def on_phase(self, at: "StepPhase") -> None:
        for p in self.probes:
            p.on_phase(at)

    def on_bus_drive(self, at, bus: str, value: int) -> None:
        for p in self.probes:
            p.on_bus_drive(at, bus, value)

    def on_register_latch(self, at, register: str, value: int) -> None:
        for p in self.probes:
            p.on_register_latch(at, register, value)

    def on_conflict(self, event) -> None:
        for p in self.probes:
            p.on_conflict(event)

    def on_run_end(self, backend: Any, wall: float) -> None:
        for p in self.probes:
            p.on_run_end(backend, wall)


def combine_probes(probes: Iterable[Probe]) -> "Probe | None":
    """One probe out of many: None for none, the probe itself for one,
    a :class:`ProbeSet` otherwise (used by the CLI flag plumbing)."""
    active = [p for p in probes if p is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]
    return ProbeSet(*active)
