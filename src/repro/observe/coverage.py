"""Structural coverage over the Plan IR, identical on every backend.

The ROADMAP's campaign runner wants to sweep inputs "until structural
coverage saturates: transfers exercised, (CS, PH) cells hit, conflicts
provoked".  This module defines what those words mean -- on the one
lowered :class:`~repro.engine.plan.Plan` every backend executes -- and
measures them from the same canonical probe stream the assertion
monitor consumes, so the numbers are bit-identical whether a run went
through the event kernel, the compiled loop, a batched lane or the
sharded coordinator (differential-tested in
``tests/observe/test_coverage_differential.py``).

The universe (:class:`CoverageModel`, derived from a Plan):

* **transfers** -- every TRANS spec row ``(step, phase, source,
  sink)``; one coverage point per row, indexed by the global driver
  order;
* **cells** -- every distinct ``(CS, PH)`` the schedule asserts in;
* **port value classes** -- for every *observable* port (buses and
  register outputs -- exactly the canonical stream's vocabulary):
  ``toggle`` (drove/latched a data value), ``disc`` (released back to
  DISC) and ``illegal`` (resolved to ILLEGAL);
* **conflict pairs** -- for every multi-driver sink, each unordered
  pair of its drivers in global driver order: the collisions the
  structure makes *possible*; a pair is covered when a run actually
  provokes it.

When a transfer is "exercised": its assert cell executed **and** the
transfer demonstrably moved data.  For a tracked source (a bus, or a
register's ``_out``) that means the source was not DISC at the assert
cycle (after that cycle's value changes landed -- exactly the value
the driver read).  An ``op:`` select is exercised by execution alone.
A transfer whose source is unobservable (a unit's ``_out`` port never
appears in the probe stream) is judged by its *sink* one cycle later,
when the drive lands -- a deliberate, documented over-approximation
when several drivers share that sink cell -- and a transfer with
neither side observable counts as exercised when its cycle executes.
Cells are covered derivatively: a cell is hit when any of its
transfers exercised.

Reports (:class:`CoverageReport`) are canonical -- sorted hit tuples,
stable dict/JSON forms -- and closed under :meth:`CoverageReport.merge`
(set union; associative, commutative, idempotent), which is what the
cumulative :class:`CoverageDB` does on disk: entries live at
``<root>/coverage/v1/<model_digest>.json`` (mirroring the PlanCache
layout under the same root), so repeated runs of the same model
accumulate one saturating report.

Entry points: :class:`CoverageProbe` (online, any scalar backend plus
batched N == 1), :func:`coverage_from_trace` (batched lane replay) and
:func:`measure_coverage` (the uniform front door, mirroring
:func:`repro.observe.monitor.check_model`).
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.phases import StepPhase
from ..core.values import DISC, ILLEGAL
from .monitor import _initial_state, monitored_watch_list
from .probe import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.diagnostics import ConflictEvent
    from ..core.model import RTModel
    from ..core.trace import TraceLog
    from ..engine.plan import Plan

__all__ = [
    "COVERAGE_VERSION",
    "CoverageDB",
    "CoverageError",
    "CoverageModel",
    "CoverageProbe",
    "CoverageReport",
    "as_coverage_db",
    "coverage_from_trace",
    "coverage_model_for",
    "measure_coverage",
]

COVERAGE_VERSION = 1

_DB_MAGIC = "repro-coverage"

#: Port value classes, in report order.
VALUE_CLASSES = ("toggle", "disc", "illegal")


class CoverageError(ValueError):
    """Raised for incompatible reports or malformed payloads."""


def _classify(value: int) -> str:
    if value == ILLEGAL:
        return "illegal"
    if value == DISC:
        return "disc"
    return "toggle"


# ----------------------------------------------------------------------
# the universe
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoverageModel:
    """The coverage universe of one lowered model (see module doc)."""

    digest: str
    name: str
    cs_max: int
    #: TRANS spec rows, indexed by global driver order.
    transfers: Tuple[Tuple[int, int, str, str], ...]
    #: distinct (step, phase_int) assert cells, sorted.
    cells: Tuple[Tuple[int, int], ...]
    #: observable ports: buses then registers, declaration order.
    buses: Tuple[str, ...]
    registers: Tuple[str, ...]
    #: potential conflict pairs (owner names, global driver order).
    conflict_pairs: Tuple[Tuple[str, str], ...]
    #: per assert cell: (transfer index, tracked source name | None);
    #: None means exercised by execution alone.
    source_checks: Dict[Tuple[int, int], Tuple[Tuple[int, Optional[str]], ...]] = field(hash=False)
    #: per assert cell: (transfer index, tracked sink name) judged one
    #: cycle later, when the drive lands.
    sink_checks: Dict[Tuple[int, int], Tuple[Tuple[int, str], ...]] = field(hash=False)
    #: owner name -> global driver index (conflict canonicalization).
    owner_index: Dict[str, int] = field(hash=False)

    @classmethod
    def from_plan(cls, plan: "Plan") -> "CoverageModel":
        buses = tuple(plan.port_names[: plan.bus_count])
        bus_set = set(buses)
        registers = plan.register_names()
        register_set = set(registers)

        source_checks: Dict[
            Tuple[int, int], List[Tuple[int, Optional[str]]]
        ] = {}
        sink_checks: Dict[Tuple[int, int], List[Tuple[int, str]]] = {}
        for idx, (step, phase_int, source, sink) in enumerate(
            plan.spec_rows
        ):
            key = (step, phase_int)
            tracked: Optional[str] = None
            if source.startswith("op:"):
                tracked = None
            elif source in bus_set:
                tracked = source
            elif source.endswith("_out") and source[: -len("_out")] in register_set:
                tracked = source[: -len("_out")]
            else:
                # Unobservable source (a unit output): judge by the
                # sink when the drive lands, if the sink is observable.
                if sink in bus_set:
                    sink_checks.setdefault(key, []).append((idx, sink))
                else:
                    source_checks.setdefault(key, []).append((idx, None))
                continue
            source_checks.setdefault(key, []).append((idx, tracked))

        owner_index = {
            owner: idx for idx, owner in enumerate(plan.drv_owner)
        }
        pairs: List[Tuple[str, str]] = []
        seen_pairs = set()
        for sink in sorted(plan.sink_drivers):
            drivers = plan.sink_drivers[sink]
            for a in range(len(drivers)):
                for b in range(a + 1, len(drivers)):
                    one = plan.drv_owner[drivers[a]]
                    other = plan.drv_owner[drivers[b]]
                    if one == other:
                        # A TRANS never conflicts with itself: its own
                        # drivers assert at distinct cells.
                        continue
                    if owner_index[one] > owner_index[other]:
                        one, other = other, one
                    pair = (one, other)
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        pairs.append(pair)

        return cls(
            digest=plan.digest,
            name=plan.name,
            cs_max=plan.cs_max,
            transfers=tuple(plan.spec_rows),
            cells=tuple(sorted({
                (step, phase_int)
                for step, phase_int, _source, _sink in plan.spec_rows
            })),
            buses=buses,
            registers=registers,
            conflict_pairs=tuple(pairs),
            source_checks={
                key: tuple(rows) for key, rows in source_checks.items()
            },
            sink_checks={
                key: tuple(rows) for key, rows in sink_checks.items()
            },
            owner_index=owner_index,
        )

    @property
    def ports(self) -> Tuple[str, ...]:
        return self.buses + self.registers

    @property
    def pair_set(self) -> frozenset:
        return frozenset(self.conflict_pairs)

    def totals(self) -> Dict[str, int]:
        return {
            "transfers": len(self.transfers),
            "cells": len(self.cells),
            "port_classes": len(self.ports) * len(VALUE_CLASSES),
            "conflict_pairs": len(self.conflict_pairs),
        }

    def missed(self, report: "CoverageReport") -> Dict[str, list]:
        """What the report did *not* cover, by dimension (for text
        reports; identities, not counts)."""
        hit_t = set(report.transfers_hit)
        hit_c = set(report.cells_hit)
        hit_p = set(report.port_classes_hit)
        hit_x = set(report.conflict_pairs_hit)
        return {
            "transfers": [
                {"index": i, "row": list(self.transfers[i])}
                for i in range(len(self.transfers))
                if i not in hit_t
            ],
            "cells": [list(c) for c in self.cells if c not in hit_c],
            "port_classes": [
                [port, cls]
                for port in self.ports
                for cls in VALUE_CLASSES
                if (port, cls) not in hit_p
            ],
            "conflict_pairs": [
                list(p) for p in self.conflict_pairs if p not in hit_x
            ],
        }


def coverage_model_for(backend: Any) -> CoverageModel:
    """The coverage universe of an elaborated backend.

    Compiled-style backends carry their lowered Plan (``model_plan``);
    the event backend lowers on demand -- same pipeline, same digest,
    same universe.
    """
    plan = getattr(backend, "model_plan", None)
    if plan is None:
        from ..engine.plan import lower

        plan = lower(backend.model)
    return CoverageModel.from_plan(plan)


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoverageReport:
    """Canonical per-run (or merged) structural-coverage verdict.

    Hit sets are sorted tuples, so equal coverage compares and
    serializes bit-identically; totals pin the universe size so merges
    across incompatible models fail loudly.
    """

    digest: str
    model: str
    transfers_total: int
    cells_total: int
    port_classes_total: int
    conflict_pairs_total: int
    transfers_hit: Tuple[int, ...]
    cells_hit: Tuple[Tuple[int, int], ...]
    port_classes_hit: Tuple[Tuple[str, str], ...]
    conflict_pairs_hit: Tuple[Tuple[str, str], ...]

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def merge(self, other: "CoverageReport") -> "CoverageReport":
        """Set-union of two reports over the same universe.

        Associative, commutative and idempotent -- the cumulative DB
        relies on all three."""
        if self.digest != other.digest:
            raise CoverageError(
                f"cannot merge coverage of different models "
                f"({self.digest[:16]} vs {other.digest[:16]})"
            )
        if (
            self.transfers_total != other.transfers_total
            or self.cells_total != other.cells_total
            or self.port_classes_total != other.port_classes_total
            or self.conflict_pairs_total != other.conflict_pairs_total
        ):
            raise CoverageError(
                "cannot merge coverage over different universes"
            )
        return CoverageReport(
            digest=self.digest,
            model=self.model,
            transfers_total=self.transfers_total,
            cells_total=self.cells_total,
            port_classes_total=self.port_classes_total,
            conflict_pairs_total=self.conflict_pairs_total,
            transfers_hit=tuple(sorted(
                set(self.transfers_hit) | set(other.transfers_hit)
            )),
            cells_hit=tuple(sorted(
                set(self.cells_hit) | set(other.cells_hit)
            )),
            port_classes_hit=tuple(sorted(
                set(self.port_classes_hit) | set(other.port_classes_hit)
            )),
            conflict_pairs_hit=tuple(sorted(
                set(self.conflict_pairs_hit) | set(other.conflict_pairs_hit)
            )),
        )

    # ------------------------------------------------------------------
    # fractions
    # ------------------------------------------------------------------
    @staticmethod
    def _frac(hit: int, total: int) -> float:
        return hit / total if total else 1.0

    @property
    def hit_count(self) -> int:
        return (
            len(self.transfers_hit) + len(self.cells_hit)
            + len(self.port_classes_hit) + len(self.conflict_pairs_hit)
        )

    @property
    def point_count(self) -> int:
        return (
            self.transfers_total + self.cells_total
            + self.port_classes_total + self.conflict_pairs_total
        )

    @property
    def coverage(self) -> float:
        """Overall covered fraction over all four dimensions."""
        return self._frac(self.hit_count, self.point_count)

    def fractions(self) -> Dict[str, float]:
        return {
            "transfers": self._frac(
                len(self.transfers_hit), self.transfers_total
            ),
            "cells": self._frac(len(self.cells_hit), self.cells_total),
            "port_classes": self._frac(
                len(self.port_classes_hit), self.port_classes_total
            ),
            "conflict_pairs": self._frac(
                len(self.conflict_pairs_hit), self.conflict_pairs_total
            ),
            "overall": self.coverage,
        }

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "model": self.model,
            "totals": {
                "transfers": self.transfers_total,
                "cells": self.cells_total,
                "port_classes": self.port_classes_total,
                "conflict_pairs": self.conflict_pairs_total,
            },
            "hits": {
                "transfers": list(self.transfers_hit),
                "cells": [list(c) for c in self.cells_hit],
                "port_classes": [list(p) for p in self.port_classes_hit],
                "conflict_pairs": [
                    list(p) for p in self.conflict_pairs_hit
                ],
            },
            "fractions": self.fractions(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CoverageReport":
        try:
            totals = payload["totals"]
            hits = payload["hits"]
            return cls(
                digest=str(payload["digest"]),
                model=str(payload["model"]),
                transfers_total=int(totals["transfers"]),
                cells_total=int(totals["cells"]),
                port_classes_total=int(totals["port_classes"]),
                conflict_pairs_total=int(totals["conflict_pairs"]),
                transfers_hit=tuple(sorted(
                    int(i) for i in hits["transfers"]
                )),
                cells_hit=tuple(sorted(
                    (int(s), int(p)) for s, p in hits["cells"]
                )),
                port_classes_hit=tuple(sorted(
                    (str(a), str(b)) for a, b in hits["port_classes"]
                )),
                conflict_pairs_hit=tuple(sorted(
                    (str(a), str(b)) for a, b in hits["conflict_pairs"]
                )),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CoverageError(
                f"malformed coverage payload: {exc}"
            ) from None

    def render(self) -> str:
        """Human-readable coverage table."""
        rows = [
            ("transfers", len(self.transfers_hit), self.transfers_total),
            ("cells", len(self.cells_hit), self.cells_total),
            (
                "port classes",
                len(self.port_classes_hit),
                self.port_classes_total,
            ),
            (
                "conflict pairs",
                len(self.conflict_pairs_hit),
                self.conflict_pairs_total,
            ),
        ]
        lines = [
            f"coverage: model {self.model!r} "
            f"(digest {self.digest[:16]}...)"
        ]
        for label, hit, total in rows:
            pct = 100.0 * self._frac(hit, total)
            lines.append(f"  {label:<14} {hit}/{total} ({pct:.1f}%)")
        lines.append(
            f"  {'overall':<14} {self.hit_count}/{self.point_count} "
            f"({100.0 * self.coverage:.1f}%)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the evaluation core (shared by the probe and the trace replay)
# ----------------------------------------------------------------------
class _CoverageEvaluation:
    """State machine marking coverage points from a cycle stream.

    The stream contract is the canonical probe stream's: per executed
    cycle, the set of observable ports whose effective value changed
    *at* that cycle, plus conflict events interleaved at their cycle.
    Sink checks of cycle *k*'s asserts are decided at cycle *k+1* --
    when the drive lands -- which is the next processed cycle, since
    the schedule is walked without gaps.
    """

    def __init__(self, cov: CoverageModel) -> None:
        self.cov = cov
        self.state: Dict[str, int] = {}
        self.transfers_hit: set = set()
        self.port_classes_hit: set = set()
        self.conflict_pairs_hit: set = set()
        self.cycles = 0
        self._port_set = frozenset(cov.ports)
        self._pair_set = cov.pair_set
        self._prev_key: Optional[Tuple[int, int]] = None

    def start(self, initial_state: Mapping[str, int]) -> None:
        self.state = dict(initial_state)

    def conflict(self, event: "ConflictEvent") -> None:
        owners = sorted(
            (owner for owner, _value in event.sources),
            key=lambda o: self.cov.owner_index.get(o, -1),
        )
        for a in range(len(owners)):
            for b in range(a + 1, len(owners)):
                pair = (owners[a], owners[b])
                if pair in self._pair_set:
                    self.conflict_pairs_hit.add(pair)

    def cycle(self, at: StepPhase, changed: Mapping[str, int]) -> None:
        self.cycles += 1
        for name, value in changed.items():
            if name in self._port_set:
                self.port_classes_hit.add((name, _classify(value)))
        self.state.update(changed)
        key = (at.step, int(at.phase))
        # Drives asserted last cycle landed in this one: judge their
        # unobservable-source transfers by the sink value now.
        if self._prev_key is not None:
            for idx, sink in self.cov.sink_checks.get(self._prev_key, ()):
                if self.state.get(sink, DISC) != DISC:
                    self.transfers_hit.add(idx)
        for idx, source in self.cov.source_checks.get(key, ()):
            if source is None or self.state.get(source, DISC) != DISC:
                self.transfers_hit.add(idx)
        self._prev_key = key

    def finish(self) -> CoverageReport:
        cov = self.cov
        cells_hit = sorted({
            (cov.transfers[i][0], cov.transfers[i][1])
            for i in self.transfers_hit
        })
        return CoverageReport(
            digest=cov.digest,
            model=cov.name,
            transfers_total=len(cov.transfers),
            cells_total=len(cov.cells),
            port_classes_total=len(cov.ports) * len(VALUE_CLASSES),
            conflict_pairs_total=len(cov.conflict_pairs),
            transfers_hit=tuple(sorted(self.transfers_hit)),
            cells_hit=tuple(cells_hit),
            port_classes_hit=tuple(sorted(self.port_classes_hit)),
            conflict_pairs_hit=tuple(sorted(self.conflict_pairs_hit)),
        )


# ----------------------------------------------------------------------
# the online probe
# ----------------------------------------------------------------------
class CoverageProbe(Probe):
    """Measures structural coverage online from the canonical stream.

    Attach to any backend that emits per-cycle callbacks (event,
    compiled, sharded, batched at N == 1).  The universe is derived
    from the backend's own Plan at ``on_run_start`` (or pass a
    prebuilt :class:`CoverageModel`); the verdict lands in ``report``
    at ``on_run_end``.  Same flush discipline as the assertion
    monitor: a cycle's changes trail its phase callback, so cycle *k*
    is evaluated when the next boundary proves it complete.
    """

    def __init__(self, cov: Optional[CoverageModel] = None) -> None:
        self.cov = cov
        self.report: Optional[CoverageReport] = None
        self._eval: Optional[_CoverageEvaluation] = None
        self._open_at: Optional[StepPhase] = None
        self._changed: Dict[str, int] = {}

    def _flush(self) -> None:
        if self._eval is None or self._open_at is None:
            return
        self._eval.cycle(self._open_at, self._changed)
        self._open_at = None
        self._changed = {}

    # -- probe callbacks ------------------------------------------------
    def on_run_start(self, backend: Any) -> None:
        if self.cov is None:
            self.cov = coverage_model_for(backend)
        self._eval = _CoverageEvaluation(self.cov)
        self._eval.start(_initial_state(backend))
        self._open_at = None
        self._changed = {}
        self.report = None

    def on_phase(self, at: StepPhase) -> None:
        self._flush()
        self._open_at = at
        self._changed = {}

    def on_bus_drive(
        self, at: Optional[StepPhase], bus: str, value: int
    ) -> None:
        if at is None:
            return
        self._changed[bus] = value

    def on_register_latch(
        self, at: Optional[StepPhase], register: str, value: int
    ) -> None:
        if at is None:
            return
        self._changed[register] = value

    def on_conflict(self, event: "ConflictEvent") -> None:
        if self._eval is None:
            return
        self._flush()
        self._eval.conflict(event)

    def on_run_end(self, backend: Any, wall: float) -> None:
        if self._eval is None:
            return
        self._flush()
        self.report = self._eval.finish()
        self._eval = None


# ----------------------------------------------------------------------
# trace replay (batched lanes) and the uniform entry point
# ----------------------------------------------------------------------
def coverage_from_trace(
    cov: CoverageModel,
    trace: "TraceLog",
    conflicts: Sequence["ConflictEvent"] = (),
) -> CoverageReport:
    """Replay a recorded lane trace through the evaluation core.

    The trace must cover every bus and every register output
    (:func:`~repro.observe.monitor.monitored_watch_list` -- the same
    columns the assertion replay needs); change sets are reconstructed
    by diffing successive samples, matching the online probe exactly.
    """
    reg_out = {f"{name}_out": name for name in cov.registers}
    bus_set = set(cov.buses)
    evaluation = _CoverageEvaluation(cov)
    pending = list(conflicts)
    feed_idx = 0
    first = True
    for sample in trace.samples:
        values: Dict[str, int] = {}
        for column, value in sample.values.items():
            if column in bus_set:
                values[column] = value
            elif column in reg_out:
                values[reg_out[column]] = value
        while feed_idx < len(pending) and pending[feed_idx].at <= sample.at:
            evaluation.conflict(pending[feed_idx])
            feed_idx += 1
        if first:
            evaluation.start(values)
            evaluation.cycle(sample.at, {})
            first = False
        else:
            changed = {
                name: value
                for name, value in values.items()
                if evaluation.state.get(name) != value
            }
            evaluation.cycle(sample.at, changed)
    while feed_idx < len(pending):
        evaluation.conflict(pending[feed_idx])
        feed_idx += 1
    return evaluation.finish()


def measure_coverage(
    model: "RTModel",
    backend: str = "compiled",
    register_values: Union[
        Mapping[str, int], Sequence[Mapping[str, int]], None
    ] = None,
    per_lane: bool = False,
    **elaborate_kwargs: Any,
) -> Union[CoverageReport, List[CoverageReport]]:
    """Run ``model`` under ``backend`` and measure its coverage.

    Scalar backends attach an online :class:`CoverageProbe`.
    ``compiled-batched`` sweeps a sequence of register-value vectors
    in one run and replays each lane's trace; the lanes are merged
    into one report unless ``per_lane`` is True.  Per-lane reports are
    bit-identical to N scalar runs (differential-tested).
    """
    if backend == "compiled-batched":
        if register_values is None or isinstance(register_values, Mapping):
            vectors = [dict(register_values or {})]
        else:
            vectors = [dict(v) for v in register_values]
        sim = model.elaborate(
            backend=backend,
            register_values=vectors,
            watch=monitored_watch_list(model),
            **elaborate_kwargs,
        )
        sim.run()
        cov = CoverageModel.from_plan(sim.model_plan)
        reports = [
            coverage_from_trace(cov, sim.tracers[i], sim.conflicts[i])
            for i in range(sim.batch_size)
        ]
        if per_lane:
            return reports
        merged = reports[0]
        for report in reports[1:]:
            merged = merged.merge(report)
        return merged
    if register_values is not None and not isinstance(
        register_values, Mapping
    ):
        raise CoverageError(
            "a sequence of register-value vectors needs "
            "backend='compiled-batched'"
        )
    probe = CoverageProbe()
    kwargs = dict(elaborate_kwargs)
    if register_values is not None:
        kwargs["register_values"] = register_values
    model.elaborate(backend=backend, observe=probe, **kwargs).run()
    assert probe.report is not None
    return probe.report


# ----------------------------------------------------------------------
# the cumulative on-disk DB
# ----------------------------------------------------------------------
class CoverageDB:
    """Content-addressed cumulative coverage store.

    Entries live at ``<root>/coverage/v<COVERAGE_VERSION>/
    <model_digest>.json`` under the same root as the plan cache
    (``$REPRO_PLAN_CACHE`` or ``~/.cache/repro``), one merged
    :class:`CoverageReport` per model digest.  Reads are lenient (an
    unreadable or foreign entry is discarded with a RuntimeWarning);
    writes are atomic (tmp + rename) and best-effort, mirroring
    :class:`~repro.engine.plan.PlanCache`.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        if root is None:
            from ..engine.plan import default_cache_root

            root = default_cache_root()
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return (
            self.root / "coverage" / f"v{COVERAGE_VERSION}"
            / f"{digest}.json"
        )

    def get(self, digest: str) -> Optional[CoverageReport]:
        path = self.path_for(digest)
        try:
            data = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(data)
            if (
                not isinstance(payload, dict)
                or payload.get("magic") != _DB_MAGIC
                or payload.get("version") != COVERAGE_VERSION
            ):
                raise CoverageError("stale or foreign payload header")
            report = CoverageReport.from_dict(payload["report"])
            if report.digest != digest:
                raise CoverageError("entry does not match its digest")
        except (CoverageError, KeyError, ValueError) as exc:
            warnings.warn(
                f"coverage db: discarding unusable entry {path} "
                f"({exc}); starting fresh",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return report

    def put(self, report: CoverageReport) -> bool:
        path = self.path_for(report.digest)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps({
                    "magic": _DB_MAGIC,
                    "version": COVERAGE_VERSION,
                    "report": report.to_dict(),
                }, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True

    def update(self, report: CoverageReport) -> CoverageReport:
        """Merge ``report`` into the stored entry; returns the merge."""
        existing = self.get(report.digest)
        merged = report if existing is None else existing.merge(report)
        self.put(merged)
        return merged


#: ``cover_db=`` argument shapes: None/False (off), True (default
#: root), a path, or a ready CoverageDB.
CoverageDBArg = Union[None, bool, str, Path, CoverageDB]


def as_coverage_db(cover_db: CoverageDBArg) -> Optional[CoverageDB]:
    """Normalize a ``cover_db`` argument to a DB or None."""
    if cover_db is None or cover_db is False:
        return None
    if cover_db is True:
        return CoverageDB()
    if isinstance(cover_db, CoverageDB):
        return cover_db
    return CoverageDB(cover_db)
