"""Temporal assertion monitors over the ``(CS, PH)`` probe stream.

The paper's §2.7 debugging claim is that errors localize to an exact
control step and phase.  This module makes that localization *active*:
a :class:`Property` is a temporal assertion evaluated online over the
canonical probe stream (see :mod:`repro.observe.emit`), and every
failure is a structured :class:`Violation` carrying the ``(CS, PH)``
point, the offending signal, and observed vs expected values,
aggregated into an :class:`AssertionReport`.

Property catalogue (all composable, all backends):

* :func:`never` / :func:`never_illegal` -- a predicate over observed
  value changes must never hold (e.g. "bus B1 is never ILLEGAL").
* :func:`no_conflicts` -- no :class:`ConflictEvent` on the named
  signals (the conflict stream localizes independently of values).
* :func:`always_at` -- a state predicate must hold at every cycle of
  one phase (e.g. "R1 is non-ILLEGAL at every CR").
* :func:`implies_within` -- bounded response: once a trigger condition
  fires, a response condition must hold within ``k_steps`` control
  steps (strong semantics: obligations still pending at the end of the
  run are violations).
* :func:`stable_between` -- a register must keep one value across the
  inclusive control-step window ``[cs_lo, cs_hi]``.

Identical verdicts on all four RT backends:

* **event / compiled / sharded** (and batched at N == 1) attach an
  :class:`AssertionMonitor` probe via ``observe=`` and evaluate online
  -- the canonical emission order makes the verdict backend-independent.
* **compiled-batched at N > 1** has no per-signal probe stream, so
  :func:`check_model` replays each lane's ``watch=`` subset trace and
  per-lane conflict list through the *same* evaluation core
  (:func:`evaluate_trace`), yielding one :class:`AssertionReport` per
  lane, bit-identical to N scalar runs (pinned by
  ``tests/observe/test_monitor_differential.py``).

:func:`parse_properties` loads a JSON property file (the CLI's
``--assert-file``); :func:`default_properties` is the ``--monitor``
shorthand (never-ILLEGAL anywhere + no conflicts).
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.phases import Phase, StepPhase
from ..core.values import DISC, ILLEGAL, format_value
from .probe import Probe
from .recorder import decode_value, encode_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.diagnostics import ConflictEvent
    from ..core.model import RTModel
    from ..core.trace import TraceLog


class MonitorError(ValueError):
    """A malformed property specification (bad file, bad arguments)."""


# ----------------------------------------------------------------------
# violations and reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One observed assertion failure, localized to ``(CS, PH)``.

    ``observed``/``expected`` are subset values (or None / descriptive
    strings where a single value does not apply); ``at`` is None only
    for end-of-run obligations that never localized.
    """

    prop: str
    at: Optional[StepPhase]
    signal: Optional[str]
    observed: Any
    expected: Any
    message: str

    def sort_key(self) -> tuple:
        if self.at is None:
            return (1 << 31, 0, self.prop, self.signal or "")
        return (self.at.step, int(self.at.phase), self.prop, self.signal or "")

    def to_dict(self) -> Dict[str, Any]:
        def enc(value: Any) -> Any:
            return encode_value(value) if isinstance(value, int) else value

        return {
            "property": self.prop,
            "cs": None if self.at is None else self.at.step,
            "ph": None if self.at is None else self.at.phase.vhdl_name,
            "signal": self.signal,
            "observed": enc(self.observed),
            "expected": enc(self.expected),
            "message": self.message,
        }

    def __str__(self) -> str:
        where = "end of run" if self.at is None else str(self.at)
        sig = f" {self.signal}" if self.signal else ""
        return f"[{self.prop}]{sig} at {where}: {self.message}"


@dataclass
class AssertionReport:
    """The aggregated verdict of one monitored run (or one lane).

    Violations are sorted by ``(CS, PH, property, signal)`` so reports
    from different backends compare bit-identically via
    :meth:`to_dict` regardless of internal evaluation interleaving.
    """

    properties: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    cycles: int = 0
    conflicts: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_property(self) -> Dict[str, List[Violation]]:
        out: Dict[str, List[Violation]] = {label: [] for label in self.properties}
        for v in self.violations:
            out.setdefault(v.prop, []).append(v)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "properties": list(self.properties),
            "cycles": self.cycles,
            "conflicts": self.conflicts,
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        lines = [
            "assertion report: "
            f"{len(self.properties)} propert"
            f"{'y' if len(self.properties) == 1 else 'ies'}, "
            f"{len(self.violations)} violation"
            f"{'' if len(self.violations) == 1 else 's'}, "
            f"{self.cycles} cycles"
        ]
        for label, violations in self.by_property().items():
            verdict = "PASS" if not violations else "FAIL"
            lines.append(f"  {verdict} {label}")
            for v in violations:
                where = "end of run" if v.at is None else str(v.at)
                sig = f"{v.signal}: " if v.signal else ""
                lines.append(f"    {where} {sig}{v.message}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
#: A state/changed predicate: ``f(at, state, changed) -> bool``.
CyclePredicate = Callable[[StepPhase, Mapping[str, int], Mapping[str, int]], bool]

_OPS: Dict[str, Callable[[int, int], bool]] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


class PropertyChecker:
    """Per-run evaluation state of one property (minted per run/lane)."""

    def __init__(self, label: str) -> None:
        self.label = label

    def on_conflict(self, event: "ConflictEvent") -> Iterable[Violation]:
        return ()

    def on_cycle(
        self,
        at: StepPhase,
        state: Mapping[str, int],
        changed: Mapping[str, int],
    ) -> Iterable[Violation]:
        return ()

    def on_end(self, last_at: Optional[StepPhase]) -> Iterable[Violation]:
        return ()


class Property:
    """An immutable temporal-property spec; :meth:`checker` mints the
    per-run state, so one Property evaluates many runs/lanes safely."""

    def __init__(self, label: str) -> None:
        self.label = label

    def checker(self) -> PropertyChecker:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r})"


class _LambdaProperty(Property):
    def __init__(self, label: str, factory: Callable[[], PropertyChecker]) -> None:
        super().__init__(label)
        self._factory = factory

    def checker(self) -> PropertyChecker:
        return self._factory()


def when(
    signal: str,
    op: str = "eq",
    value: int = ILLEGAL,
    changed_only: bool = False,
) -> CyclePredicate:
    """A condition predicate for :func:`implies_within` triggers and
    responses: ``signal <op> value``, read from the cycle's effective
    state (or only from this cycle's *changes* with ``changed_only``)."""
    try:
        test = _OPS[op]
    except KeyError:
        raise MonitorError(f"unknown comparison op {op!r} (use {sorted(_OPS)})") from None

    def pred(at: StepPhase, state: Mapping[str, int], changed: Mapping[str, int]) -> bool:
        src = changed if changed_only else state
        if signal not in src:
            return False
        return bool(test(src[signal], value))

    return pred


def never(
    pred: Callable[[str, int], bool],
    label: str = "never",
    expected: Any = "predicate never to hold",
) -> Property:
    """Violation whenever ``pred(signal, new_value)`` holds for an
    observed value change (bus drive or register latch)."""

    class _Checker(PropertyChecker):
        def on_cycle(self, at, state, changed):
            return [
                Violation(
                    prop=self.label,
                    at=at,
                    signal=sig,
                    observed=value,
                    expected=expected,
                    message=f"observed {format_value(value)}",
                )
                for sig, value in changed.items()
                if pred(sig, value)
            ]

    return _LambdaProperty(label, lambda: _Checker(label))


def never_illegal(*signals: str) -> Property:
    """No observed signal (or only the named ones) ever goes ILLEGAL."""
    names = set(signals)
    label = "never_illegal" + (f"({','.join(sorted(names))})" if names else "")

    def pred(signal: str, value: int) -> bool:
        return value == ILLEGAL and (not names or signal in names)

    return never(pred, label=label, expected="not ILLEGAL")


def no_conflicts(*signals: str) -> Property:
    """No resource conflict is recorded (optionally: on named signals).

    Conflicts stream through ``on_conflict`` with their own exact
    ``(CS, PH)``; the violation's observed value is the colliding
    driver list."""
    names = set(signals)
    label = "no_conflicts" + (f"({','.join(sorted(names))})" if names else "")

    class _Checker(PropertyChecker):
        def on_conflict(self, event):
            if names and event.signal not in names:
                return ()
            drivers = ", ".join(
                f"{owner}={format_value(value)}" for owner, value in event.sources
            )
            return [
                Violation(
                    prop=self.label,
                    at=event.at,
                    signal=event.signal,
                    observed=ILLEGAL,
                    expected="no colliding drivers",
                    message=f"conflict (drivers: {drivers})",
                )
            ]

    return _LambdaProperty(label, lambda: _Checker(label))


def always_at(
    phase: Union[Phase, str],
    pred: Callable[[Mapping[str, int]], bool],
    label: Optional[str] = None,
    signal: Optional[str] = None,
    expected: Any = "predicate to hold",
) -> Property:
    """``pred(state)`` must hold at every executed cycle of ``phase``.

    With ``signal`` set, the violation records that signal's observed
    value (``pred`` still receives the full state mapping)."""
    ph = Phase.from_vhdl_name(phase) if isinstance(phase, str) else phase
    name = label or f"always_at({ph.vhdl_name}" + (f":{signal}" if signal else "") + ")"

    class _Checker(PropertyChecker):
        def on_cycle(self, at, state, changed):
            if at.phase is not ph or pred(state):
                return ()
            observed = state.get(signal, DISC) if signal else None
            seen = f"observed {format_value(observed)}" if signal else "predicate false"
            return [
                Violation(
                    prop=self.label,
                    at=at,
                    signal=signal,
                    observed=observed,
                    expected=expected,
                    message=seen,
                )
            ]

    return _LambdaProperty(name, lambda: _Checker(name))


def implies_within(
    trigger: CyclePredicate,
    response: CyclePredicate,
    k_steps: int,
    label: str = "implies_within",
) -> Property:
    """Bounded response: each cycle where ``trigger`` holds opens an
    obligation that ``response`` must hold at some cycle no more than
    ``k_steps`` control steps later (same step counts; a response
    cycle discharges *all* open obligations).  Obligations still open
    when the run ends are violations (strong finite-trace semantics)."""
    if k_steps < 0:
        raise MonitorError(f"implies_within needs k_steps >= 0, got {k_steps}")

    class _Checker(PropertyChecker):
        def __init__(self, name: str) -> None:
            super().__init__(name)
            self.pending: List[StepPhase] = []

        def _expired(self, trigger_at: StepPhase) -> Violation:
            return Violation(
                prop=self.label,
                at=trigger_at,
                signal=None,
                observed=None,
                expected=f"response within {k_steps} step(s)",
                message=f"trigger at {trigger_at} got no response within {k_steps} step(s)",
            )

        def on_cycle(self, at, state, changed):
            out = [
                self._expired(t_at)
                for t_at in self.pending
                if at.step > t_at.step + k_steps
            ]
            self.pending = [t_at for t_at in self.pending if at.step <= t_at.step + k_steps]
            if trigger(at, state, changed):
                self.pending.append(at)
            if self.pending and response(at, state, changed):
                self.pending = []
            return out

        def on_end(self, last_at):
            out = [self._expired(t_at) for t_at in self.pending]
            self.pending = []
            return out

    return _LambdaProperty(label, lambda: _Checker(label))


def stable_between(register: str, cs_lo: int, cs_hi: int, label: Optional[str] = None) -> Property:
    """``register`` must hold one value across control steps
    ``[cs_lo, cs_hi]`` inclusive.  The baseline is the value in force
    at the window's first executed cycle; any later latch inside the
    window is a violation carrying observed vs expected values."""
    if cs_lo > cs_hi:
        raise MonitorError(f"stable_between window is empty: [{cs_lo}, {cs_hi}]")
    name = label or f"stable_between({register},{cs_lo},{cs_hi})"
    _UNSET = object()

    class _Checker(PropertyChecker):
        def __init__(self, lbl: str) -> None:
            super().__init__(lbl)
            self.baseline: Any = _UNSET

        def on_cycle(self, at, state, changed):
            if not (cs_lo <= at.step <= cs_hi):
                return ()
            if self.baseline is _UNSET:
                self.baseline = state.get(register, DISC)
                return ()
            if register in changed and changed[register] != self.baseline:
                return [
                    Violation(
                        prop=self.label,
                        at=at,
                        signal=register,
                        observed=changed[register],
                        expected=self.baseline,
                        message=(
                            f"latched {format_value(changed[register])}, expected to "
                            f"stay {format_value(self.baseline)}"
                        ),
                    )
                ]
            return ()

    return _LambdaProperty(name, lambda: _Checker(name))


def default_properties(model: Optional["RTModel"] = None) -> List[Property]:
    """The ``--monitor`` shorthand: nothing ever ILLEGAL, no conflicts."""
    del model  # reserved for model-aware defaults
    return [never_illegal(), no_conflicts()]


# ----------------------------------------------------------------------
# the evaluation core (shared by online monitor and trace replay)
# ----------------------------------------------------------------------
class _Evaluation:
    """State machine feeding one property set from a cycle stream."""

    def __init__(self, properties: Sequence[Property]) -> None:
        self.properties = list(properties)
        self.checkers = [p.checker() for p in self.properties]
        self.violations: List[Violation] = []
        self.state: Dict[str, int] = {}
        self.cycles = 0
        self.conflicts = 0
        self._last_at: Optional[StepPhase] = None

    def start(self, initial_state: Mapping[str, int]) -> None:
        self.state = dict(initial_state)

    def conflict(self, event: "ConflictEvent") -> None:
        self.conflicts += 1
        for checker in self.checkers:
            self.violations.extend(checker.on_conflict(event))

    def cycle(self, at: StepPhase, changed: Mapping[str, int]) -> None:
        self.cycles += 1
        self._last_at = at
        self.state.update(changed)
        for checker in self.checkers:
            self.violations.extend(checker.on_cycle(at, self.state, changed))

    def finish(self) -> AssertionReport:
        for checker in self.checkers:
            self.violations.extend(checker.on_end(self._last_at))
        return AssertionReport(
            properties=[p.label for p in self.properties],
            violations=sorted(self.violations, key=Violation.sort_key),
            cycles=self.cycles,
            conflicts=self.conflicts,
        )


def _initial_state(backend: Any) -> Dict[str, int]:
    """Buses at DISC plus the backend's post-override register values."""
    state: Dict[str, int] = {}
    model = getattr(backend, "model", None)
    if model is not None:
        for bus in model.buses:
            state[bus] = DISC
    if getattr(backend, "batch_size", None) == 1:
        state.update(backend.vector_registers(0))
        return state
    regs = getattr(backend, "registers", None)
    if isinstance(regs, Mapping):
        state.update(regs)
    elif model is not None:
        for name, decl in model.registers.items():
            state[name] = decl.init
    return state


class AssertionMonitor(Probe):
    """The online realization: a probe evaluating properties as the
    canonical stream arrives, on any backend that emits it.

    A cycle's changes trail its phase callback, so evaluation of cycle
    *k* happens when the next boundary (phase *k+1*, a conflict, or run
    end) proves *k* complete.  ``listener`` (if set) receives each
    :class:`Violation` the moment it is detected -- the stream server
    uses this to push violations to live watchers."""

    def __init__(
        self,
        properties: Sequence[Property],
        listener: Optional[Callable[[Violation], None]] = None,
    ) -> None:
        self.properties = list(properties)
        self.listener = listener
        self.report: Optional[AssertionReport] = None
        self._eval: Optional[_Evaluation] = None
        self._open_at: Optional[StepPhase] = None
        self._changed: Dict[str, int] = {}

    # -- stream plumbing ------------------------------------------------
    def _notify_from(self, start: int) -> None:
        if self.listener is not None and self._eval is not None:
            for violation in self._eval.violations[start:]:
                self.listener(violation)

    def _flush(self) -> None:
        if self._eval is None or self._open_at is None:
            return
        mark = len(self._eval.violations)
        self._eval.cycle(self._open_at, self._changed)
        self._notify_from(mark)
        self._open_at = None
        self._changed = {}

    # -- probe callbacks ------------------------------------------------
    def on_run_start(self, backend: Any) -> None:
        self._eval = _Evaluation(self.properties)
        self._eval.start(_initial_state(backend))
        self._open_at = None
        self._changed = {}
        self.report = None

    def on_phase(self, at: StepPhase) -> None:
        self._flush()
        self._open_at = at
        self._changed = {}

    def on_bus_drive(self, at: Optional[StepPhase], bus: str, value: int) -> None:
        if at is None:  # handshake style: no (CS, PH) time to localize to
            return
        self._changed[bus] = value

    def on_register_latch(
        self, at: Optional[StepPhase], register: str, value: int
    ) -> None:
        if at is None:
            return
        self._changed[register] = value

    def on_conflict(self, event: "ConflictEvent") -> None:
        if self._eval is None:
            return
        self._flush()
        mark = len(self._eval.violations)
        self._eval.conflict(event)
        self._notify_from(mark)

    def on_run_end(self, backend: Any, wall: float) -> None:
        if self._eval is None:
            return
        self._flush()
        mark = len(self._eval.violations)
        self.report = self._eval.finish()
        self._notify_from(mark)
        self._eval = None


# ----------------------------------------------------------------------
# trace replay (batched lanes) and the uniform entry point
# ----------------------------------------------------------------------
def evaluate_trace(
    model: "RTModel",
    trace: "TraceLog",
    properties: Sequence[Property],
    conflicts: Sequence["ConflictEvent"] = (),
) -> AssertionReport:
    """Replay a recorded trace through the same evaluation core.

    The trace must cover every bus and every register output port
    (``<reg>_out`` columns map back to register names); per-cycle
    change sets are reconstructed by diffing successive samples, which
    matches the online probe exactly because probes only observe
    effective-value *changes* at the same cycle points the tracer
    samples."""
    reg_out = {f"{name}_out": name for name in model.registers}
    buses = set(model.buses)
    evaluation = _Evaluation(properties)
    pending = list(conflicts)
    feed_idx = 0
    first = True
    for sample in trace.samples:
        values: Dict[str, int] = {}
        for column, value in sample.values.items():
            if column in buses:
                values[column] = value
            elif column in reg_out:
                values[reg_out[column]] = value
        while feed_idx < len(pending) and pending[feed_idx].at <= sample.at:
            evaluation.conflict(pending[feed_idx])
            feed_idx += 1
        if first:
            evaluation.start(values)
            evaluation.cycle(sample.at, {})
            first = False
        else:
            changed = {
                name: value
                for name, value in values.items()
                if evaluation.state.get(name) != value
            }
            evaluation.cycle(sample.at, changed)
    while feed_idx < len(pending):
        evaluation.conflict(pending[feed_idx])
        feed_idx += 1
    return evaluation.finish()


def monitored_watch_list(model: "RTModel") -> List[str]:
    """The ``watch=`` column set monitors need: all buses + reg outputs."""
    return list(model.buses) + [f"{name}_out" for name in model.registers]


def check_model(
    model: "RTModel",
    properties: Sequence[Property],
    backend: str = "compiled",
    register_values: Union[Mapping[str, int], Sequence[Mapping[str, int]], None] = None,
    **elaborate_kwargs: Any,
) -> Union[AssertionReport, List[AssertionReport]]:
    """Run ``model`` under ``backend`` and return its assertion verdict.

    Scalar backends (``event``/``compiled``/``sharded``) attach an
    online :class:`AssertionMonitor`.  ``compiled-batched`` sweeps a
    *sequence* of register-value vectors in one run and returns one
    report per lane (a single mapping returns a single report), with
    verdicts bit-identical to N scalar runs."""
    properties = list(properties)
    if backend == "compiled-batched":
        vectors: Sequence[Mapping[str, int]]
        single = False
        if register_values is None:
            vectors, single = [{}], True
        elif isinstance(register_values, Mapping):
            vectors, single = [register_values], True
        else:
            vectors = list(register_values)
        sim = model.elaborate(
            backend=backend,
            register_values=list(vectors),
            watch=monitored_watch_list(model),
            **elaborate_kwargs,
        )
        sim.run()
        reports = [
            evaluate_trace(model, sim.tracers[i], properties, sim.conflicts[i])
            for i in range(sim.batch_size)
        ]
        return reports[0] if single else reports
    if register_values is not None and not isinstance(register_values, Mapping):
        raise MonitorError(
            "a sequence of register-value vectors needs backend='compiled-batched'"
        )
    monitor = AssertionMonitor(properties)
    kwargs = dict(elaborate_kwargs)
    if register_values is not None:
        kwargs["register_values"] = register_values
    sim = model.elaborate(backend=backend, observe=monitor, **kwargs)
    sim.run()
    assert monitor.report is not None
    return monitor.report


# ----------------------------------------------------------------------
# the --assert-file format
# ----------------------------------------------------------------------
def _parse_value(raw: Any, where: str) -> int:
    if isinstance(raw, str):
        value = decode_value(raw)
        if isinstance(value, int):
            return value
        raise MonitorError(f"{where}: bad value {raw!r} (use an int, 'z' or 'x')")
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise MonitorError(f"{where}: bad value {raw!r} (use an int, 'z' or 'x')")
    return raw


def _parse_condition(spec: Any, where: str) -> CyclePredicate:
    if not isinstance(spec, Mapping):
        raise MonitorError(f"{where}: condition must be an object, got {spec!r}")
    try:
        signal = spec["signal"]
    except KeyError:
        raise MonitorError(f"{where}: condition needs a 'signal'") from None
    op = spec.get("op", "eq")
    if op not in _OPS:
        raise MonitorError(f"{where}: unknown op {op!r} (use {sorted(_OPS)})")
    value = _parse_value(spec.get("value", ILLEGAL), where)
    return when(signal, op=op, value=value, changed_only=bool(spec.get("changed", False)))


def _condition_label(spec: Mapping[str, Any]) -> str:
    value = spec.get("value", "x")
    return f"{spec.get('signal', '?')} {spec.get('op', 'eq')} {value}"


def parse_properties(source: Union[str, bytes, Sequence[Any], Mapping[str, Any]]) -> List[Property]:
    """Build properties from the JSON assert-file format.

    The file is either a list of property objects or ``{"properties":
    [...]}``.  Supported ``type`` values: ``never`` (optionally scoped
    to one ``signal``, default condition "is ILLEGAL"),
    ``no_conflicts`` (optional ``signals`` list), ``always_at``
    (``phase`` + ``signal``/``op``/``value``), ``implies_within``
    (``trigger``/``response`` condition objects + ``steps``) and
    ``stable_between`` (``register`` + ``from``/``to``).  Every entry
    accepts an optional ``label``."""
    if isinstance(source, (str, bytes)):
        try:
            data = json.loads(source)
        except json.JSONDecodeError as exc:
            raise MonitorError(f"assert file is not valid JSON: {exc}") from exc
    else:
        data = source
    if isinstance(data, Mapping):
        data = data.get("properties")
    if not isinstance(data, Sequence) or isinstance(data, (str, bytes)):
        raise MonitorError("assert file must be a list of property objects")
    out: List[Property] = []
    for index, entry in enumerate(data):
        where = f"property #{index + 1}"
        if not isinstance(entry, Mapping):
            raise MonitorError(f"{where}: must be an object, got {entry!r}")
        ptype = entry.get("type")
        label = entry.get("label")
        if ptype == "never":
            signal = entry.get("signal")
            op = entry.get("op", "eq")
            if op not in _OPS:
                raise MonitorError(f"{where}: unknown op {op!r} (use {sorted(_OPS)})")
            test = _OPS[op]
            value = _parse_value(entry.get("value", ILLEGAL), where)
            name = label or f"never({_condition_label({'signal': signal or '*', 'op': op, 'value': entry.get('value', 'x')})})"

            def pred(sig: str, new: int, _signal=signal, _test=test, _value=value) -> bool:
                return (_signal is None or sig == _signal) and bool(_test(new, _value))

            out.append(never(pred, label=name, expected=f"never {op} {format_value(value)}"))
        elif ptype == "no_conflicts":
            signals = entry.get("signals", [])
            if not isinstance(signals, Sequence) or isinstance(signals, (str, bytes)):
                raise MonitorError(f"{where}: 'signals' must be a list of names")
            prop = no_conflicts(*signals)
            if label:
                prop.label = label
            out.append(prop)
        elif ptype == "always_at":
            try:
                phase = Phase.from_vhdl_name(str(entry["phase"]))
            except KeyError:
                raise MonitorError(f"{where}: needs a 'phase'") from None
            except ValueError as exc:
                raise MonitorError(f"{where}: {exc}") from exc
            try:
                signal = entry["signal"]
            except KeyError:
                raise MonitorError(f"{where}: always_at needs a 'signal'") from None
            op = entry.get("op", "ne")
            if op not in _OPS:
                raise MonitorError(f"{where}: unknown op {op!r} (use {sorted(_OPS)})")
            test = _OPS[op]
            value = _parse_value(entry.get("value", ILLEGAL), where)

            def state_pred(state: Mapping[str, int], _signal=signal, _test=test, _value=value) -> bool:
                return bool(_test(state.get(_signal, DISC), _value))

            out.append(
                always_at(
                    phase,
                    state_pred,
                    label=label
                    or f"always_at({phase.vhdl_name}: {signal} {op} {entry.get('value', 'x')})",
                    signal=signal,
                    expected=f"{op} {format_value(value)}",
                )
            )
        elif ptype == "implies_within":
            if "trigger" not in entry or "response" not in entry:
                raise MonitorError(f"{where}: implies_within needs 'trigger' and 'response'")
            steps = entry.get("steps", entry.get("k_steps"))
            if not isinstance(steps, int) or isinstance(steps, bool) or steps < 0:
                raise MonitorError(f"{where}: implies_within needs integer 'steps' >= 0")
            trigger = _parse_condition(entry["trigger"], f"{where} trigger")
            response = _parse_condition(entry["response"], f"{where} response")
            name = label or (
                f"implies_within({_condition_label(entry['trigger'])} -> "
                f"{_condition_label(entry['response'])} in {steps})"
            )
            out.append(implies_within(trigger, response, steps, label=name))
        elif ptype == "stable_between":
            try:
                register = entry["register"]
            except KeyError:
                raise MonitorError(f"{where}: stable_between needs a 'register'") from None
            lo = entry.get("from", entry.get("cs_lo"))
            hi = entry.get("to", entry.get("cs_hi"))
            if not isinstance(lo, int) or not isinstance(hi, int):
                raise MonitorError(f"{where}: stable_between needs integer 'from'/'to'")
            out.append(stable_between(register, lo, hi, label=label))
        else:
            raise MonitorError(
                f"{where}: unknown property type {ptype!r} (use never, no_conflicts, "
                "always_at, implies_within, stable_between)"
            )
    if not out:
        raise MonitorError("assert file declares no properties")
    return out


def load_properties(path: str) -> List[Property]:
    """Read and parse an assert file from disk (CLI ``--assert-file``)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise MonitorError(f"cannot read assert file {path}: {exc}") from exc
    return parse_properties(text)
