"""Asynchronous-handshake baseline (S10, paper §2.7's speed claim).

Four-phase req/ack channels (:mod:`channels`), dataflow networks built
from them (:mod:`network`), and matched workloads for the three-way
timing-style comparison (:mod:`workloads`).
"""

from .channels import Channel, TwoPhaseChannel
from .network import (
    HandshakeNetwork,
    HandshakeSimulation,
    NetworkError,
    chain_network,
)
from .workloads import chain_expected, chain_fn, chain_rt_model

__all__ = [
    "Channel",
    "HandshakeNetwork",
    "HandshakeSimulation",
    "NetworkError",
    "TwoPhaseChannel",
    "chain_expected",
    "chain_fn",
    "chain_network",
    "chain_rt_model",
]
