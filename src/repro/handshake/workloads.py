"""Matched workloads for the timing-style comparison (experiment E5).

The same computation -- a left-fold chain of binary operations -- is
expressed in the three styles the paper discusses:

* the **control-step** style (this paper's subset): one RT model with
  a shared adder, two buses and sequentially scheduled transfers;
* the **asynchronous-handshake** style (the conventional clock-free
  alternative): :func:`repro.handshake.network.chain_network`;
* the **clocked** style: the automatic translation of the RT model
  (:mod:`repro.clocked`).

All three run on the same kernel, so events / delta cycles / process
resumptions are directly comparable.
"""

from __future__ import annotations

import functools
from typing import Sequence

from ..core.model import RTModel
from ..core.modules_lib import ModuleSpec, standard_operation


def chain_rt_model(
    operands: Sequence[int], op_name: str = "ADD", width: int = 32
) -> RTModel:
    """A control-step model folding ``operands`` through one module.

    Operation ``i`` reads in step ``2i - 1`` and writes the accumulator
    in step ``2i``; the accumulated value is ready for the next read
    one step later, giving the dependence-limited schedule
    ``cs_max = 2 * (len(operands) - 1)``.
    """
    if len(operands) < 2:
        raise ValueError("chain needs at least two operands")
    n_ops = len(operands) - 1
    model = RTModel(f"chain_{op_name.lower()}_{len(operands)}", cs_max=2 * n_ops, width=width)
    mask = (1 << width) - 1
    for i, value in enumerate(operands):
        model.register(f"A{i}", init=value & mask)
    model.register("ACC")
    model.bus("B1")
    model.bus("B2")
    model.module(
        ModuleSpec(
            "FU",
            operations={op_name: standard_operation(op_name)},
            latency=1,
            pipelined=True,
            width=width,
        )
    )
    model.add_transfer(f"(A0,B1,A1,B2,1,FU,2,B1,ACC)")
    for i in range(2, len(operands)):
        read = 2 * i - 1
        model.add_transfer(f"(ACC,B1,A{i},B2,{read},FU,{read + 1},B1,ACC)")
    return model


def chain_expected(
    operands: Sequence[int], op_name: str = "ADD", width: int = 32
) -> int:
    """The chain's result, computed directly."""
    op = standard_operation(op_name)
    return functools.reduce(lambda a, b: op.apply((a, b), width), operands)


def chain_fn(op_name: str = "ADD", width: int = 32):
    """The fold function for the handshake network version."""
    op = standard_operation(op_name)
    return lambda a, b: op.apply((a, b), width)
