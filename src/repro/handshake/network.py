"""Handshake dataflow networks: the conventional clock-free style.

A :class:`HandshakeNetwork` is a dataflow graph of operator nodes
connected by four-phase channels.  Sources emit a stream of values,
operator nodes repeatedly consume one token per input and produce one
result token, sinks collect results.  The network runs entirely in
delta time on the same kernel as the control-step models, so kernel
statistics (cycles, events, process resumptions) are directly
comparable -- which is the whole point (experiment E5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..core.diagnostics import ConflictEvent, ConflictLog
from ..core.values import ILLEGAL
from ..kernel import SimStats, Simulator
from .channels import Channel


class NetworkError(ValueError):
    """Raised for malformed handshake networks."""


@dataclass
class _Node:
    name: str
    kind: str  # "source" | "op" | "sink"
    fn: Optional[Callable[..., int]] = None
    inputs: tuple[str, ...] = ()
    values: tuple[int, ...] = ()


class HandshakeNetwork:
    """Builder/executor for a handshake dataflow graph.

    Example (computes ``(a + b) * c`` for one token each)::

        net = HandshakeNetwork()
        net.source("a", [3])
        net.source("b", [4])
        net.source("c", [5])
        net.op("sum", lambda a, b: a + b, "a", "b")
        net.op("prod", lambda s, c: s * c, "sum", "c")
        net.sink("out", "prod")
        results = net.run()["out"]          # [35]

    ``channel_cls`` selects the protocol: the default four-phase
    :class:`Channel`, or the cheaper transition-signaling
    :class:`~repro.handshake.channels.TwoPhaseChannel`.
    """

    def __init__(self, channel_cls: type = Channel) -> None:
        self._nodes: dict[str, _Node] = {}
        self._consumers: dict[str, list[str]] = {}
        self._channel_cls = channel_cls

    # -- construction -----------------------------------------------------
    def source(self, name: str, values: Iterable[int]) -> str:
        """A stream source emitting ``values`` in order."""
        self._add(_Node(name, "source", values=tuple(values)))
        return name

    def op(
        self, name: str, fn: Callable[..., int], *inputs: str
    ) -> str:
        """An operator node applying ``fn`` to one token per input."""
        if not inputs:
            raise NetworkError(f"op {name!r} needs at least one input")
        self._add(_Node(name, "op", fn=fn, inputs=tuple(inputs)))
        return name

    def sink(self, name: str, input_node: str) -> str:
        """A sink collecting every token produced by ``input_node``."""
        self._add(_Node(name, "sink", inputs=(input_node,)))
        return name

    def _add(self, node: _Node) -> None:
        if node.name in self._nodes:
            raise NetworkError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        for src in node.inputs:
            self._consumers.setdefault(src, []).append(node.name)

    # -- execution ----------------------------------------------------------
    def build(self, sim: Simulator) -> dict[str, list[int]]:
        """Instantiate all processes on ``sim``; returns the (live)
        result lists per sink, filled as the simulation runs."""
        for node in self._nodes.values():
            for src in node.inputs:
                if src not in self._nodes:
                    raise NetworkError(
                        f"node {node.name!r} reads unknown node {src!r}"
                    )
        # One channel per graph edge.
        channels: dict[tuple[str, str], Channel] = {}
        for src, consumers in self._consumers.items():
            for dst in consumers:
                channels[(src, dst)] = self._channel_cls(sim, f"{src}->{dst}")
        results: dict[str, list[int]] = {}

        for node in self._nodes.values():
            if node.kind == "source":
                outs = [channels[(node.name, c)] for c in self._consumers.get(node.name, [])]
                sim.add_process(node.name, _source_proc, node.values, outs)
            elif node.kind == "op":
                ins = [channels[(src, node.name)] for src in node.inputs]
                outs = [channels[(node.name, c)] for c in self._consumers.get(node.name, [])]
                sim.add_process(node.name, _op_proc, node.fn, ins, outs)
            else:  # sink
                results[node.name] = []
                ch = channels[(node.inputs[0], node.name)]
                sim.add_process(node.name, _sink_proc, ch, results[node.name])
        return results

    def run(self, sim: Optional[Simulator] = None) -> dict[str, list[int]]:
        """Build and run to quiescence; returns results per sink."""
        sim = sim or Simulator()
        results = self.build(sim)
        sim.run()
        return results

    def elaborate(
        self, sim: Optional[Simulator] = None, observe=None
    ) -> "HandshakeSimulation":
        """Instantiate the network as a :class:`repro.engine.Backend`.

        Where the control-step backends read final register contents,
        a dataflow network's observable state is the token streams its
        sinks collected; :attr:`HandshakeSimulation.registers` maps
        each sink to its *last* token (DISC-free networks produce no
        conflicts, but ILLEGAL tokens flowing into a sink are
        reported).

        ``observe`` attaches a :class:`repro.observe.Probe`.  The
        handshake style has no ``(control step, phase)`` clock, so
        token arrivals are reported as ``on_bus_drive(None, sink,
        token)`` in collection order after the run, and conflicts carry
        no location.
        """
        return HandshakeSimulation(self, sim or Simulator(), observe=observe)


class HandshakeSimulation:
    """Backend-protocol adapter over a built handshake network.

    Same result surface as the RT backends (``run``/``registers``/
    ``conflicts``/``clean``/``stats``), so E5 can collect one metrics
    row per style through :func:`repro.engine.run_metrics`.
    """

    #: Engine kind reported to observers (see repro.observe).
    backend_name = "handshake"

    def __init__(
        self, network: HandshakeNetwork, sim: Simulator, observe=None
    ) -> None:
        self.network = network
        self.sim = sim
        self.results = network.build(sim)
        self._probe = observe
        self.monitor = ConflictLog(
            listener=observe.on_conflict if observe is not None else None
        )
        self._ran = False

    def run(self) -> "HandshakeSimulation":
        probe = self._probe
        if probe is None:
            self.sim.run()
            self._ran = True
            self._record_illegal()
            return self
        import time as _time

        probe.on_run_start(self)
        t0 = _time.perf_counter()
        self.sim.run()
        self._ran = True
        for sink, tokens in self.results.items():
            for value in tokens:
                probe.on_bus_drive(None, sink, value)
        self._record_illegal()
        probe.on_run_end(self, _time.perf_counter() - t0)
        return self

    def _record_illegal(self) -> None:
        for sink, tokens in self.results.items():
            for value in tokens:
                if value == ILLEGAL:
                    self.monitor.record(ConflictEvent(sink, None, ()))

    @property
    def registers(self) -> dict[str, int]:
        """Last token collected per sink (the network's final state)."""
        return {
            sink: tokens[-1]
            for sink, tokens in self.results.items()
            if tokens
        }

    @property
    def conflicts(self) -> list[ConflictEvent]:
        return self.monitor.events

    @property
    def clean(self) -> bool:
        return self.monitor.clean

    @property
    def stats(self) -> SimStats:
        return self.sim.stats


def _source_proc(values: Sequence[int], outs: Sequence[Channel]):
    for value in values:
        for ch in outs:
            yield from ch.put(value)
    # Fall through: the process finishes, the stream ends.


def _op_proc(fn, ins: Sequence[Channel], outs: Sequence[Channel]):
    while True:
        operands = []
        for ch in ins:
            operands.append((yield from ch.get()))
        result = fn(*operands)
        for ch in outs:
            yield from ch.put(result)


def _sink_proc(ch: Channel, collected: list):
    while True:
        collected.append((yield from ch.get()))


# ----------------------------------------------------------------------
# canonical comparison workloads (used by E5)
# ----------------------------------------------------------------------
def chain_network(
    operands: Sequence[int], fn: Callable[[int, int], int]
) -> HandshakeNetwork:
    """A left-fold chain: ``((a0 fn a1) fn a2) fn ...`` -- the same
    dependence structure as the control-step chain model in
    :func:`repro.handshake.workloads.chain_rt_model`."""
    if len(operands) < 2:
        raise NetworkError("chain needs at least two operands")
    net = HandshakeNetwork()
    for i, value in enumerate(operands):
        net.source(f"a{i}", [value])
    prev = net.op("op1", fn, "a0", "a1")
    for i in range(2, len(operands)):
        prev = net.op(f"op{i}", fn, prev, f"a{i}")
    net.sink("out", prev)
    return net
