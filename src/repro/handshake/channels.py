"""Four-phase request/acknowledge handshake channels.

The paper motivates its control-step scheme by contrast with the usual
way of modeling abstract timing in VHDL without clocks (§2.7):

    "Execution is very fast, because we need not to deal with
    asynchronous handshake, as it is often be used for exchanging
    values between modules when more abstract timing is modeled by
    means of VHDL without introducing physical time."

This package implements exactly that conventional style -- modules
exchanging values over req/ack channels, all in delta time -- so the
claim can be measured (experiment E5).  A value transfer costs one
full four-phase cycle:

    producer                     consumer
    --------                     --------
    data <= v; req <= '1'
                                 wait until req = '1'; read data
                                 ack <= '1'
    wait until ack = '1'
    req <= '0'
                                 wait until req = '0'; ack <= '0'
    wait until ack = '0'

i.e. at least four delta cycles of signaling per value per edge of the
dataflow graph -- versus the control-step scheme's six delta cycles per
step shared by *all* concurrent transfers.
"""

from __future__ import annotations

from typing import Any, Optional

from ..kernel import Driver, Signal, Simulator, wait_until
from ..core.values import DISC


class Channel:
    """A point-to-point handshake channel.

    Exactly one producer and one consumer may attach.  Both sides are
    generator helpers used with ``yield from`` inside kernel processes::

        def producer_proc():
            yield from ch.put(42)

        def consumer_proc():
            value = yield from ch.get()
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self._sim = sim
        self.req: Signal = sim.signal(f"{name}.req", init=0)
        self.ack: Signal = sim.signal(f"{name}.ack", init=0)
        self.data: Signal = sim.signal(f"{name}.data", init=DISC)
        self._req_drv: Optional[Driver] = None
        self._ack_drv: Optional[Driver] = None
        self._data_drv: Optional[Driver] = None

    # -- attachment ------------------------------------------------------
    def _producer_drivers(self) -> tuple[Driver, Driver]:
        if self._req_drv is None:
            self._req_drv = self._sim.driver(self.req, owner=f"{self.name}.prod")
            self._data_drv = self._sim.driver(self.data, owner=f"{self.name}.prod")
        return self._req_drv, self._data_drv

    def _consumer_driver(self) -> Driver:
        if self._ack_drv is None:
            self._ack_drv = self._sim.driver(self.ack, owner=f"{self.name}.cons")
        return self._ack_drv

    # -- protocol ---------------------------------------------------------
    def put(self, value: Any):
        """Producer side of one four-phase transfer (generator)."""
        req_drv, data_drv = self._producer_drivers()
        data_drv.set(value)
        req_drv.set(1)
        yield from _wait_level(self.ack, 1)
        req_drv.set(0)
        yield from _wait_level(self.ack, 0)

    def get(self):
        """Consumer side of one four-phase transfer (generator).

        Returns the transferred value (via the generator's return
        value, i.e. ``value = yield from ch.get()``).
        """
        ack_drv = self._consumer_driver()
        yield from _wait_level(self.req, 1)
        value = self.data.value
        ack_drv.set(1)
        yield from _wait_level(self.req, 0)
        ack_drv.set(0)
        return value


def _wait_level(sig: Signal, value: int):
    """Wait until ``sig`` is at ``value``, returning immediately if it
    already is.

    VHDL's ``wait until`` resumes only on *events*; a handshake partner
    that raised its signal before we started waiting would deadlock us.
    The idiomatic VHDL fix is ``if sig /= v then wait until sig = v;
    end if;`` in a loop -- reproduced here.
    """
    while sig.value != value:
        yield wait_until(lambda: sig.value == value, sig)


class TwoPhaseChannel(Channel):
    """Transition-signaling (two-phase / NRZ) handshake channel.

    The strongest conventional baseline: a transfer costs one *req*
    transition and one *ack* transition (plus the data event) instead
    of the four-phase protocol's four -- there is no return-to-zero.
    Used by the E5 study to bound what any handshake style can achieve.

        producer                     consumer
        --------                     --------
        data <= v; toggle req
                                     wait req /= ack; read data
                                     toggle ack
        wait req = ack

    Each side tracks its own protocol parity in a process-local
    variable (the VHDL idiom): reading back one's *own* just-toggled
    signal within the same delta cycle would see the stale value and
    double-consume a token.
    """

    def __init__(self, sim, name: str) -> None:
        super().__init__(sim, name)
        self._producer_parity = 0
        self._consumer_parity = 0

    def put(self, value: Any):
        req_drv, data_drv = self._producer_drivers()
        data_drv.set(value)
        self._producer_parity ^= 1
        parity = self._producer_parity
        req_drv.set(parity)
        # Wait for the acknowledge transition (ack catches up to req).
        while self.ack.value != parity:
            yield wait_until(lambda: self.ack.value == parity, self.ack)

    def get(self):
        ack_drv = self._consumer_driver()
        expected = self._consumer_parity ^ 1
        while self.req.value != expected:
            yield wait_until(lambda: self.req.value == expected, self.req)
        value = self.data.value
        self._consumer_parity = expected
        ack_drv.set(expected)
        return value
