"""The service flight recorder: post-mortem state, not just counters.

A fixed-size ring of the most recent wide access events (the same
dictionaries :mod:`repro.observe.log` writes) rides along with every
server, cost one deque append per request.  When something goes wrong
-- any 5xx response, a sweep failure, or an operator ``SIGUSR1`` --
the ring is captured together with the engine's health snapshot --
to a timestamped JSON file when a dump directory is configured
(``repro serve`` defaults to the working directory; embedded servers
keep dumps in memory only) -- so the requests *leading up to* the
failure are explained, not merely counted.  ``GET /v1/debug/last``
serves the most recent dump (or the live ring when nothing has been
dumped yet).

Dumps are rate-limited (``min_interval_s``) so an error storm -- say a
503 burst under overload -- produces one explanatory file, not one
file per rejected request.  The dump format is documented in
``docs/serving.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Thread-safe bounded ring of wide events with dump-to-file."""

    def __init__(
        self,
        capacity: int = 256,
        directory: Optional[str] = None,
        min_interval_s: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: where dump files land; None keeps dumps in memory only
        #: (``last()`` still serves them) -- embedded/test servers must
        #: not litter the caller's working directory.
        self.directory = directory
        self.min_interval_s = min_interval_s
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: lifetime dump count (healthz / debug endpoint)
        self.dumps = 0
        self._last_dump: Optional[Dict[str, Any]] = None
        self._last_dump_path: Optional[str] = None
        self._last_dump_at = 0.0  # monotonic

    def record(self, event: Mapping[str, Any]) -> None:
        """Append one wide event (the per-request hot-path cost)."""
        with self._lock:
            self._ring.append(dict(event))

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    def dump(
        self,
        reason: str,
        extra: Optional[Mapping[str, Any]] = None,
        force: bool = False,
    ) -> Optional[str]:
        """Capture the ring; returns the dump file's path.

        Returns None when suppressed by the rate limit (``force=True``
        bypasses it -- the SIGUSR1 path, where an operator asked) or
        when no ``directory`` is configured -- the dump is then held in
        memory only, still served by :meth:`last`."""
        now = time.monotonic()
        with self._lock:
            if not force and (now - self._last_dump_at) < self.min_interval_s:
                return None
            self._last_dump_at = now
            records = list(self._ring)
            self.dumps += 1
            seq = self.dumps
        payload: Dict[str, Any] = {
            "event": "flight_dump",
            "reason": reason,
            "ts": round(time.time(), 6),
            "seq": seq,
            "records": records,
        }
        if extra:
            payload.update(extra)
        path = None
        if self.directory is not None:
            stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
            path = os.path.join(
                self.directory, f"flight-{stamp}-{seq:03d}-{reason}.json"
            )
            os.makedirs(self.directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        with self._lock:
            self._last_dump = payload
            self._last_dump_path = path
        return path

    def last(self) -> Dict[str, Any]:
        """The ``GET /v1/debug/last`` payload: the most recent dump,
        or a live ring snapshot when nothing has been dumped yet."""
        with self._lock:
            if self._last_dump is not None:
                return dict(self._last_dump, path=self._last_dump_path)
            return {
                "event": "flight",
                "reason": None,
                "dumps": 0,
                "records": list(self._ring),
            }
