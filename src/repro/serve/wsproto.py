"""Minimal RFC 6455 WebSocket framing (stdlib only).

Just enough of the protocol for the simulation service's
``GET /v1/stream`` endpoint: the opening handshake digest, unfragmented
text/binary/control frames, client-side masking, 16/64-bit extended
lengths, and clean close.  Compression, fragmentation and extensions
are deliberately out of scope -- a frame with FIN unset is rejected.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from typing import Tuple

#: RFC 6455 §1.3 handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Opcodes (RFC 6455 §5.2).
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Upper bound on a single inbound frame payload (same 10 MiB cap as
#: the HTTP body limit; a model document comfortably fits).
MAX_FRAME = 10 * 1024 * 1024


class WsError(ValueError):
    """A protocol violation; the connection should be dropped."""


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's key."""
    digest = hashlib.sha1((client_key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """One unfragmented frame.  Servers send unmasked (``mask=False``);
    clients must mask (``mask=True``, random key)."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if not mask:
        return bytes(header) + payload
    key = os.urandom(4)
    header += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + masked


def encode_text(text: str, mask: bool = False) -> bytes:
    return encode_frame(text.encode("utf-8"), OP_TEXT, mask=mask)


def encode_close(code: int = 1000, reason: str = "", mask: bool = False) -> bytes:
    payload = struct.pack("!H", code) + reason.encode("utf-8")
    return encode_frame(payload, OP_CLOSE, mask=mask)


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one frame; returns ``(opcode, payload)``.

    Raises :class:`asyncio.IncompleteReadError` at EOF and
    :class:`WsError` on protocol violations (fragmentation, oversized
    payloads, reserved bits)."""
    head = await reader.readexactly(2)
    fin = head[0] & 0x80
    if head[0] & 0x70:
        raise WsError("reserved bits set (extensions are not supported)")
    opcode = head[0] & 0x0F
    if not fin:
        raise WsError("fragmented frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    if length == 126:
        (length,) = struct.unpack("!H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", await reader.readexactly(8))
    if length > MAX_FRAME:
        raise WsError(f"frame of {length} bytes exceeds the {MAX_FRAME} cap")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


def decode_frame(data: bytes) -> Tuple[int, bytes, int]:
    """Synchronous single-frame decode for buffered clients/tests.

    Returns ``(opcode, payload, consumed)``; raises
    :class:`IndexError`/:class:`struct.error` when ``data`` is short.
    """
    fin = data[0] & 0x80
    if not fin:
        raise WsError("fragmented frames are not supported")
    opcode = data[0] & 0x0F
    masked = data[1] & 0x80
    length = data[1] & 0x7F
    pos = 2
    if length == 126:
        (length,) = struct.unpack("!H", data[pos:pos + 2])
        pos += 2
    elif length == 127:
        (length,) = struct.unpack("!Q", data[pos:pos + 8])
        pos += 8
    key = None
    if masked:
        key = data[pos:pos + 4]
        if len(key) < 4:
            raise IndexError("short mask")
        pos += 4
    end = pos + length
    if len(data) < end:
        raise IndexError("short payload")
    payload = data[pos:end]
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload, end
