"""The asyncio HTTP + WebSocket simulation service.

One :class:`ServeServer` owns the three moving parts:

* a :class:`~repro.serve.cache.ModelCache` keyed by ``model_digest``
  (warm-started from the on-disk ``plans/v1`` tier when a PlanCache is
  attached),
* a :class:`~repro.serve.batcher.BatchingEngine` coalescing concurrent
  requests per design into single plane sweeps on a thread-pool
  executor,
* a hand-rolled HTTP/1.1 transport (stdlib ``asyncio.start_server``;
  keep-alive, NDJSON bodies) with an RFC 6455 WebSocket upgrade at
  ``GET /v1/stream``.

Routes::

    GET  /v1/healthz    one JSON health record (engine + cache stats)
    GET  /v1/metrics    Prometheus text exposition of the REGISTRY
    GET  /v1/models     NDJSON: one record per resident design
    POST /v1/models     submit a model document -> digest record
    POST /v1/simulate   one simulate request -> NDJSON records
    POST /v1/verify     one verify request -> NDJSON records
    GET  /v1/stream     WebSocket: ops submit/simulate/verify/watch/
                        stats/ping, multiplexed per connection

Mid-sweep client disconnects are detected on both transports (an EOF
watchdog on HTTP, the frame reader on WebSocket) and cancel the
request's future, so the batcher discards the lane instead of
resolving into the void.  WebSocket ``watch`` subscriptions reuse the
per-client :class:`~repro.observe.stream.RecordQueue` backpressure
accounting of the NDJSON stream server: every watcher has its own
bounded queue with ``accepted``/``dropped`` counters, and a stalled
watcher loses *its own* records, never another client's.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Set, Tuple

from ..engine.plan import PlanCacheArg
from ..observe.log import AccessLogWriter, wide_event
from ..observe.metrics import (
    REGISTRY,
    record_serve_model,
    record_serve_request,
    record_serve_stage,
    serve_models,
)
from ..observe.stream import RecordQueue
from ..observe.trace import MAIN_TID, RequestContext, SpanTracer, new_trace_id
from . import wsproto
from .batcher import BatchingEngine
from .cache import ModelCache
from .flight import FlightRecorder
from .protocol import (
    ERROR_STATUS,
    NDJSON_CONTENT_TYPE,
    ServeError,
    SimRequest,
    dump_record,
    encode_ndjson,
    parse_sim_request,
    result_record,
)

#: Upper bound on one request body / header block.
MAX_BODY = 10 * 1024 * 1024
MAX_HEAD = 64 * 1024

_REASONS = {status: reason for status, reason in ERROR_STATUS.values()}
_REASONS.setdefault(200, "OK")


def _lane_records(lane: dict, digest: str, request_id: Any) -> List[dict]:
    """NDJSON response records of one lane result: conflicts, then
    violations, then the terminal result record."""
    records: List[dict] = []
    for conflict in lane["conflicts"]:
        record = dict(conflict)
        if request_id is not None:
            record["id"] = request_id
        records.append(record)
    report = lane.get("report")
    if report is not None:
        for violation in report["violations"]:
            record = {"event": "violation", **violation}
            if request_id is not None:
                record["id"] = request_id
            records.append(record)
    records.append(result_record(
        request_id,
        digest,
        lane["registers"],
        lane["clean"],
        lane["batch"],
        lane["queue_ms"],
        lane["sweep_ms"],
        report=report,
        trace=lane.get("trace"),
    ))
    return records


class _Watcher:
    """One WebSocket watch subscription with its bounded record queue."""

    __slots__ = ("conn", "digests", "queue", "sent", "draining")

    def __init__(self, conn: "_WsConn", max_queue: int) -> None:
        self.conn = conn
        #: None = every design; else the subscribed digest set.
        self.digests: Optional[Set[str]] = None
        self.queue = RecordQueue(maxsize=max_queue)
        self.sent = 0
        self.draining = False


class _HttpConn:
    """Per-HTTP-connection read state.

    ``pending`` is the connection's one outstanding socket read: while
    a simulate/verify request rides a sweep it doubles as the EOF
    watchdog (a disconnect completes it empty), and when it completes
    with data those bytes are the next pipelined request -- either way
    it is *the* read :meth:`ServeServer._read_request` would issue
    next, so nothing is torn down between requests.  ``carry`` holds
    bytes already read past the previous request's body.
    """

    __slots__ = ("reader", "carry", "pending", "tid")

    def __init__(self, reader, tid: int = MAIN_TID) -> None:
        self.reader = reader
        self.carry = b""
        self.pending: Optional["asyncio.Task[bytes]"] = None
        #: trace track: this connection's request spans render on
        #: their own Chrome-trace row (MAIN_TID when untraced).
        self.tid = tid

    async def next_chunk(self) -> bytes:
        """One socket read, honoring the outstanding watchdog read."""
        task = self.pending
        if task is not None:
            self.pending = None
            return await task
        return await self.reader.read(8192)

    def watchdog(self) -> "asyncio.Task[bytes]":
        """The connection's outstanding read, started if needed."""
        if self.pending is None:
            self.pending = asyncio.ensure_future(self.reader.read(8192))
        return self.pending


class _WsConn:
    """Per-WebSocket-connection state (writer lock, op tasks)."""

    __slots__ = ("reader", "writer", "lock", "tasks", "peer", "tid")

    def __init__(self, reader, writer, tid: int = MAIN_TID) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.tasks: Set[asyncio.Task] = set()
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if peer else "?"
        self.tid = tid


class ServeServer:
    """The simulation service (construct, ``await start()``, serve)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "auto",
        max_batch: int = 64,
        max_pending: int = 256,
        batch_window_ms: float = 0.0,
        plan_cache: PlanCacheArg = None,
        max_models: int = 64,
        max_workers: int = 4,
        drain_timeout: float = 10.0,
        watch_queue: int = 1024,
        reuse_sims: bool = True,
        trace: bool = False,
        trace_out: Optional[str] = None,
        access_log: Optional[str] = None,
        flight_size: int = 256,
        flight_dir: Optional[str] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._drain_timeout = drain_timeout
        self._watch_queue = watch_queue
        #: span sink for request-scoped tracing (None = disabled; the
        #: request path then does no span work at all).
        self.tracer: Optional[SpanTracer] = (
            SpanTracer() if (trace or trace_out) else None
        )
        self._trace_out = trace_out
        #: wide-event JSON access log ("-" = stdout; None = disabled).
        self.access: Optional[AccessLogWriter] = (
            AccessLogWriter(access_log) if access_log else None
        )
        #: always-on ring of recent wide events, dumped on 5xx/SIGUSR1.
        self.flight = FlightRecorder(capacity=flight_size, directory=flight_dir)
        self.models = ModelCache(plan_cache=plan_cache, max_models=max_models)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve-sweep"
        )
        self.engine = BatchingEngine(
            backend=backend,
            max_batch=max_batch,
            max_pending=max_pending,
            batch_window_ms=batch_window_ms,
            executor=self._executor,
            reuse_sims=reuse_sims,
            on_records=self._fanout,
            tracer=self.tracer,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._watchers: Set[_Watcher] = set()
        self._conns: Set[Any] = set()
        self._started = 0.0
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServeServer":
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sock = self._server.sockets[0]
        self._host, self._port = sock.getsockname()[:2]
        self._started = time.monotonic()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    async def close(self) -> bool:
        """Graceful shutdown: stop accepting, drain in-flight sweeps,
        close watcher connections.  Returns True when fully drained."""
        self._closing = True
        if self._server is not None:
            self._server.close()
        drained = await self.engine.close(timeout=self._drain_timeout)
        for watcher in list(self._watchers):
            try:
                watcher.conn.writer.write(
                    wsproto.encode_close(1001, "server closing")
                )
                # A stalled watcher must not stall shutdown: the close
                # frame is best-effort, bounded by its own tiny budget.
                await asyncio.wait_for(watcher.conn.writer.drain(), 1.0)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            watcher.conn.writer.close()
        self._watchers.clear()
        # Idle keep-alive connections are parked on a read; closing the
        # transport wakes their handler tasks with EOF so nothing
        # outlives the loop.
        for writer in list(self._conns):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        self._executor.shutdown(wait=True)
        if self.tracer is not None and self._trace_out:
            self.tracer.write(self._trace_out)
        if self.access is not None:
            self.access.close()
        return drained

    # ------------------------------------------------------------------
    # connection loop (HTTP/1.1 keep-alive)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        tid = MAIN_TID
        if self.tracer is not None:
            peer = writer.get_extra_info("peername")
            tid = self.tracer.alloc_track(
                f"conn {peer[0]}:{peer[1]}" if peer else "conn ?"
            )
        conn = _HttpConn(reader, tid=tid)
        self._conns.add(writer)
        try:
            while True:
                parsed = await self._read_request(conn)
                if parsed is None:
                    return
                method, path, headers, body, t_first = parsed
                if headers.get("upgrade", "").lower() == "websocket":
                    await self._handle_websocket(reader, writer, headers, tid)
                    return
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and not self._closing
                )
                done = await self._route(
                    method, path, headers, body, conn, writer, keep_alive,
                    t_first,
                )
                if not done or not keep_alive:
                    return
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        except ServeError as exc:
            try:
                writer.write(self._response(
                    exc.status, encode_ndjson([exc.record()]), close=True
                ))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            self._conns.discard(writer)
            if conn.pending is not None:
                conn.pending.cancel()
            writer.close()

    async def _read_request(self, conn: _HttpConn):
        """Parse one request head + body; returns None on clean EOF.

        ``conn.carry`` holds bytes already read past the previous
        body (pipelined requests) -- they are the start of this one.

        The returned tuple ends with ``t_first``: the clock reading at
        the first bytes of this request, the start of its ``accept``
        span (None only when the head arrived fully pipelined)."""
        buf = bytearray(conn.carry)
        conn.carry = b""
        t_first = time.perf_counter() if buf else None
        while b"\r\n\r\n" not in buf:
            if len(buf) > MAX_HEAD:
                raise ServeError("too_large", "request head too large")
            chunk = await conn.next_chunk()
            if not chunk:
                if buf.strip():
                    raise ServeError("bad_request", "truncated request head")
                return None
            if t_first is None:
                t_first = time.perf_counter()
            buf += chunk
        head, _, rest = bytes(buf).partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            raise ServeError("bad_request", f"malformed request line {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise ServeError("bad_request", "chunked bodies are not supported")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServeError("bad_request", "bad Content-Length")
        if length > MAX_BODY:
            raise ServeError("too_large", f"body exceeds {MAX_BODY} bytes")
        body = rest[:length]
        conn.carry = rest[length:]
        if len(body) < length:
            body += await conn.reader.readexactly(length - len(body))
        return method, path.split("?", 1)[0], headers, body, t_first

    def _response(
        self,
        status: int,
        body: bytes,
        content_type: str = NDJSON_CONTENT_TYPE,
        close: bool = False,
    ) -> bytes:
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self, method, path, headers, body, conn, writer, keep_alive,
        t_first=None,
    ) -> bool:
        """Dispatch one request; returns False when the connection died."""
        t0 = time.perf_counter()
        op = path.rsplit("/", 1)[-1] or "?"
        status, payload, content_type = 200, b"", NDJSON_CONTENT_TYPE
        code = "ok"
        request: Optional[SimRequest] = None
        ctx: Optional[RequestContext] = None
        result: Optional[dict] = None
        try:
            if path == "/v1/healthz" and method == "GET":
                payload = encode_ndjson([self._health_record()])
            elif path == "/v1/metrics" and method == "GET":
                payload = REGISTRY.to_prometheus().encode("utf-8")
                content_type = "text/plain; version=0.0.4"
            elif path == "/v1/debug/last" and method == "GET":
                payload = encode_ndjson([self.flight.last()])
            elif path == "/v1/models" and method == "GET":
                payload = encode_ndjson([
                    {"event": "model", **row}
                    for row in self.models.describe()
                ])
            elif path == "/v1/models" and method == "POST":
                payload = encode_ndjson([self._submit(self._json_body(body))])
            elif path in ("/v1/simulate", "/v1/verify") and method == "POST":
                parse_t0 = time.perf_counter()
                request = parse_sim_request(
                    self._json_body(body), verify=path.endswith("verify")
                )
                if request.trace is None:
                    request.trace = new_trace_id()
                if self.tracer is not None:
                    ctx = RequestContext(
                        request.trace, self.tracer, tid=conn.tid, op=op
                    )
                    if t_first is not None:
                        ctx.add_span("accept", t_first, parse_t0)
                    ctx.add_span("parse", parse_t0, time.perf_counter())
                records = await self._simulate_watched(request, conn, ctx)
                if records is None:  # client went away mid-sweep
                    self._access(wide_event(
                        trace=request.trace, op=op, method=method, path=path,
                        id=request.id, status=499, code="disconnected",
                        ms=round((time.perf_counter() - t0) * 1000.0, 3),
                    ))
                    return False
                result = records[-1]
                payload = encode_ndjson(records)
            elif path in (
                "/v1/healthz", "/v1/metrics", "/v1/models",
                "/v1/simulate", "/v1/verify", "/v1/debug/last",
            ):
                raise ServeError(
                    "method_not_allowed", f"{method} not allowed on {path}"
                )
            else:
                raise ServeError("not_found", f"unknown route {path}")
        except ServeError as exc:
            status, code = exc.status, exc.code
            payload = encode_ndjson([exc.record(
                id=request.id if request is not None else None,
                trace=request.trace if request is not None else None,
            )])
        ms = (time.perf_counter() - t0) * 1000.0
        if op in ("simulate", "verify", "models"):
            record_serve_request(op, code, ms)
        if op in ("simulate", "verify"):
            event = wide_event(
                trace=request.trace if request is not None else None,
                op=op,
                method=method,
                path=path,
                id=request.id if request is not None else None,
                digest=(result or {}).get("digest"),
                batch=(result or {}).get("batch"),
                queue_ms=(result or {}).get("queue_ms"),
                sweep_ms=(result or {}).get("sweep_ms"),
                status=status,
                code=None if code == "ok" else code,
                ms=round(ms, 3),
            )
            self._access(event)
            if status >= 500:
                self.dump_flight(f"http-{status}")
        ser_t0 = time.perf_counter()
        try:
            writer.write(self._response(
                status, payload, content_type, close=not keep_alive
            ))
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        if op in ("simulate", "verify"):
            record_serve_stage(
                "serialize", (time.perf_counter() - ser_t0) * 1000.0
            )
            if ctx is not None:
                ctx.add_span("serialize", ser_t0, time.perf_counter())
        return True

    def _access(self, event: dict) -> None:
        """One wide event -> flight ring (always) + access log (if on)."""
        self.flight.record(event)
        if self.access is not None:
            self.access.write(event)

    def dump_flight(self, reason: str, force: bool = False) -> Optional[str]:
        """Dump the flight ring with the health snapshot attached.

        Thread-safe (SIGUSR1 handlers call it from the main thread
        while the loop thread serves)."""
        return self.flight.dump(
            reason, extra={"health": self._health_record()}, force=force
        )

    @staticmethod
    def _json_body(body: bytes) -> Any:
        if not body.strip():
            raise ServeError("bad_request", "empty request body")
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServeError("bad_request", f"body is not valid JSON: {exc}")

    def _submit(self, document: Any) -> dict:
        if isinstance(document, dict) and isinstance(
            document.get("model"), dict
        ):
            document = document["model"]
        if not isinstance(document, dict):
            raise ServeError(
                "bad_request", "body must be a model document object"
            )
        entry, cached = self.models.submit(document)
        record_serve_model(cached)
        serve_models().set(len(self.models))
        return {"event": "model", "cached": cached, **entry.describe()}

    async def _simulate(
        self, request: SimRequest, ctx: Optional[RequestContext] = None
    ) -> List[dict]:
        """The transport-independent request path."""
        entry, cached = self.models.resolve(request.model)
        if cached is not None:
            record_serve_model(cached)
            serve_models().set(len(self.models))
        lane = await self.engine.submit(entry, request, ctx=ctx)
        return _lane_records(lane, entry.digest, request.id)

    async def _simulate_watched(
        self,
        request: SimRequest,
        conn: _HttpConn,
        ctx: Optional[RequestContext] = None,
    ):
        """Run :meth:`_simulate` racing the connection's watchdog read.

        Returns the response records, or None when the client
        disconnected mid-sweep (the lane future is cancelled so the
        batcher discards it).  The watchdog is the connection's one
        persistent outstanding read (:class:`_HttpConn`): it is *not*
        torn down per request -- left pending it becomes the next
        request's head read, and bytes it catches mid-sweep are a
        pipelined request stashed in ``conn.carry``.
        """
        sim_task = asyncio.ensure_future(self._simulate(request, ctx))
        watchdog = conn.watchdog()
        try:
            await asyncio.wait(
                (sim_task, watchdog), return_when=asyncio.FIRST_COMPLETED
            )
            if watchdog.done():
                conn.pending = None
                data = watchdog.result()
                if not data and not sim_task.done():
                    sim_task.cancel()
                    return None
                conn.carry = data
            try:
                return await sim_task
            except asyncio.CancelledError:
                return None
        finally:
            if not sim_task.done():
                sim_task.cancel()

    def _health_record(self) -> dict:
        record = {
            "event": "health",
            "status": "draining" if self._closing else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "models": len(self.models),
            "submits": self.models.submits,
            "evictions": self.models.evictions,
            "watchers": len(self._watchers),
            "flight_dumps": self.flight.dumps,
            **self.engine.stats(),
        }
        if self.access is not None:
            record["access_log"] = {
                "accepted": self.access.accepted,
                "dropped": self.access.dropped,
            }
        return record

    # ------------------------------------------------------------------
    # WebSocket transport
    # ------------------------------------------------------------------
    async def _handle_websocket(
        self, reader, writer, headers, tid: int = MAIN_TID
    ) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            writer.write(self._response(
                400,
                encode_ndjson([ServeError(
                    "bad_request", "missing Sec-WebSocket-Key"
                ).record()]),
                close=True,
            ))
            await writer.drain()
            return
        accept = wsproto.accept_key(key)
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept}\r\n"
            "\r\n"
        ).encode("latin-1"))
        await writer.drain()
        # Cap the transport's user-space write buffer so ``drain()``
        # exerts real backpressure on a slow reader: watch fan-out then
        # fills the watcher's *bounded* RecordQueue and overflow is
        # counted as that client's drops, instead of accumulating
        # unbounded (and unaccounted) in the transport buffer.
        transport = writer.transport
        if transport is not None:
            transport.set_write_buffer_limits(high=64 * 1024)
        conn = _WsConn(reader, writer, tid=tid)
        watcher: Optional[_Watcher] = None
        try:
            while True:
                try:
                    opcode, payload = await wsproto.read_frame(reader)
                except (wsproto.WsError, asyncio.IncompleteReadError,
                        ConnectionError, OSError):
                    return
                if opcode == wsproto.OP_CLOSE:
                    async with conn.lock:
                        writer.write(wsproto.encode_close(1000))
                        await writer.drain()
                    return
                if opcode == wsproto.OP_PING:
                    async with conn.lock:
                        writer.write(wsproto.encode_frame(
                            payload, wsproto.OP_PONG
                        ))
                        await writer.drain()
                    continue
                if opcode not in (wsproto.OP_TEXT, wsproto.OP_BINARY):
                    continue
                try:
                    message = json.loads(payload)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    await self._ws_send(conn, ServeError(
                        "bad_request", "frame is not valid JSON"
                    ).record())
                    continue
                watcher = await self._ws_dispatch(conn, message, watcher)
        finally:
            if watcher is not None:
                self._watchers.discard(watcher)
                watcher.queue.close()
            for task in list(conn.tasks):
                task.cancel()
            writer.close()

    async def _ws_send(self, conn: _WsConn, record: dict) -> None:
        async with conn.lock:
            conn.writer.write(wsproto.encode_text(dump_record(record)))
            await conn.writer.drain()

    async def _ws_dispatch(
        self, conn: _WsConn, message: Any, watcher: Optional[_Watcher]
    ) -> Optional[_Watcher]:
        """Handle one op frame; sim ops run as tasks so a slow sweep
        never blocks the frame reader (that is what detects disconnects
        and accepts further multiplexed ops)."""
        if not isinstance(message, dict):
            await self._ws_send(conn, ServeError(
                "bad_request", "op frame must be a JSON object"
            ).record())
            return watcher
        op = message.get("op")
        req_id = message.get("id")
        if op == "ping":
            await self._ws_send(conn, {"event": "pong", "id": req_id})
        elif op == "stats":
            record = self._health_record()
            record["id"] = req_id
            if watcher is not None:
                record["watch"] = {
                    "sent": watcher.sent,
                    "accepted": watcher.queue.accepted,
                    "dropped": watcher.queue.dropped,
                }
            await self._ws_send(conn, record)
        elif op == "submit":
            t0 = time.perf_counter()
            try:
                record = self._submit(message.get("model"))
                record["id"] = req_id
                code = "ok"
            except ServeError as exc:
                record, code = exc.record(req_id), exc.code
            record_serve_request(
                "models", code, (time.perf_counter() - t0) * 1000.0
            )
            await self._ws_send(conn, record)
        elif op in ("simulate", "verify"):
            task = asyncio.ensure_future(
                self._ws_simulate(conn, message, op)
            )
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)
        elif op == "watch":
            if watcher is None:
                watcher = _Watcher(conn, self._watch_queue)
                self._watchers.add(watcher)
            digest = message.get("digest")
            if digest is None:
                watcher.digests = None
            elif watcher.digests is None:
                watcher.digests = {str(digest)}
            else:
                watcher.digests.add(str(digest))
            await self._ws_send(conn, {
                "event": "watching",
                "digest": digest,
                "id": req_id,
            })
        else:
            await self._ws_send(conn, ServeError(
                "bad_request", f"unknown op {op!r}"
            ).record(req_id))
        return watcher

    async def _ws_simulate(self, conn: _WsConn, message: dict, op: str) -> None:
        t0 = time.perf_counter()
        code = "ok"
        request: Optional[SimRequest] = None
        ctx: Optional[RequestContext] = None
        result: Optional[dict] = None
        try:
            request = parse_sim_request(message, verify=op == "verify")
            if request.trace is None:
                request.trace = new_trace_id()
            if self.tracer is not None:
                ctx = RequestContext(
                    request.trace, self.tracer, tid=conn.tid, op=op
                )
                ctx.add_span("parse", t0, time.perf_counter())
            records = await self._simulate(request, ctx)
            result = records[-1]
        except ServeError as exc:
            code = exc.code
            records = [exc.record(
                message.get("id"),
                trace=request.trace if request is not None else None,
            )]
        except asyncio.CancelledError:
            record_serve_request(
                op, "cancelled", (time.perf_counter() - t0) * 1000.0
            )
            raise
        ms = (time.perf_counter() - t0) * 1000.0
        record_serve_request(op, code, ms)
        status = 200 if code == "ok" else ERROR_STATUS[code][0]
        self._access(wide_event(
            trace=request.trace if request is not None else None,
            op=op,
            method="ws",
            id=message.get("id"),
            digest=(result or {}).get("digest"),
            batch=(result or {}).get("batch"),
            queue_ms=(result or {}).get("queue_ms"),
            sweep_ms=(result or {}).get("sweep_ms"),
            status=status,
            code=None if code == "ok" else code,
            ms=round(ms, 3),
        ))
        if status >= 500:
            self.dump_flight(f"ws-{status}")
        ser_t0 = time.perf_counter()
        try:
            async with conn.lock:
                for record in records:
                    conn.writer.write(wsproto.encode_text(dump_record(record)))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            return
        record_serve_stage("serialize", (time.perf_counter() - ser_t0) * 1000.0)
        if ctx is not None:
            ctx.add_span("serialize", ser_t0, time.perf_counter())

    # ------------------------------------------------------------------
    # watch fan-out (called by the batcher on the loop thread)
    # ------------------------------------------------------------------
    def _fanout(self, digest: str, records: List[dict]) -> None:
        for watcher in list(self._watchers):
            if watcher.digests is not None and digest not in watcher.digests:
                continue
            for record in records:
                watcher.queue.offer(record)
            if not watcher.draining:
                watcher.draining = True
                asyncio.ensure_future(self._drain_watcher(watcher))

    async def _drain_watcher(self, watcher: _Watcher) -> None:
        try:
            while True:
                records = watcher.queue.drain()
                if not records:
                    # Clear the flag *before* the exit check: an offer
                    # racing this empty drain either lands in the
                    # re-drain below, or observes ``draining == False``
                    # in ``_fanout`` and schedules a fresh drainer --
                    # previously (flag cleared after returning) such a
                    # record was stranded until the next sweep.
                    watcher.draining = False
                    records = watcher.queue.drain()
                    if not records:
                        return
                    watcher.draining = True
                async with watcher.conn.lock:
                    for record in records:
                        watcher.conn.writer.write(
                            wsproto.encode_text(dump_record(record))
                        )
                    await watcher.conn.writer.drain()
                watcher.sent += len(records)
        except (ConnectionError, OSError):
            self._watchers.discard(watcher)
            watcher.draining = False
        except asyncio.CancelledError:
            watcher.draining = False
            raise


# ----------------------------------------------------------------------
# threaded harness (tests, the CLI, the bench driver)
# ----------------------------------------------------------------------
class ServeHandle:
    """A server running on its own event-loop thread."""

    def __init__(self, server: ServeServer, loop, thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def run(self, coro, timeout: float = 30.0):
        """Run a coroutine on the server loop (tests poke internals)."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def close(self, timeout: float = 30.0) -> bool:
        drained = self.run(self.server.close(), timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._loop.close()
        return drained

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_in_thread(**kwargs: Any) -> ServeHandle:
    """Boot a :class:`ServeServer` on a daemon event-loop thread and
    block until it accepts connections."""
    server = ServeServer(**kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    boot: Dict[str, Any] = {}

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind errors to the caller
            boot["error"] = exc
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(
        target=runner, name="repro-serve-loop", daemon=True
    )
    thread.start()
    started.wait(timeout=30.0)
    if "error" in boot:
        loop.close()
        raise boot["error"]
    return ServeHandle(server, loop, thread)
