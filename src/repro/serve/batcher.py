"""The per-design batching scheduler.

Concurrent single-vector simulate/verify requests against the same
design (and the same property set) coalesce into one
``compiled-batched`` plane sweep: the first request wakes the design's
worker, which drains everything else that queued behind it (up to
``max_batch``) into a single ``register_values`` batch, runs the sweep
on an executor thread, and de-multiplexes per-lane registers,
conflicts, monitor violations and clean flags back to each caller's
future.  Batching is *natural*: while one sweep is in flight on the
executor, new arrivals pile up in the queue and form the next batch --
no timer is needed at load, though ``batch_window_ms`` can force a
gathering pause (tests use it to pin deterministic batch shapes).

Admission control is a server-wide bound on queued requests
(``max_pending``): when the backlog is full a request is rejected
immediately with a ``queue_full`` error (HTTP 503) instead of growing
an unbounded queue.  Per-request deadlines cover queue wait and sweep:
requests already past their deadline when the batch forms are failed
without occupying a lane, and callers waiting on a future time out on
their own clock (the lane result of a timed-out or disconnected caller
is simply discarded -- the sweep itself is never torn down, matching
the cancellation semantics documented in ``docs/serving.md``).

Per-lane verdicts are bit-identical to scalar ``compiled`` runs: the
sweep reuses the exact differential-tested machinery of
:mod:`repro.engine.batched` and, for verify requests, the per-lane
trace replay of :func:`repro.observe.monitor.evaluate_trace` --
the same path ``repro.observe.monitor.check_model`` takes.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.values_np import have_numpy
from ..engine.plan import Plan
from ..observe import recorder
from ..observe.metrics import (
    record_serve_batch,
    record_serve_deadline_budget,
    record_serve_rejection,
    record_serve_stage,
    serve_queue_depth,
)
from ..observe.trace import MAIN_TID, RequestContext, SpanTracer
from ..observe.monitor import (
    Property,
    default_properties,
    evaluate_trace,
    monitored_watch_list,
    parse_properties,
)
from .cache import CachedDesign
from .protocol import ServeError, SimRequest

#: Backends the service can sweep with, and the auto preference order.
SERVE_BACKENDS = (
    "auto",
    "adaptive",
    "compiled",
    "compiled-py",
    "compiled-batched",
    "compiled-py-batched",
)

#: ``adaptive`` batch size at which the numpy plane sweep takes over
#: from the re-armed generated-kernel loop.  Below it, per-lane cost of
#: the scalar loop (~15us on Fig. 1) beats the batched backends' fixed
#: per-sweep numpy overhead; above it the batched plane amortizes.
ADAPTIVE_CROSSOVER = 32

#: Wakes a lane worker during shutdown.
_STOP = object()


def resolve_serve_backend(name: str) -> str:
    """Map ``auto`` to the best locally available sweep policy."""
    if name not in SERVE_BACKENDS:
        raise ValueError(
            f"unknown serve backend {name!r} (use one of {SERVE_BACKENDS})"
        )
    if name == "auto":
        return "adaptive"
    if name.endswith("-batched") and not have_numpy():
        raise ValueError(
            f"the {name} backend needs numpy (install repro[fast]) -- "
            "use --serve-backend compiled for the scalar fallback"
        )
    return name


# ----------------------------------------------------------------------
# the sweep itself (runs on an executor thread)
# ----------------------------------------------------------------------
def run_sweep(
    entry: CachedDesign,
    vectors: Sequence[Dict[str, int]],
    properties: Optional[Sequence[Property]],
    backend: str,
    state: Optional[dict] = None,
) -> List[dict]:
    """Execute one coalesced sweep; returns one lane dict per vector.

    Each lane dict carries ``registers`` (plain ints), ``conflicts``
    (wire-schema conflict records), ``clean``, and -- when properties
    were requested -- the lane's ``report``
    (:class:`~repro.observe.monitor.AssertionReport` ``to_dict``).

    ``backend`` selects the sweep realization: an explicit batched
    backend runs one numpy plane sweep over all vectors; a scalar
    backend runs the lanes through **one re-armed elaboration**
    (:meth:`~repro.engine.compiled.CompiledRTSimulation.rearm`) -- the
    serving hot path, ~15us per lane on Fig. 1; ``adaptive`` picks the
    re-armed generated-kernel loop below :data:`ADAPTIVE_CROSSOVER`
    lanes and the numpy plane above it.  All realizations are
    bit-identical per lane (differential-tested in ``tests/serve``).

    ``state``, when given, persists the armed elaboration across
    sweeps of the same lane (the caller must guarantee the lane's
    sweeps never overlap -- the per-lane worker serializes them).
    """
    model = entry.model
    plan: Plan = entry.plan
    watch = monitored_watch_list(model) if properties is not None else None
    if backend == "adaptive":
        if len(vectors) <= ADAPTIVE_CROSSOVER or not have_numpy():
            backend = "compiled-py"
        else:
            backend = "compiled-py-batched"
    lanes: List[dict] = []
    if backend.endswith("-batched"):
        sim = model.elaborate(
            backend=backend,
            register_values=list(vectors),
            plan=plan,
            watch=watch,
        )
        sim.run()
        for i in range(sim.batch_size):
            conflicts = sim.conflicts[i]
            lane = {
                "registers": sim.vector_registers(i),
                "conflicts": [recorder.conflict_event(e) for e in conflicts],
                "clean": bool(sim.clean_mask[i]),
            }
            if properties is not None:
                report = evaluate_trace(
                    model, sim.tracers[i], properties, conflicts
                )
                lane["report"] = report.to_dict()
                lane["clean"] = lane["clean"] and report.ok
            lanes.append(lane)
        return lanes
    # Scalar lanes share one armed elaboration: the compiled tables are
    # input-independent, so each lane is a value-plane reset + kernel
    # run instead of a fresh elaboration.
    key = (backend, properties is not None)
    sim = state.get(key) if state is not None else None
    if sim is None:
        sim = model.elaborate(backend=backend, plan=plan, watch=watch)
        if state is not None:
            state[key] = sim
    for vector in vectors:
        sim.rearm(vector)
        sim.run()
        conflicts = list(sim.conflicts)
        lane = {
            "registers": dict(sim.registers),
            "conflicts": [recorder.conflict_event(e) for e in conflicts],
            "clean": bool(sim.clean),
        }
        if properties is not None:
            report = evaluate_trace(model, sim.tracer, properties, conflicts)
            lane["report"] = report.to_dict()
            lane["clean"] = lane["clean"] and report.ok
        lanes.append(lane)
    return lanes


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
class PendingRequest:
    """One admitted request waiting for (or riding) a sweep."""

    __slots__ = (
        "vector", "deadline", "enqueued", "future", "id",
        "trace", "ctx", "budget_ms",
    )

    def __init__(
        self,
        vector: Dict[str, int],
        deadline: Optional[float],
        future: "asyncio.Future[dict]",
        request_id: Any,
        enqueued: float,
        trace: Optional[str] = None,
        ctx: Optional[RequestContext] = None,
        budget_ms: Optional[float] = None,
    ) -> None:
        self.vector = vector
        self.deadline = deadline  # loop-clock absolute, or None
        self.enqueued = enqueued
        self.future = future
        self.id = request_id
        #: the request's trace id, echoed on its result record
        self.trace = trace
        #: span plumbing (None when the server runs untraced)
        self.ctx = ctx
        self.budget_ms = budget_ms


class _Lane:
    """One (design, property-set) batching queue and its worker."""

    __slots__ = ("entry", "properties", "queue", "task", "key", "state", "tid")

    def __init__(
        self,
        entry: CachedDesign,
        properties: Optional[List[Property]],
        key: Tuple[str, Optional[str]],
        tid: int = MAIN_TID,
    ) -> None:
        self.entry = entry
        self.properties = properties
        self.key = key
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        #: armed-elaboration store for run_sweep (executor-confined:
        #: this lane's sweeps never overlap, the worker awaits each).
        self.state: dict = {}
        #: trace track: coalesce/sweep spans of this lane render on
        #: their own Chrome-trace row.
        self.tid = tid


class BatchingEngine:
    """Admission control + per-design lanes + executor dispatch."""

    def __init__(
        self,
        backend: str = "auto",
        max_batch: int = 64,
        max_pending: int = 256,
        batch_window_ms: float = 0.0,
        executor: Any = None,
        reuse_sims: bool = True,
        on_records: Optional[Callable[[str, List[dict]], None]] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.backend = resolve_serve_backend(backend)
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.batch_window_ms = batch_window_ms
        #: False drops the per-lane armed-elaboration store, forcing a
        #: fresh elaboration every sweep -- the bench ablation mode.
        self.reuse_sims = reuse_sims
        self._executor = executor
        #: observer hook: (digest, wire records of one sweep) -- the
        #: server fans these out to WebSocket watch subscriptions.
        self.on_records = on_records
        #: span sink shared with the server (None = tracing disabled;
        #: the hot path stays structurally free).
        self.tracer = tracer
        #: monotonically numbered sweeps -- the ``batch`` span arg that
        #: joins a request's queue span to the sweep it coalesced into.
        self._batch_seq = 0
        self._lanes: Dict[Tuple[str, Optional[str]], _Lane] = {}
        self._pending = 0
        self._in_flight: set = set()
        self._closing = False
        #: lifetime counters (healthz)
        self.sweeps = 0
        self.lanes_swept = 0
        self.rejected = 0
        self.expired = 0
        self.discarded = 0

    # -- lane management -------------------------------------------------
    def _lane_for(self, entry: CachedDesign, request: SimRequest) -> _Lane:
        key = (entry.digest, request.prop_key())
        lane = self._lanes.get(key)
        if lane is not None:
            return lane
        properties: Optional[List[Property]] = None
        if request.properties is not None:
            if request.properties == "default":
                properties = default_properties(entry.model)
            else:
                try:
                    properties = parse_properties(request.properties)
                except Exception as exc:
                    raise ServeError("bad_request", f"bad properties: {exc}")
        tid = (
            self.tracer.alloc_track(f"lane {entry.digest[:8]}")
            if self.tracer is not None
            else MAIN_TID
        )
        lane = _Lane(entry, properties, key, tid=tid)
        lane.task = asyncio.get_running_loop().create_task(
            self._worker(lane), name=f"repro-serve-lane-{entry.digest[:12]}"
        )
        self._lanes[key] = lane
        return lane

    # -- admission --------------------------------------------------------
    async def submit(
        self,
        entry: CachedDesign,
        request: SimRequest,
        ctx: Optional[RequestContext] = None,
    ) -> dict:
        """Admit one request and wait for its lane result.

        ``ctx`` (when the server traces) receives the request's
        ``queue`` span, cut when its batch dispatches and tagged with
        the batch sequence number it coalesced into.

        Raises :class:`ServeError` with ``queue_full`` (admission),
        ``closing`` (shutdown), ``deadline`` (budget exhausted at any
        point of the queue-wait/sweep path) or ``bad_request``.
        """
        if self._closing:
            record_serve_rejection("closing")
            self.rejected += 1
            raise ServeError("closing", "server is draining; try another replica")
        if self._pending >= self.max_pending:
            record_serve_rejection("queue_full")
            self.rejected += 1
            raise ServeError(
                "queue_full",
                f"admission queue is full ({self.max_pending} pending); "
                "retry with backoff",
            )
        registers = entry.model.registers
        for name in request.register_values:
            if name not in registers:
                unknown = set(request.register_values) - set(registers)
                raise ServeError(
                    "bad_request",
                    f"register_values for unknown registers: "
                    f"{sorted(unknown)}",
                )
        loop = asyncio.get_running_loop()
        lane = self._lane_for(entry, request)
        deadline = (
            loop.time() + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )
        pending = PendingRequest(
            vector=request.register_values,
            deadline=deadline,
            future=loop.create_future(),
            request_id=request.id,
            enqueued=time.perf_counter(),
            trace=request.trace,
            ctx=ctx,
            budget_ms=request.deadline_ms,
        )
        self._pending += 1
        serve_queue_depth().set(self._pending)
        self._in_flight.add(pending.future)
        pending.future.add_done_callback(self._in_flight.discard)
        lane.queue.put_nowait(pending)
        try:
            if deadline is None:
                return await pending.future
            remaining = deadline - loop.time()
            try:
                return await asyncio.wait_for(pending.future, timeout=remaining)
            except asyncio.TimeoutError:
                self.expired += 1
                record_serve_rejection("deadline")
                record_serve_deadline_budget(
                    (time.perf_counter() - pending.enqueued)
                    * 1000.0 / request.deadline_ms
                )
                raise ServeError(
                    "deadline",
                    f"deadline of {request.deadline_ms:g}ms exhausted "
                    "while the request was queued or in a sweep",
                ) from None
        finally:
            # Guarantee a caller that bails (disconnect, cancellation)
            # leaves a done future behind, so the worker discards its
            # lane instead of resolving into the void.
            if not pending.future.done():
                pending.future.cancel()

    # -- the per-lane worker ----------------------------------------------
    async def _worker(self, lane: _Lane) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await lane.queue.get()
            if first is _STOP:
                return
            gather_t0 = time.perf_counter()
            if self.batch_window_ms > 0:
                await asyncio.sleep(self.batch_window_ms / 1000.0)
            batch: List[PendingRequest] = [first]
            stopped = False
            while len(batch) < self.max_batch:
                try:
                    item = lane.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _STOP:
                    stopped = True
                    break
                batch.append(item)
            now = loop.time()
            live: List[PendingRequest] = []
            for req in batch:
                self._pending -= 1
                if req.future.done():  # caller already gone
                    self.discarded += 1
                    continue
                if req.deadline is not None and now >= req.deadline:
                    self.expired += 1
                    record_serve_rejection("deadline")
                    if req.budget_ms:
                        record_serve_deadline_budget(
                            (time.perf_counter() - req.enqueued)
                            * 1000.0 / req.budget_ms
                        )
                    req.future.set_exception(ServeError(
                        "deadline", "deadline expired before dispatch"
                    ))
                    continue
                live.append(req)
            serve_queue_depth().set(self._pending)
            if live:
                await self._dispatch(lane, live, gather_t0)
            if stopped:
                return

    def _realized_backend(self, batch: int) -> str:
        """The concrete sweep realization ``run_sweep`` will pick."""
        if self.backend != "adaptive":
            return self.backend
        if batch <= ADAPTIVE_CROSSOVER or not have_numpy():
            return "compiled-py"
        return "compiled-py-batched"

    async def _dispatch(
        self, lane: _Lane, live: List[PendingRequest], gather_t0: float
    ) -> None:
        loop = asyncio.get_running_loop()
        self._batch_seq += 1
        seq = self._batch_seq
        t0 = time.perf_counter()
        if self.tracer is not None:
            # Every request's queue span ends here, tagged with the
            # batch it joined; the lane-track coalesce span shows the
            # window/backlog gathering that formed the batch.
            for req in live:
                if req.ctx is not None:
                    req.ctx.add_span(
                        "queue", req.enqueued, t0, args={"batch": seq}
                    )
            self.tracer.add_span(
                "coalesce", gather_t0, t0, tid=lane.tid, cat="serve",
                args={"batch": seq, "lanes": len(live)},
            )
        record_serve_stage("coalesce", (t0 - gather_t0) * 1000.0)
        try:
            lanes = await loop.run_in_executor(
                self._executor,
                run_sweep,
                lane.entry,
                [req.vector for req in live],
                lane.properties,
                self.backend,
                lane.state if self.reuse_sims else None,
            )
        except Exception as exc:  # a sweep bug must not kill the lane
            for req in live:
                if not req.future.done():
                    req.future.set_exception(
                        ServeError("internal", f"sweep failed: {exc}")
                    )
            return
        sweep_end = time.perf_counter()
        sweep_ms = (sweep_end - t0) * 1000.0
        self.sweeps += 1
        self.lanes_swept += len(live)
        record_serve_batch(len(live), sweep_ms)
        record_serve_stage("sweep", sweep_ms)
        if self.tracer is not None:
            self.tracer.add_span(
                "sweep", t0, sweep_end, tid=lane.tid, cat="serve",
                args={
                    "batch": seq,
                    "lanes": len(live),
                    "digest": lane.entry.digest[:12],
                    "backend": self._realized_backend(len(live)),
                    "traces": [
                        req.trace for req in live if req.trace is not None
                    ],
                },
            )
        now = time.perf_counter()
        fanout: List[dict] = []
        for req, result in zip(live, lanes):
            result["batch"] = len(live)
            result["sweep_ms"] = sweep_ms
            queue_ms = max(0.0, (now - req.enqueued) * 1000.0 - sweep_ms)
            result["queue_ms"] = queue_ms
            result["id"] = req.id
            if req.trace is not None:
                result["trace"] = req.trace
            record_serve_stage("queue", queue_ms)
            if req.budget_ms:
                record_serve_deadline_budget(
                    (now - req.enqueued) * 1000.0 / req.budget_ms
                )
            for record in result["conflicts"]:
                fanout.append(dict(record, digest=lane.entry.digest))
            for violation in (result.get("report") or {}).get("violations", ()):
                fanout.append({
                    "event": "violation",
                    **violation,
                    "digest": lane.entry.digest,
                })
            if req.future.done():
                self.discarded += 1
                continue
            req.future.set_result(result)
        if fanout and self.on_records is not None:
            self.on_records(lane.entry.digest, fanout)

    # -- shutdown -----------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._pending

    @property
    def closing(self) -> bool:
        return self._closing

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, then wait for every admitted request.

        Returns True when everything drained inside ``timeout``.
        """
        self._closing = True
        waiting = [f for f in self._in_flight if not f.done()]
        if not waiting:
            return True
        gather = asyncio.gather(*waiting, return_exceptions=True)
        try:
            await asyncio.wait_for(asyncio.shield(gather), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def close(self, timeout: Optional[float] = 10.0) -> bool:
        """Graceful shutdown: drain in-flight sweeps, stop the workers."""
        drained = await self.drain(timeout=timeout)
        for lane in self._lanes.values():
            lane.queue.put_nowait(_STOP)
        for lane in self._lanes.values():
            if lane.task is not None:
                try:
                    await asyncio.wait_for(lane.task, timeout=5.0)
                except asyncio.TimeoutError:  # pragma: no cover - defensive
                    lane.task.cancel()
        self._lanes.clear()
        return drained

    def stats(self) -> dict:
        return {
            "backend": self.backend,
            "queue_depth": self._pending,
            "lanes": len(self._lanes),
            "sweeps": self.sweeps,
            "lanes_swept": self.lanes_swept,
            "batch_mean": (
                round(self.lanes_swept / self.sweeps, 3) if self.sweeps else 0.0
            ),
            "rejected": self.rejected,
            "expired": self.expired,
            "discarded": self.discarded,
            "closing": self._closing,
        }
