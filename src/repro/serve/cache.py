"""The server's in-process compiled-model cache.

One :class:`CachedDesign` per submitted model, keyed by the
content-addressed ``model_digest`` from :mod:`repro.engine.plan` --
the same digest that keys the on-disk ``plans/v1`` and ``codegen/v1``
tiers, so a *cold* submit is exactly one ``elaborate -> lower ->
generate`` trip (or a plain disk hit when another process already
paid it) and every later request for that design is a dictionary
lookup.  The cache is LRU-bounded; evicting an entry only drops the
in-process reference -- the on-disk tiers keep the artifacts, so a
re-submitted design warm-starts.

Thread-safety: submits happen on the event-loop thread, sweeps read
entries from executor threads; a lock guards the table, and entries
themselves are immutable after construction (the lazily built
executor memo inside the codegen layer has its own lock).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Tuple

from ..core.model import ModelError, RTModel
from ..core.serialize import SerializeError, model_from_dict
from ..engine.plan import Plan, PlanCacheArg, resolve_plan
from .protocol import ServeError


@dataclass
class CachedDesign:
    """One submitted design: the live model plus its lowered Plan."""

    digest: str
    model: RTModel
    plan: Plan
    #: how the Plan was resolved at submit time (hit/miss/off)
    plan_source: str
    plan_build_ms: float
    #: how many simulate/verify requests this design has served
    requests: int = 0

    def describe(self) -> dict:
        return {
            "digest": self.digest,
            "name": self.model.name,
            "cs_max": self.model.cs_max,
            "width": self.model.width,
            "registers": len(self.model.registers),
            "transfers": len(self.model.trans_specs()),
            "plan_source": self.plan_source,
            "plan_build_ms": round(self.plan_build_ms, 3),
            "requests": self.requests,
        }


class ModelCache:
    """LRU table of :class:`CachedDesign`, backed by the Plan cache."""

    def __init__(
        self,
        plan_cache: PlanCacheArg = None,
        max_models: int = 64,
    ) -> None:
        """``max_models=0`` makes the cache stateless: every document
        resolve pays the full decode + lower trip and nothing is
        retained (digest lookups always 404).  That is the ablation
        mode of ``repro bench --serve`` -- a per-request service with
        no compiled-model cache -- not a production configuration."""
        if max_models < 0:
            raise ValueError(f"max_models must be >= 0, got {max_models}")
        self._plan_cache = plan_cache
        self._max_models = max_models
        self._designs: "OrderedDict[str, CachedDesign]" = OrderedDict()
        self._lock = threading.Lock()
        #: lifetime counters (healthz / metrics)
        self.submits = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._designs)

    def submit(self, document: Mapping[str, Any]) -> Tuple[CachedDesign, bool]:
        """Register a model document; returns ``(entry, already_cached)``.

        The expensive step -- deserialize, digest, lower (or unpickle
        the plan tier's entry) -- runs at most once per digest.
        """
        try:
            model = model_from_dict(document)
        except (SerializeError, ModelError, ValueError) as exc:
            raise ServeError("model_error", str(exc))
        try:
            handle = resolve_plan(model, None, self._plan_cache)
        except ModelError as exc:
            raise ServeError("model_error", str(exc))
        digest = handle.plan.digest
        if self._max_models == 0:  # stateless ablation mode
            self.submits += 1
            return CachedDesign(
                digest=digest,
                model=model,
                plan=handle.plan,
                plan_source=handle.source,
                plan_build_ms=handle.build_ms,
            ), False
        with self._lock:
            hit = self._designs.get(digest)
            if hit is not None:
                self._designs.move_to_end(digest)
                return hit, True
            entry = CachedDesign(
                digest=digest,
                model=model,
                plan=handle.plan,
                plan_source=handle.source,
                plan_build_ms=handle.build_ms,
            )
            self._designs[digest] = entry
            self.submits += 1
            while len(self._designs) > self._max_models:
                self._designs.popitem(last=False)
                self.evictions += 1
        return entry, False

    def get(self, digest: str) -> CachedDesign:
        """Look a design up by digest; unknown digests are a 404."""
        with self._lock:
            entry = self._designs.get(digest)
            if entry is None:
                raise ServeError(
                    "not_found",
                    f"unknown model digest {digest!r} "
                    "(submit the model document first)",
                )
            self._designs.move_to_end(digest)
            entry.requests += 1
            return entry

    def resolve(
        self, model: Any
    ) -> Tuple[CachedDesign, Optional[bool]]:
        """Request-path entry: a digest looks up, a document submits.

        Returns ``(entry, already_cached)`` where ``already_cached``
        is None for digest lookups.
        """
        if isinstance(model, str):
            return self.get(model), None
        entry, cached = self.submit(model)
        with self._lock:
            entry.requests += 1
        return entry, cached

    def describe(self) -> List[dict]:
        with self._lock:
            return [e.describe() for e in self._designs.values()]
