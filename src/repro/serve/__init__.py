"""Simulation-as-a-service: the async batching simulation server.

The paper's clockless RT models elaborate to input-independent static
schedules, which makes them unusually good service payloads: a design
is submitted once (digest-keyed, plan-cache backed), and concurrent
single-vector requests against it coalesce into one
``compiled-batched`` plane sweep with per-lane results de-multiplexed
back to each caller -- bit-identical to sequential ``compiled`` runs.

* :class:`ServeServer` / :func:`serve_in_thread` -- the asyncio HTTP +
  WebSocket server (``repro serve``).
* :class:`BatchingEngine` -- admission control, per-design lanes,
  deadlines, graceful drain.
* :class:`ModelCache` -- the in-process compiled-model cache.
* :class:`ServeClient` / :func:`run_load` -- sync client and the
  bench/CI load driver.

See ``docs/serving.md`` for the wire schema and semantics.
"""

from .batcher import SERVE_BACKENDS, BatchingEngine, resolve_serve_backend
from .cache import CachedDesign, ModelCache
from .flight import FlightRecorder
from .client import (
    ServeClient,
    ServeClientError,
    drive_load,
    result_of,
    run_load,
)
from .protocol import (
    ERROR_STATUS,
    ServeError,
    SimRequest,
    decode_ndjson,
    encode_ndjson,
    parse_sim_request,
)
from .server import ServeHandle, ServeServer, serve_in_thread

__all__ = [
    "ERROR_STATUS",
    "SERVE_BACKENDS",
    "BatchingEngine",
    "CachedDesign",
    "FlightRecorder",
    "ModelCache",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ServeHandle",
    "ServeServer",
    "SimRequest",
    "decode_ndjson",
    "drive_load",
    "encode_ndjson",
    "parse_sim_request",
    "result_of",
    "resolve_serve_backend",
    "run_load",
    "serve_in_thread",
]
