"""Clients for the simulation service.

:class:`ServeClient` is the synchronous HTTP client (stdlib
``http.client``, keep-alive): submit a model once, then issue
simulate/verify calls against its digest.  :func:`run_load` is the
asyncio load driver behind ``repro bench --serve`` and the CI smoke
job -- N concurrent clients, each with its own persistent connection,
hammering one design and collecting per-request latencies.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..core.model import RTModel
from ..core.serialize import model_to_dict
from ..observe.trace import new_trace_id
from .protocol import (
    ERROR_STATUS,
    ServeError,
    decode_ndjson,
    decode_registers,
    dump_record,
)

ModelArg = Union[str, Mapping[str, Any], RTModel]


def _model_field(model: ModelArg) -> Union[str, dict]:
    if isinstance(model, RTModel):
        return model_to_dict(model)
    if isinstance(model, str):
        return model
    return dict(model)


class ServeClientError(Exception):
    """An error record returned by the service."""

    def __init__(self, record: Mapping[str, Any], status: int = 0) -> None:
        self.code = record.get("code", "internal")
        self.message = record.get("message", "")
        self.record = dict(record)
        self.status = status or ERROR_STATUS.get(self.code, (0, ""))[0]
        super().__init__(f"[{self.code}] {self.message}")


def _check(records: List[dict], status: int = 200) -> List[dict]:
    for record in records:
        if record.get("event") == "error":
            raise ServeClientError(record, status)
    if status >= 400:
        raise ServeClientError(
            {"code": "internal", "message": f"HTTP {status}"}, status
        )
    return records


def result_of(records: List[dict]) -> dict:
    """The terminal result record of one response, registers decoded."""
    for record in records:
        if record.get("event") == "result":
            out = dict(record)
            out["registers"] = decode_registers(record["registers"])
            return out
    raise ServeClientError(
        {"code": "internal", "message": "response carries no result record"}
    )


class ServeClient:
    """Synchronous keep-alive HTTP client for one service endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ---------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Mapping[str, Any]] = None
    ) -> Tuple[int, bytes]:
        body = (
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            if payload is not None
            else None
        )
        try:
            self._conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = self._conn.getresponse()
            data = response.read()
        except (ConnectionError, http.client.HTTPException):
            # One reconnect: the server may have closed an idle
            # keep-alive connection under us.
            self._conn.close()
            self._conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = self._conn.getresponse()
            data = response.read()
        return response.status, data

    def _ndjson(
        self, method: str, path: str, payload: Optional[Mapping[str, Any]] = None
    ) -> List[dict]:
        status, data = self._request(method, path, payload)
        return _check(decode_ndjson(data), status)

    # -- API ----------------------------------------------------------------
    def submit(self, model: ModelArg) -> dict:
        """Submit a model document; returns its cache record (digest)."""
        field = _model_field(model)
        if isinstance(field, str):
            raise ServeError("bad_request", "submit needs a model document")
        return self._ndjson("POST", "/v1/models", field)[0]

    def simulate(
        self,
        model: ModelArg,
        register_values: Optional[Mapping[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        id: Any = None,
        trace: Optional[str] = None,
        retries: int = 0,
        retry_backoff: float = 0.05,
    ) -> List[dict]:
        """One simulate request; returns the full NDJSON record list.

        ``retries > 0`` re-issues the request after a 503 (admission
        rejection / draining replica), backing off ``retry_backoff``
        seconds (doubled per attempt).  Retried attempts share one
        trace id -- ``trace`` when given, else one minted here -- so
        the server's spans and access log show a single request
        identity across attempts."""
        return self._sim_ndjson("/v1/simulate", self._sim_payload(
            model, register_values, deadline_ms, id, trace
        ), retries, retry_backoff)

    def verify(
        self,
        model: ModelArg,
        properties: Optional[Any] = None,
        register_values: Optional[Mapping[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        id: Any = None,
        trace: Optional[str] = None,
        retries: int = 0,
        retry_backoff: float = 0.05,
    ) -> List[dict]:
        """One verify request (``properties=None`` = the default set)."""
        payload = self._sim_payload(model, register_values, deadline_ms, id, trace)
        if properties is not None:
            payload["properties"] = properties
        return self._sim_ndjson("/v1/verify", payload, retries, retry_backoff)

    def _sim_ndjson(
        self, path: str, payload: Dict[str, Any],
        retries: int, retry_backoff: float,
    ) -> List[dict]:
        if retries > 0 and "trace" not in payload:
            payload["trace"] = new_trace_id()
        backoff = retry_backoff
        for attempt in range(retries + 1):
            try:
                return self._ndjson("POST", path, payload)
            except ServeClientError as exc:
                if exc.status != 503 or attempt == retries:
                    raise
            time.sleep(backoff)
            backoff *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _sim_payload(
        model, register_values, deadline_ms, id, trace=None
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"model": _model_field(model)}
        if register_values:
            payload["register_values"] = dict(register_values)
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if id is not None:
            payload["id"] = id
        if trace is not None:
            payload["trace"] = trace
        return payload

    def models(self) -> List[dict]:
        return self._ndjson("GET", "/v1/models")

    def health(self) -> dict:
        return self._ndjson("GET", "/v1/healthz")[0]

    def metrics(self) -> str:
        status, data = self._request("GET", "/v1/metrics")
        if status != 200:
            raise ServeClientError(
                {"code": "internal", "message": f"HTTP {status}"}, status
            )
        return data.decode("utf-8")


# ----------------------------------------------------------------------
# the asyncio load driver (bench + CI smoke)
# ----------------------------------------------------------------------
async def _client_worker(
    host: str,
    port: int,
    payloads: List[dict],
    latencies: List[float],
    errors: List[str],
    results: Optional[Dict[Any, dict]] = None,
) -> None:
    """One persistent connection issuing its payloads back to back."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for payload in payloads:
            body = dump_record(payload).encode("utf-8")
            head = (
                "POST /v1/simulate HTTP/1.1\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "\r\n"
            ).encode("latin-1")
            t0 = time.perf_counter()
            writer.write(head + body)
            await writer.drain()
            # Read the response head, then exactly Content-Length bytes.
            raw = await reader.readuntil(b"\r\n\r\n")
            length = 0
            for line in raw.decode("latin-1").split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value)
            data = await reader.readexactly(length)
            latencies.append((time.perf_counter() - t0) * 1000.0)
            for record in decode_ndjson(data):
                if record.get("event") == "error":
                    errors.append(record.get("code", "internal"))
                elif record.get("event") == "result" and results is not None:
                    results[record.get("id")] = record
    finally:
        writer.close()


async def run_load(
    host: str,
    port: int,
    model: Union[str, Mapping[str, Any]],
    vectors: List[Dict[str, int]],
    clients: int = 8,
    deadline_ms: Optional[float] = None,
    results: Optional[Dict[Any, dict]] = None,
    id_prefix: str = "",
) -> Dict[str, Any]:
    """Drive ``len(vectors)`` simulate requests over ``clients``
    concurrent persistent connections; returns latency/throughput
    aggregates (``rps``, ``p50_ms``, ``p99_ms``, ``errors``).
    ``model`` is a submitted design's digest, or an inline model
    document to ship with *every* request (the bench's cache-less
    ablation).  Pass a ``results`` dict to collect each request's
    terminal result record keyed by its id (= the vector index, or
    ``f"{id_prefix}{i}"`` when a prefix makes ids globally unique
    across several runs against one server -- the smoke harness's
    exactly-once access-log check)."""
    field = model if isinstance(model, str) else dict(model)
    payloads: List[List[dict]] = [[] for _ in range(clients)]
    for i, vector in enumerate(vectors):
        payload: Dict[str, Any] = {
            "model": field, "id": f"{id_prefix}{i}" if id_prefix else i,
        }
        if vector:
            payload["register_values"] = vector
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        payloads[i % clients].append(payload)
    latencies: List[float] = []
    errors: List[str] = []
    t0 = time.perf_counter()
    await asyncio.gather(*(
        _client_worker(host, port, chunk, latencies, errors, results)
        for chunk in payloads if chunk
    ))
    wall_s = time.perf_counter() - t0
    ok = len(latencies) - len(errors)
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "clients": clients,
        "requests": len(vectors),
        "ok": ok,
        "errors": len(errors),
        "error_codes": sorted(set(errors)),
        "wall_s": round(wall_s, 6),
        "rps": round(len(latencies) / wall_s, 3) if wall_s > 0 else 0.0,
        "p50_ms": round(pct(0.50), 3),
        "p99_ms": round(pct(0.99), 3),
        "mean_ms": round(sum(ordered) / len(ordered), 3) if ordered else 0.0,
    }


def drive_load(
    host: str,
    port: int,
    model: Union[str, Mapping[str, Any]],
    vectors: List[Dict[str, int]],
    clients: int = 8,
    deadline_ms: Optional[float] = None,
    results: Optional[Dict[Any, dict]] = None,
    id_prefix: str = "",
) -> Dict[str, Any]:
    """Synchronous wrapper around :func:`run_load` (own event loop)."""
    return asyncio.run(run_load(
        host, port, model, vectors,
        clients=clients, deadline_ms=deadline_ms, results=results,
        id_prefix=id_prefix,
    ))
