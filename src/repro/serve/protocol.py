"""The simulation-service wire schema.

Requests are single JSON objects; responses are NDJSON -- a sequence
of ``\\n``-terminated JSON records using the *same* event dictionaries
the :mod:`repro.observe` layer already defines: conflicts travel as
:func:`repro.observe.recorder.conflict_event` records, assertion
failures as :meth:`repro.observe.monitor.Violation.to_dict` records
(the ``{"event": "violation", ...}`` shape ``repro watch`` renders),
followed by one terminal ``{"event": "result", ...}`` (or
``{"event": "error", ...}``) record carrying the verdict.  The HTTP
and WebSocket transports in :mod:`repro.serve.server` and the clients
in :mod:`repro.serve.client` share this module, so the schema is
defined exactly once.

Request shape (``POST /v1/simulate`` / ``POST /v1/verify`` bodies and
WebSocket ``{"op": "simulate" | "verify"}`` frames)::

    {
      "model": "<digest>" | {<repro-rt-model document>},
      "register_values": {"R1": 7, "R2": "z"},   # optional overrides
      "deadline_ms": 250.0,                      # optional, queue+sweep
      "properties": [...],                       # verify only; assert-file
      "id": <any JSON value>,                    # echoed on every record
      "trace": "<hex id>"                        # optional caller trace id
    }

A caller-supplied ``trace`` id (any non-empty string up to 128 chars)
is echoed on the terminal record and used as the request's trace id in
the server's span tracer and access log; when absent the server mints
one.  Supplying it makes a *retried* request keep one identity across
attempts (see ``tests/serve/test_observability.py``).

Error records carry a stable ``code`` (one of :data:`ERROR_STATUS`)
mapped onto the obvious HTTP status by the server; the WebSocket
transport sends the same record as a frame instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..observe.recorder import decode_value, encode_value

#: Error code -> (HTTP status, default reason).
ERROR_STATUS: Dict[str, Tuple[int, str]] = {
    "bad_request": (400, "Bad Request"),
    "model_error": (400, "Bad Request"),
    "not_found": (404, "Not Found"),
    "method_not_allowed": (405, "Method Not Allowed"),
    "too_large": (413, "Payload Too Large"),
    "internal": (500, "Internal Server Error"),
    "queue_full": (503, "Service Unavailable"),
    "closing": (503, "Service Unavailable"),
    "deadline": (504, "Gateway Timeout"),
}

NDJSON_CONTENT_TYPE = "application/x-ndjson"


class ServeError(Exception):
    """A request failure with a wire-stable ``code``.

    The server maps the code to an HTTP status (``ERROR_STATUS``) and
    renders :meth:`record` as the response body; raising one anywhere
    on the request path therefore produces a well-formed error reply.
    """

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown serve error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message

    @property
    def status(self) -> int:
        return ERROR_STATUS[self.code][0]

    def record(self, id: Any = None, trace: Optional[str] = None) -> dict:
        return error_record(self.code, self.message, id=id, trace=trace)


def error_record(
    code: str, message: str, id: Any = None, trace: Optional[str] = None
) -> dict:
    record: dict = {"event": "error", "code": code, "message": message}
    if id is not None:
        record["id"] = id
    if trace is not None:
        record["trace"] = trace
    return record


# ----------------------------------------------------------------------
# NDJSON helpers
# ----------------------------------------------------------------------
def dump_record(record: Mapping[str, Any]) -> str:
    """One wire line (no trailing newline), compact separators."""
    return json.dumps(record, separators=(",", ":"), sort_keys=False)


def encode_ndjson(records: List[dict]) -> bytes:
    return "".join(dump_record(r) + "\n" for r in records).encode("utf-8")


def decode_ndjson(body: bytes) -> List[dict]:
    """Parse an NDJSON body; raises ServeError on garbage."""
    records: List[dict] = []
    for line in body.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeError("bad_request", f"invalid NDJSON line: {exc}")
        records.append(record)
    return records


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------
@dataclass
class SimRequest:
    """One parsed simulate/verify request, transport-independent."""

    #: either a digest string or an inline model document
    model: Union[str, Mapping[str, Any]]
    register_values: Dict[str, int] = field(default_factory=dict)
    #: wall-clock budget covering queue wait *and* the sweep; None =
    #: no deadline
    deadline_ms: Optional[float] = None
    #: raw assert-file property spec (verify) or None (simulate)
    properties: Optional[Any] = None
    #: echoed verbatim on every response record
    id: Any = None
    #: caller-supplied trace id (stable across retries); the server
    #: mints one when absent
    trace: Optional[str] = None

    @property
    def verify(self) -> bool:
        return self.properties is not None

    def prop_key(self) -> Optional[str]:
        """Canonical batching key: requests sharing a property set (or
        none at all) may share one plane sweep."""
        if self.properties is None:
            return None
        return json.dumps(self.properties, sort_keys=True, separators=(",", ":"))


def _parse_register_values(raw: Any) -> Dict[str, int]:
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise ServeError(
            "bad_request", "register_values must be an object of name -> value"
        )
    values: Dict[str, int] = {}
    for name, value in raw.items():
        if isinstance(value, str):
            try:
                value = decode_value(value)
            except ValueError:
                raise ServeError(
                    "bad_request",
                    f"register_values[{name!r}]: bad value {value!r} "
                    "(use an int or 'z')",
                ) from None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ServeError(
                "bad_request",
                f"register_values[{name!r}]: bad value {value!r} "
                "(use an int or 'z')",
            )
        values[str(name)] = value
    return values


def parse_sim_request(payload: Any, verify: bool = False) -> SimRequest:
    """Validate one simulate/verify request object."""
    if not isinstance(payload, Mapping):
        raise ServeError("bad_request", "request body must be a JSON object")
    model = payload.get("model")
    if isinstance(model, str):
        model = model.strip()
        if not model:
            raise ServeError("bad_request", "empty model digest")
    elif not isinstance(model, Mapping):
        raise ServeError(
            "bad_request",
            "'model' must be a digest string or an inline model document",
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise ServeError("bad_request", "deadline_ms must be a number")
        deadline_ms = float(deadline_ms)
        if deadline_ms <= 0:
            raise ServeError("bad_request", "deadline_ms must be > 0")
    properties = payload.get("properties") if verify else None
    if verify and properties is None:
        properties = "default"
    trace = payload.get("trace")
    if trace is not None:
        if not isinstance(trace, str) or not trace:
            raise ServeError("bad_request", "trace must be a non-empty string")
        if len(trace) > 128:
            raise ServeError("bad_request", "trace must be <= 128 characters")
    return SimRequest(
        model=model,
        register_values=_parse_register_values(payload.get("register_values")),
        deadline_ms=deadline_ms,
        properties=properties,
        id=payload.get("id"),
        trace=trace,
    )


# ----------------------------------------------------------------------
# response records
# ----------------------------------------------------------------------
def encode_registers(registers: Mapping[str, int]) -> Dict[str, Any]:
    """JSON-safe register values (DISC/ILLEGAL -> 'z'/'x')."""
    return {name: encode_value(value) for name, value in registers.items()}


def decode_registers(registers: Mapping[str, Any]) -> Dict[str, int]:
    return {name: decode_value(value) for name, value in registers.items()}


def result_record(
    request_id: Any,
    digest: str,
    registers: Mapping[str, int],
    clean: bool,
    batch: int,
    queue_ms: float,
    sweep_ms: float,
    report: Optional[Mapping[str, Any]] = None,
    trace: Optional[str] = None,
) -> dict:
    """The terminal record of a successful simulate/verify response."""
    record: dict = {
        "event": "result",
        "digest": digest,
        "registers": encode_registers(registers),
        "clean": bool(clean),
        "batch": batch,
        "queue_ms": round(queue_ms, 3),
        "sweep_ms": round(sweep_ms, 3),
    }
    if request_id is not None:
        record["id"] = request_id
    if trace is not None:
        record["trace"] = trace
    if report is not None:
        record["ok"] = report["ok"]
        record["cycles"] = report["cycles"]
        record["properties"] = report["properties"]
    return record


__all__ = [
    "ERROR_STATUS",
    "NDJSON_CONTENT_TYPE",
    "ServeError",
    "SimRequest",
    "decode_ndjson",
    "decode_registers",
    "dump_record",
    "encode_ndjson",
    "encode_registers",
    "error_record",
    "parse_sim_request",
    "result_record",
]
