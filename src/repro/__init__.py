"""repro -- reproduction of "Register Transfer Level VHDL Models
without Clocks" (Mutz, DATE 1998).

Subpackages
-----------
``repro.kernel``
    Delta-cycle event-driven simulation kernel (the VHDL-semantics
    substrate).
``repro.core``
    The paper's contribution: the clock-free register-transfer level
    (control steps & phases, DISC/ILLEGAL resolution, 9-tuple
    transfers, the RT model builder, conflict analysis, tracing).
``repro.vhdl``
    The subset as actual VHDL: parser, conformance checker,
    elaborating interpreter, emitter.
``repro.microcode``
    Microcode tables, code maps, and the automatic microcode-to-
    transfer translator (paper §3).
``repro.iks``
    The inverse-kinematics chip case study (paper §3 / Fig. 3).
``repro.clocked``
    Automatic translation to clocked RTL with equivalence checking
    (paper §4).
``repro.handshake``
    The asynchronous-handshake baseline style (paper §2.7).
``repro.hls``
    Mini high-level synthesis targeting the subset (paper §4).
``repro.verify``
    Symbolic execution, equivalence checking, round-trip proofs
    (paper §4's "automatic proving procedure").

The most common entry points are re-exported here.
"""

from .core import (
    DISC,
    ILLEGAL,
    ModuleSpec,
    Phase,
    RegisterTransfer,
    RTModel,
    RTSimulation,
    StepPhase,
    analyze,
)
from .kernel import SimStats, Simulator

__version__ = "1.0.0"

__all__ = [
    "DISC",
    "ILLEGAL",
    "ModuleSpec",
    "Phase",
    "RTModel",
    "RTSimulation",
    "RegisterTransfer",
    "SimStats",
    "Simulator",
    "StepPhase",
    "analyze",
    "__version__",
]
