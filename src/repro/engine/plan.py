"""The single lowering pipeline: ``lower(model) -> Plan``.

Every compiled-style backend in this repo executes the same static
schedule: the model's TRANS instances become per-``(CS, PH)`` action
tables (asserts, releases), module evaluations fire in CM, register
latches in CR.  Historically that lowering was implemented three times
-- inline in :class:`~repro.engine.compiled.CompiledRTSimulation`, in
its batched twin, and again per shard inside the sharded workers.
This module hoists it into one backend-neutral intermediate
representation:

* :func:`lower` turns an :class:`~repro.core.model.RTModel` into a
  :class:`Plan` -- the port/register layout, driver table (one driver
  per TRANS instance, index == global spec index, which is also the
  conflict-resolution order), the per-``(step, phase)`` assert/release
  tables, per-module operation metadata, and the partition-relevant
  connectivity clusters.  A Plan is *pure data*: no closures, no live
  model references -- operation bodies stay in the model and are
  looked up by name when a backend instantiates its evaluators
  (:func:`compile_module_eval` / :func:`compile_module_eval_batch`).
  That makes every Plan picklable and byte-for-byte deterministic
  (tuples and insertion-ordered dicts only; no string-keyed sets whose
  iteration order would leak ``PYTHONHASHSEED``).

* :func:`model_digest` fingerprints a model *without* lowering it:
  declarations, module operation bodies (via ``marshal`` of their code
  objects plus closure/default/self state) and the transfer tuples.
  ``Plan.digest`` carries that hash, making Plans content-addressable.

* :class:`PlanCache` stores Plans on disk under
  ``$REPRO_PLAN_CACHE`` (default ``~/.cache/repro``), versioned and
  corruption-tolerant: a truncated, foreign or stale-version entry is
  discarded with a warning and the model is simply re-lowered --
  mirroring the lenient ``repro report`` reader, a cache entry can
  never crash a run.

* :func:`resolve_plan` is the one entry point backends use: explicit
  Plan > cache hit > lower (+ cache fill), reporting the source
  (``hit`` / ``miss`` / ``off`` / ``given``) and the wall time of the
  lowering step for ``run_metrics``.

* :func:`slice_for_shard` projects a Plan onto one shard of a
  :class:`~repro.engine.partition.ShardPlan` -- the sharded backend
  ships these :class:`PlanSlice` objects to its workers instead of
  re-pickling model fragments.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import pickle
import time
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..core.model import ModelError, RTModel
from ..core.modules_lib import Operation, _combine
from ..core.phases import PHASES_PER_STEP, Phase
from ..core.values import DISC, ILLEGAL

#: Bump when the Plan layout changes; versions the cache layout and the
#: on-disk payload header, so stale entries are discarded, not parsed.
PLAN_VERSION = 1

_MAGIC = "repro-plan"

#: (step, phase_int) -- the action-table key type.
CycleKey = Tuple[int, int]
#: (driver, source port index | None, constant) -- one assert action.
AssertAction = Tuple[int, Optional[int], int]


# ----------------------------------------------------------------------
# the IR
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModulePlan:
    """One functional unit's lowered layout and static behavior.

    Port indices refer to the owning :class:`Plan`'s (or, after
    :func:`slice_for_shard`, the slice's) port table.  The operation
    *bodies* are deliberately absent -- backends resolve them from the
    live model by name -- so the plan stays picklable even for models
    whose operations are lambdas or bound methods (the IKS chip).
    """

    name: str
    in_idxs: Tuple[int, ...]
    out_idx: int
    op_idx: Optional[int]
    arity: int
    latency: int
    pipelined: bool
    sticky_illegal: bool
    width: int
    #: operation names, sorted -- index in this tuple == the op code
    #: driven on the ``_op`` port (the §3 operation-select encoding).
    op_names: Tuple[str, ...]
    default_op: str
    default_code: int


@dataclass(frozen=True)
class Plan:
    """A lowered, backend-neutral, content-addressed model.

    Deterministic (same model -> byte-identical pickle), picklable and
    free of live references; see the module docstring.  ``drv_owner``
    / ``drv_sink`` are indexed by driver == global TRANS spec index,
    the stable identity the sharded barrier merge relies on.
    """

    version: int
    digest: str
    name: str
    cs_max: int
    width: int
    #: ports in declaration order: buses, then per-register in/out,
    #: then per-module in1..N/out(/op) -- the order every backend and
    #: the canonical probe stream use.
    port_names: Tuple[str, ...]
    port_inits: Tuple[int, ...]
    #: indices of resolved ports (multi-driver resolution applies).
    resolved: Tuple[int, ...]
    port_index: Dict[str, int]
    bus_count: int
    #: (register, in-port index, out-port index) in declaration order.
    reg_ports: Tuple[Tuple[str, int, int], ...]
    modules: Tuple[ModulePlan, ...]
    #: per driver: the owning TRANS instance's name (conflict sources).
    drv_owner: Tuple[str, ...]
    drv_sink: Tuple[int, ...]
    sink_drivers: Dict[int, Tuple[int, ...]]
    asserts: Dict[CycleKey, Tuple[AssertAction, ...]]
    releases: Dict[CycleKey, Tuple[int, ...]]
    #: per spec: (step, phase_int, source, sink) -- the flat schedule.
    spec_rows: Tuple[Tuple[int, int, str, str], ...]
    #: per spec: the register a WB drive latches into (else None).
    spec_exports: Tuple[Optional[str], ...]
    #: connectivity clusters (buses + units), each sorted, ordered by
    #: smallest member -- the sharding co-location constraint.
    clusters: Tuple[Tuple[str, ...], ...]

    @property
    def num_ports(self) -> int:
        return len(self.port_names)

    @property
    def num_drivers(self) -> int:
        return len(self.drv_owner)

    def register_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _, _ in self.reg_ports)

    def matches(self, model: RTModel) -> bool:
        """Cheap structural compatibility check against ``model``."""
        return (
            self.name == model.name
            and self.cs_max == model.cs_max
            and self.width == model.width
            and self.register_names() == tuple(model.registers)
            and tuple(mp.name for mp in self.modules) == tuple(model.modules)
        )

    def describe(self) -> str:
        """Human-readable summary (used by ``repro plan``)."""
        cells = sum(len(v) for v in self.asserts.values())
        lines = [
            f"plan: model {self.name!r}, digest {self.digest[:16]}...",
            f"  schedule: {self.cs_max} steps x {PHASES_PER_STEP} phases, "
            f"width {self.width}",
            f"  ports: {self.num_ports} ({self.bus_count} buses, "
            f"{len(self.reg_ports)} registers, {len(self.modules)} units)",
            f"  drivers: {self.num_drivers} TRANS instances, "
            f"{cells} assert actions",
            f"  clusters: {len(self.clusters)}",
        ]
        return "\n".join(lines)

    def summary(self) -> Dict[str, Any]:
        """Structured summary (used by ``repro plan --json``)."""
        return {
            "model": self.name,
            "digest": self.digest,
            "version": self.version,
            "cs_max": self.cs_max,
            "width": self.width,
            "ports": self.num_ports,
            "buses": self.bus_count,
            "registers": len(self.reg_ports),
            "modules": len(self.modules),
            "drivers": self.num_drivers,
            "assert_actions": sum(len(v) for v in self.asserts.values()),
            "clusters": len(self.clusters),
        }


@dataclass(frozen=True)
class PlanSlice:
    """One shard's projection of a :class:`Plan`.

    Exactly the tables a sharded worker executes: the local port table
    (owned buses with their global declaration index, ghost register
    outputs, owned module ports), the local driver table for owned
    non-exporting TRANS instances, and assert/release tables whose
    entries keep the *global* spec index (the merge identity at the
    step barrier).  Pure data, like the Plan it came from.
    """

    shard: int
    names: Tuple[str, ...]
    inits: Tuple[int, ...]
    index: Dict[str, int]
    #: local port index -> global bus declaration index (probe order).
    bus_decl: Dict[int, int]
    #: ghost register -> local index of its ``_out`` port.
    ghosts: Dict[str, int]
    modules: Tuple[ModulePlan, ...]
    drv_owner: Tuple[str, ...]
    drv_sink: Tuple[int, ...]
    sink_drivers: Dict[int, Tuple[int, ...]]
    #: asserts[key] -> (local driver | None, export register | None,
    #:                  local source index | None, const, global index)
    asserts: Dict[
        CycleKey,
        Tuple[Tuple[Optional[int], Optional[str], Optional[int], int, int], ...],
    ]
    #: releases[key] -> (local driver | None, global index)
    releases: Dict[CycleKey, Tuple[Tuple[Optional[int], int], ...]]


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def trans_op_code(model: RTModel, source: str, sink: str) -> int:
    """The op code a ``op:NAME -> M_op`` TRANS instance drives.

    The one shared implementation of the helper formerly duplicated by
    the compiled and batched backends: ``source`` is ``"op:NAME"``,
    ``sink`` is the module's ``_op`` port, and the code is the index of
    NAME in the module's sorted operation-name table.
    """
    op_name = source[3:]
    module_name = sink.rsplit("_op", 1)[0]
    return model.modules[module_name].op_code(op_name)


def lower(model: RTModel, digest: Optional[str] = None) -> Plan:
    """Lower ``model`` into its backend-neutral :class:`Plan`.

    Deterministic: declaration order drives every table, so the same
    model always lowers to a byte-identical (pickled) Plan in any
    process.  Raises :class:`~repro.core.model.ModelError` for
    transfers naming unknown ports or unresolved sinks -- the same
    diagnostics the backends used to raise inline.
    """
    if digest is None:
        digest = model_digest(model)

    names: List[str] = []
    inits: List[int] = []
    index: Dict[str, int] = {}
    resolved: List[int] = []

    def port(name: str, init: int, is_resolved: bool = False) -> int:
        idx = len(names)
        names.append(name)
        inits.append(init)
        index[name] = idx
        if is_resolved:
            resolved.append(idx)
        return idx

    for bus in model.buses.values():
        port(bus.name, DISC, is_resolved=True)
    bus_count = len(names)
    reg_ports: List[Tuple[str, int, int]] = []
    for reg in model.registers.values():
        in_idx = port(f"{reg.name}_in", DISC, is_resolved=True)
        out_idx = port(f"{reg.name}_out", reg.init)
        reg_ports.append((reg.name, in_idx, out_idx))
    modules: List[ModulePlan] = []
    for spec in model.modules.values():
        in_idxs = tuple(
            port(f"{spec.name}_in{i}", DISC, is_resolved=True)
            for i in range(1, spec.arity + 1)
        )
        out_idx = port(f"{spec.name}_out", DISC)
        op_idx = None
        if spec.multi_op:
            op_idx = port(f"{spec.name}_op", DISC, is_resolved=True)
        op_names = tuple(sorted(spec.operations))
        assert spec.default_op is not None
        modules.append(
            ModulePlan(
                name=spec.name,
                in_idxs=in_idxs,
                out_idx=out_idx,
                op_idx=op_idx,
                arity=spec.arity,
                latency=spec.latency,
                pipelined=spec.pipelined,
                sticky_illegal=spec.sticky_illegal,
                width=spec.width,
                op_names=op_names,
                default_op=spec.default_op,
                default_code=op_names.index(spec.default_op),
            )
        )

    def port_of(name: str) -> int:
        try:
            return index[name]
        except KeyError:
            raise ModelError(
                f"transfer references unknown port or bus {name!r}"
            ) from None

    resolved_set = set(resolved)
    drv_owner: List[str] = []
    drv_sink: List[int] = []
    sink_drivers: Dict[int, List[int]] = {}
    asserts: Dict[CycleKey, List[AssertAction]] = {}
    releases: Dict[CycleKey, List[int]] = {}
    spec_rows: List[Tuple[int, int, str, str]] = []
    spec_exports: List[Optional[str]] = []
    registers = model.registers
    for spec in model.trans_specs():
        sink = port_of(spec.sink)
        if sink not in resolved_set:
            raise ModelError(
                f"transfer {spec.name}: sink {spec.sink!r} is not a "
                f"resolved port"
            )
        drv = len(drv_owner)
        drv_owner.append(spec.name)
        drv_sink.append(sink)
        sink_drivers.setdefault(sink, []).append(drv)
        if spec.source.startswith("op:"):
            src: Optional[int] = None
            const = trans_op_code(model, spec.source, spec.sink)
        else:
            src, const = port_of(spec.source), 0
        phase_int = int(spec.phase)
        asserts.setdefault((spec.step, phase_int), []).append(
            (drv, src, const)
        )
        releases.setdefault(
            (spec.step, int(spec.phase.succ())), []
        ).append(drv)
        spec_rows.append((spec.step, phase_int, spec.source, spec.sink))
        export = None
        if spec.phase is Phase.WB and spec.sink.endswith("_in"):
            base = spec.sink[: -len("_in")]
            if base in registers:
                export = base
        spec_exports.append(export)

    from .partition import clusters_from_rows  # deferred: no cycle at import

    clusters = clusters_from_rows(
        tuple(model.buses), tuple(model.modules), spec_rows
    )

    return Plan(
        version=PLAN_VERSION,
        digest=digest,
        name=model.name,
        cs_max=model.cs_max,
        width=model.width,
        port_names=tuple(names),
        port_inits=tuple(inits),
        resolved=tuple(resolved),
        port_index=index,
        bus_count=bus_count,
        reg_ports=tuple(reg_ports),
        modules=tuple(modules),
        drv_owner=tuple(drv_owner),
        drv_sink=tuple(drv_sink),
        sink_drivers={
            sink: tuple(drvs) for sink, drvs in sink_drivers.items()
        },
        asserts={key: tuple(acts) for key, acts in asserts.items()},
        releases={key: tuple(drvs) for key, drvs in releases.items()},
        spec_rows=tuple(spec_rows),
        spec_exports=tuple(spec_exports),
        clusters=tuple(tuple(sorted(c)) for c in clusters),
    )


# ----------------------------------------------------------------------
# the content hash
# ----------------------------------------------------------------------
def model_digest(model: RTModel) -> str:
    """A stable content hash of everything lowering depends on.

    Computed *without* lowering (this is the cheap cache-key path):
    model header, register/bus declarations, module metadata and
    operation bodies, and the transfer tuples in their printed form
    (which carries all nine fields plus the op-select suffix).  Stable
    across processes and ``PYTHONHASHSEED`` values.
    """
    h = hashlib.sha256()

    def put(*parts: object) -> None:
        for p in parts:
            h.update(str(p).encode("utf-8", "backslashreplace"))
            h.update(b"\x1f")

    put(_MAGIC, PLAN_VERSION, model.name, model.cs_max, model.width)
    put("registers")
    for reg in model.registers.values():
        put(reg.name, reg.init)
    put("buses")
    for bus in model.buses.values():
        put(bus.name, bus.direct_link)
    put("modules")
    for spec in model.modules.values():
        put(
            spec.name,
            spec.latency,
            spec.pipelined,
            spec.sticky_illegal,
            spec.width,
            spec.default_op,
        )
        for name in sorted(spec.operations):
            op = spec.operations[name]
            put(name, op.arity, op.vector_key or "", _fn_fingerprint(op.fn))
    put("transfers")
    for transfer in model.transfers:
        put(str(transfer))
    return h.hexdigest()


def _fn_fingerprint(fn: Any) -> str:
    """Fingerprint an operation body, stable across processes.

    Plain functions/lambdas hash their ``marshal``-ed code object plus
    defaults and closure-cell contents; bound methods add their
    ``__self__`` state.  Anything opaque falls back to its qualified
    name -- a coarser key that can only cause spurious cache *misses*,
    never false hits within one code version.
    """
    try:
        code = getattr(fn, "__code__", None)
        if code is not None:
            parts = [marshal.dumps(code)]
            defaults = getattr(fn, "__defaults__", None)
            if defaults:
                parts.extend(
                    _value_fingerprint(v).encode() for v in defaults
                )
            closure = getattr(fn, "__closure__", None)
            if closure:
                for cell in closure:
                    try:
                        contents = cell.cell_contents
                    except ValueError:  # pragma: no cover - empty cell
                        parts.append(b"<empty>")
                        continue
                    parts.append(_value_fingerprint(contents).encode())
            return hashlib.sha256(b"\x1f".join(parts)).hexdigest()
        bound_self = getattr(fn, "__self__", None)
        if bound_self is not None:
            inner = getattr(fn, "__func__", None)
            base = (
                _fn_fingerprint(inner)
                if inner is not None
                else getattr(fn, "__qualname__", repr(type(fn)))
            )
            return hashlib.sha256(
                (base + "\x1f" + _value_fingerprint(bound_self)).encode()
            ).hexdigest()
        return str(getattr(fn, "__qualname__", type(fn).__qualname__))
    except Exception:  # pragma: no cover - exotic callables
        return str(getattr(fn, "__qualname__", type(fn).__qualname__))


def _value_fingerprint(value: Any) -> str:
    """Deterministically fingerprint a closed-over / default value."""
    if value is None or isinstance(value, (int, float, str, bytes, bool)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_value_fingerprint(v) for v in value) + "]"
    if callable(value):
        return _fn_fingerprint(value)
    if hasattr(value, "__name__"):  # modules and the like
        return str(getattr(value, "__name__"))
    try:
        # Frozen dataclasses (FxFormat, CordicSpec, ...) pickle to a
        # content-determined byte string; object identity never leaks.
        return hashlib.sha256(pickle.dumps(value)).hexdigest()
    except Exception:
        return type(value).__qualname__


# ----------------------------------------------------------------------
# the on-disk cache
# ----------------------------------------------------------------------
def default_cache_root() -> Path:
    """``$REPRO_PLAN_CACHE``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_PLAN_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


#: Per-process dedupe for lenient cache reads: one RuntimeWarning per
#: unusable entry path, not one per resolve.  A damaged entry that
#: cannot be unlinked (read-only cache directory) would otherwise
#: re-warn on every elaboration in the same process.
_WARNED_ENTRIES: set = set()


def warn_entry_once(path: Union[str, Path], message: str) -> None:
    """Emit ``message`` as a RuntimeWarning once per path per process.

    Shared by the plan cache and the codegen artifact cache (see
    :mod:`repro.engine.codegen`): both discard corrupt entries
    leniently, and both should say so exactly once.
    """
    key = str(path)
    if key in _WARNED_ENTRIES:
        return
    _WARNED_ENTRIES.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


class PlanCache:
    """Content-addressed on-disk Plan store.

    Entries live at ``<root>/plans/v<PLAN_VERSION>/<digest>.plan`` and
    carry a ``(magic, version, plan)`` pickle payload.  Reads are
    lenient: any unreadable, truncated, foreign or digest-mismatched
    entry is discarded with a :class:`RuntimeWarning` (once per entry
    per process) and ``get`` returns None -- the caller just
    re-lowers.  Writes are atomic (tmp + rename) and best-effort: a
    read-only cache directory disables caching rather than failing the
    run.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def path_for(self, digest: str) -> Path:
        return self.root / "plans" / f"v{PLAN_VERSION}" / f"{digest}.plan"

    def get(self, digest: str) -> Optional[Plan]:
        path = self.path_for(digest)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            payload = pickle.loads(data)
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != _MAGIC
                or payload[1] != PLAN_VERSION
            ):
                raise ValueError("stale or foreign payload header")
            plan = payload[2]
            if not isinstance(plan, Plan) or plan.digest != digest:
                raise ValueError("entry does not match its digest")
        except Exception as exc:
            warn_entry_once(
                path,
                f"plan cache: discarding unusable entry {path} "
                f"({exc}); re-lowering",
            )
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return None
        return plan

    def put(self, plan: Plan) -> bool:
        path = self.path_for(plan.digest)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(
                pickle.dumps(
                    (_MAGIC, PLAN_VERSION, plan),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            os.replace(tmp, path)
        except OSError:
            # Advisory cache: an unwritable root must not fail the run.
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True


# ----------------------------------------------------------------------
# resolution (the one entry point backends use)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanHandle:
    """A resolved Plan plus where it came from.

    ``source`` is ``"hit"`` / ``"miss"`` (cache consulted), ``"off"``
    (no cache configured) or ``"given"`` (caller supplied the Plan);
    ``build_ms`` is the wall time of the lowering step -- digest +
    cache probe + (on miss/off) the lowering itself.
    """

    plan: Plan
    source: str
    build_ms: float


#: ``plan_cache`` argument shapes accepted by :func:`resolve_plan` and
#: ``elaborate()``: None/False (off), True (default root), a path, or
#: a ready :class:`PlanCache`.
PlanCacheArg = Union[None, bool, str, Path, PlanCache]


def as_plan_cache(plan_cache: PlanCacheArg) -> Optional[PlanCache]:
    """Normalize a ``plan_cache`` argument to a cache or None."""
    if plan_cache is None or plan_cache is False:
        return None
    if plan_cache is True:
        return PlanCache()
    if isinstance(plan_cache, PlanCache):
        return plan_cache
    return PlanCache(plan_cache)


def resolve_plan(
    model: RTModel,
    plan: Union[None, Plan, PlanHandle] = None,
    plan_cache: PlanCacheArg = None,
) -> PlanHandle:
    """Resolve the Plan a backend should execute for ``model``.

    Precedence: an explicitly supplied ``plan`` (validated cheaply
    against the model's structure), then a cache hit by content
    digest, then a fresh :func:`lower` (which also fills the cache).
    """
    if plan is not None:
        handle = (
            plan
            if isinstance(plan, PlanHandle)
            else PlanHandle(plan, "given", 0.0)
        )
        if not handle.plan.matches(model):
            raise ModelError(
                f"supplied plan was lowered from a different model "
                f"(plan: {handle.plan.name!r}, model: {model.name!r})"
            )
        return _recorded(handle)
    cache = as_plan_cache(plan_cache)
    t0 = time.perf_counter()
    if cache is None:
        lowered = lower(model)
        return _recorded(PlanHandle(
            lowered, "off", (time.perf_counter() - t0) * 1000.0
        ))
    digest = model_digest(model)
    cached = cache.get(digest)
    if cached is not None:
        return _recorded(PlanHandle(
            cached, "hit", (time.perf_counter() - t0) * 1000.0
        ))
    lowered = lower(model, digest=digest)
    cache.put(lowered)
    return _recorded(
        PlanHandle(lowered, "miss", (time.perf_counter() - t0) * 1000.0)
    )


def _recorded(handle: PlanHandle) -> PlanHandle:
    """Report the resolution to the process metrics registry (one
    counter bump + one histogram sample; never on the per-cycle path)."""
    from ..observe.metrics import record_plan_resolution

    record_plan_resolution(handle.source, handle.build_ms)
    return handle


# ----------------------------------------------------------------------
# module evaluator compilation (shared by every executing backend)
# ----------------------------------------------------------------------
def compile_module_eval(
    mp: ModulePlan,
    operations: Mapping[str, Operation],
    values: List[int],
):
    """Compile one functional unit into a CM-phase evaluator closure.

    The closure reads the (already updated) input-port values from
    ``values``, advances the unit's internal state, and returns the
    value to drive on the output port this cycle -- the exact state
    machines of :func:`repro.core.modules_lib.make_module`
    (combinational, variable-pipeline, and busy-poisoning
    non-pipelined variants, including the sticky-ILLEGAL freeze and §3
    op selection).  ``operations`` supplies the live operation bodies
    the plan deliberately does not carry.
    """
    names = mp.op_names
    default = operations[mp.default_op]
    width = mp.width
    in_idxs = mp.in_idxs
    op_idx = mp.op_idx

    def select_operation() -> Optional[Operation]:
        if op_idx is None:
            return default
        code = values[op_idx]
        if code == DISC:
            return default
        if code == ILLEGAL or not 0 <= code < len(names):
            return None
        return operations[names[code]]

    def combined() -> int:
        op = select_operation()
        if op is None:
            return ILLEGAL
        return _combine(op, [values[i] for i in in_idxs], width)

    if mp.latency == 0:
        state = {"frozen": False}

        def comb_eval() -> int:
            result = combined()
            if state["frozen"]:
                result = ILLEGAL
            elif result == ILLEGAL and mp.sticky_illegal:
                state["frozen"] = True
            return result

        return comb_eval

    if mp.pipelined:
        pipe = [DISC] * mp.latency
        state = {"frozen": False}

        def pipe_eval() -> int:
            out = ILLEGAL if state["frozen"] else pipe[-1]
            if not state["frozen"]:
                stage = combined()
                if stage == ILLEGAL and mp.sticky_illegal:
                    state["frozen"] = True
                pipe[1:] = pipe[:-1]
                pipe[0] = stage
            return out

        return pipe_eval

    state = {"remaining": 0, "result": DISC, "frozen": False}

    def nonpipe_eval() -> int:
        if state["frozen"]:
            return ILLEGAL
        incoming = combined()
        if state["remaining"] > 0:
            state["remaining"] -= 1
            if incoming != DISC:
                state["result"] = ILLEGAL
            out = state["result"] if state["remaining"] == 0 else DISC
        elif incoming != DISC:
            state["remaining"] = mp.latency
            state["result"] = incoming
            out = state["result"] if state["remaining"] == 0 else DISC
        else:
            out = DISC
        if (
            state["result"] == ILLEGAL
            and mp.sticky_illegal
            and state["remaining"] == 0
        ):
            state["frozen"] = True
        return out

    return nonpipe_eval


def compile_module_eval_batch(
    mp: ModulePlan,
    operations: Mapping[str, Operation],
    values: Any,
    n: int,
):
    """Compile one functional unit into a batched CM-phase evaluator.

    The lane-wise twin of :func:`compile_module_eval`: internal state
    becomes ``(N,)`` (or ``(latency, N)``) arrays, the scalar branches
    become lane masks, and the returned closure yields the ``(N,)``
    column to drive on the output port this cycle.  ``values`` is the
    batched backend's ``(N, num_ports)`` value plane.
    """
    from ..core.values_np import combine_batch, require_numpy

    np = require_numpy("the compiled-batched backend")
    names = mp.op_names
    default = operations[mp.default_op]
    default_code = mp.default_code
    width = mp.width
    in_idxs = mp.in_idxs
    op_idx = mp.op_idx

    def combined():
        cols = [values[:, i] for i in in_idxs]
        if op_idx is None:
            return combine_batch(default, cols, width)
        codes = values[:, op_idx]
        effective = np.where(codes == DISC, default_code, codes)
        valid = (
            (codes != ILLEGAL)
            & (effective >= 0)
            & (effective < len(names))
        )
        out = np.full(n, ILLEGAL, dtype=np.int64)
        for code in np.unique(effective[valid]):
            lanes = valid & (effective == code)
            op = operations[names[int(code)]]
            out[lanes] = combine_batch(
                op, [col[lanes] for col in cols], width
            )
        return out

    if mp.latency == 0:
        frozen = np.zeros(n, dtype=bool)

        def comb_eval():
            result = combined()
            out = np.where(frozen, ILLEGAL, result)
            if mp.sticky_illegal:
                frozen[:] = frozen | (result == ILLEGAL)
            return out

        return comb_eval

    if mp.pipelined:
        pipe = np.full((mp.latency, n), DISC, dtype=np.int64)
        frozen = np.zeros(n, dtype=bool)

        def pipe_eval():
            out = np.where(frozen, ILLEGAL, pipe[-1])
            active = ~frozen
            stage = combined()
            if mp.sticky_illegal:
                frozen[:] = frozen | (active & (stage == ILLEGAL))
            shifted = np.vstack([stage[None, :], pipe[:-1]])
            pipe[:] = np.where(active[None, :], shifted, pipe)
            return out

        return pipe_eval

    remaining = np.zeros(n, dtype=np.int64)
    result = np.full(n, DISC, dtype=np.int64)
    frozen = np.zeros(n, dtype=bool)

    def nonpipe_eval():
        active = ~frozen
        incoming = combined()
        busy = remaining > 0
        m_busy = active & busy
        remaining[:] = np.where(m_busy, remaining - 1, remaining)
        result[:] = np.where(
            m_busy & (incoming != DISC), ILLEGAL, result
        )
        m_start = active & ~busy & (incoming != DISC)
        remaining[:] = np.where(m_start, mp.latency, remaining)
        result[:] = np.where(m_start, incoming, result)
        done = remaining == 0
        out = np.where((m_busy | m_start) & done, result, DISC)
        out = np.where(frozen, ILLEGAL, out)
        if mp.sticky_illegal:
            frozen[:] = frozen | (active & (result == ILLEGAL) & done)
        return out

    return nonpipe_eval


# ----------------------------------------------------------------------
# shard slicing
# ----------------------------------------------------------------------
def slice_for_shard(plan: Plan, shard_plan: Any, shard: int) -> PlanSlice:
    """Project ``plan`` onto one shard of ``shard_plan``.

    Builds the local port table in the same order the per-worker
    engine used to build it from the model -- owned buses (with their
    global declaration index), ghost register outputs for the shard's
    reads, then owned module ports -- and rewrites the global action
    tables into local driver/source indices.  Entries keep the global
    spec index ``gidx``: the conflict-order and barrier-merge identity.
    """
    names: List[str] = []
    inits: List[int] = []
    index: Dict[str, int] = {}

    def port(name: str, init: int) -> int:
        idx = len(names)
        names.append(name)
        inits.append(init)
        index[name] = idx
        return idx

    bus_decl: Dict[int, int] = {}
    for decl in range(plan.bus_count):
        bus = plan.port_names[decl]
        if shard_plan.bus_shard[bus] == shard:
            bus_decl[port(bus, DISC)] = decl
    ghosts: Dict[str, int] = {}
    for reg in shard_plan.reads[shard]:
        ghosts[reg] = port(f"{reg}_out", DISC)
    modules: List[ModulePlan] = []
    for mp in plan.modules:
        if shard_plan.module_shard[mp.name] != shard:
            continue
        in_idxs = tuple(
            port(f"{mp.name}_in{i}", DISC) for i in range(1, mp.arity + 1)
        )
        out_idx = port(f"{mp.name}_out", DISC)
        op_idx = None
        if mp.op_idx is not None:
            op_idx = port(f"{mp.name}_op", DISC)
        modules.append(
            replace(mp, in_idxs=in_idxs, out_idx=out_idx, op_idx=op_idx)
        )

    drv_owner: List[str] = []
    drv_sink: List[int] = []
    sink_drivers: Dict[int, List[int]] = {}
    asserts: Dict[CycleKey, List[tuple]] = {}
    releases: Dict[CycleKey, List[tuple]] = {}
    for gidx, (step, phase_int, source, sink_name) in enumerate(
        plan.spec_rows
    ):
        if shard_plan.spec_shards[gidx] != shard:
            continue
        export_reg = plan.spec_exports[gidx]
        if source.startswith("op:"):
            src: Optional[int] = None
            # Recover the op-code constant from the global assert table
            # entry for this spec (drivers are the global spec index).
            const = _global_const(plan, step, phase_int, gidx)
        else:
            src, const = index[source], 0
        if export_reg is None:
            sink = index[sink_name]
            drv: Optional[int] = len(drv_owner)
            drv_owner.append(plan.drv_owner[gidx])
            drv_sink.append(sink)
            sink_drivers.setdefault(sink, []).append(drv)
        else:
            drv = None
        asserts.setdefault((step, phase_int), []).append(
            (drv, export_reg, src, const, gidx)
        )
        release_key = (step, (phase_int + 1) % PHASES_PER_STEP)
        releases.setdefault(release_key, []).append((drv, gidx))

    return PlanSlice(
        shard=shard,
        names=tuple(names),
        inits=tuple(inits),
        index=index,
        bus_decl=bus_decl,
        ghosts=ghosts,
        modules=tuple(modules),
        drv_owner=tuple(drv_owner),
        drv_sink=tuple(drv_sink),
        sink_drivers={
            sink: tuple(drvs) for sink, drvs in sink_drivers.items()
        },
        asserts={key: tuple(acts) for key, acts in asserts.items()},
        releases={key: tuple(rels) for key, rels in releases.items()},
    )


def _global_const(plan: Plan, step: int, phase_int: int, gidx: int) -> int:
    for drv, _src, const in plan.asserts[(step, phase_int)]:
        if drv == gidx:
            return const
    raise ModelError(  # pragma: no cover - plan invariant
        f"plan has no assert entry for spec {gidx} at ({step}, {phase_int})"
    )
