"""Pluggable simulation-engine layer.

See :mod:`repro.engine.backend` for the :class:`Backend` protocol and
the factory registry, and :mod:`repro.engine.compiled` for the
compiled control-step backend.
"""

from .backend import (
    Backend,
    BackendError,
    BackendFactory,
    backend_names,
    create_backend,
    register_backend,
    run_metrics,
)
from .batched import CompiledBatchedRTSimulation
from .compiled import CompiledRTSimulation, PortView

__all__ = [
    "Backend",
    "BackendError",
    "BackendFactory",
    "backend_names",
    "create_backend",
    "register_backend",
    "run_metrics",
    "CompiledBatchedRTSimulation",
    "CompiledRTSimulation",
    "PortView",
]
