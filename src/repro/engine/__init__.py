"""Pluggable simulation-engine layer.

See :mod:`repro.engine.backend` for the :class:`Backend` protocol and
the factory registry, and :mod:`repro.engine.compiled` for the
compiled control-step backend.
"""

from .backend import (
    Backend,
    BackendError,
    BackendFactory,
    backend_names,
    create_backend,
    register_backend,
    run_metrics,
    shard_metrics_rows,
)
from .batched import CompiledBatchedRTSimulation
from .codegen import (
    CODEGEN_VERSION,
    CodegenBatchedRTSimulation,
    CodegenCache,
    CodegenRTSimulation,
    gc_caches,
    generate_source,
)
from .compiled import CompiledRTSimulation, PortView
from .partition import (
    PartitionError,
    ShardPlan,
    connectivity_clusters,
    plan_shards,
    plan_shards_for,
)
from .plan import (
    PLAN_VERSION,
    ModulePlan,
    Plan,
    PlanCache,
    PlanHandle,
    PlanSlice,
    lower,
    model_digest,
    resolve_plan,
    slice_for_shard,
)
from .sharded import ShardedRTSimulation, ShardFailure

__all__ = [
    "Backend",
    "BackendError",
    "BackendFactory",
    "backend_names",
    "create_backend",
    "register_backend",
    "run_metrics",
    "shard_metrics_rows",
    "CompiledBatchedRTSimulation",
    "CompiledRTSimulation",
    "PortView",
    "CODEGEN_VERSION",
    "CodegenBatchedRTSimulation",
    "CodegenCache",
    "CodegenRTSimulation",
    "gc_caches",
    "generate_source",
    "PartitionError",
    "ShardPlan",
    "connectivity_clusters",
    "plan_shards",
    "plan_shards_for",
    "PLAN_VERSION",
    "ModulePlan",
    "Plan",
    "PlanCache",
    "PlanHandle",
    "PlanSlice",
    "lower",
    "model_digest",
    "resolve_plan",
    "slice_for_shard",
    "ShardedRTSimulation",
    "ShardFailure",
]
