"""The sharded multi-process backend: K workers, one barrier per step.

:class:`ShardedRTSimulation` lowers a model once
(:func:`repro.engine.plan.lower`, or a plan-cache hit), partitions the
resulting Plan with :func:`repro.engine.partition.plan_shards_for`,
and executes each shard's buses and functional units in a worker
process fed a :class:`~repro.engine.plan.PlanSlice` of the tables it
owns.  The control-step
boundary is the only synchronization point (the paper's six-phase
timing scheme makes it one naturally): register outputs are stable for
a whole step and register inputs only matter at the step's CR cycle,
so the coordinator ships boundary register values to the workers at
the top of each step and merges the workers' register-write
contributions at the bottom.

Observable behaviour is **bit-identical per run** to the ``compiled``
backend (and therefore to the event kernel):

* final registers, full traces and the conflict event list -- same
  ``(CS, PH)`` locations, same colliding sources, same order.  Bus and
  module-port conflicts are detected inside the owning worker exactly
  as ``compiled`` detects them; register-input conflicts are detected
  by merging the per-shard driver sets at the barrier (each
  contribution carries its global TRANS index, so merged driver sets
  keep the single-process driver order) and localize to the writing
  step's ``(CS, CR)`` cycle like every other backend.
* the canonical probe stream: workers record their cycles' bus drives
  and conflicts, and the coordinator re-serializes the merged stream
  in the canonical per-cycle order (conflicts, step boundary on RA,
  phase boundary, bus drives in declaration order, register latches in
  declaration order).  Probes observe step ``s``'s cycles right after
  its barrier -- same order, one step latent.
* the paper's delta accounting (``CS_MAX * 6`` plus the conditional
  trailing cycle) and the compiled backend's event/transaction
  profile: schedule bookkeeping is counted once by the coordinator,
  value activity by the worker that owns the port.

A worker that dies (or wedges past ``sync_timeout``) never hangs the
barrier: the coordinator terminates the fleet and raises
:class:`ShardFailure` naming the shard and its last completed
``(CS, PH)``.

Models must be picklable when the platform lacks the ``fork`` start
method; on fork platforms (Linux) arbitrary operation closures work.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..core.diagnostics import ConflictEvent, ConflictLog
from ..core.model import ModelError, RTModel
from ..core.modules_lib import Operation
from ..core.phases import PHASES_PER_STEP, Phase, StepPhase
from ..core.trace import TraceLog
from ..core.values import DISC, ILLEGAL, resolve_rt
from ..kernel import SimStats
from ..kernel.errors import DeltaCycleLimitError
from ..observe.emit import emit_canonical_cycle
from .compiled import _EXTRA_EVENTS, _SCHED_TX, PortView
from .partition import plan_shards_for
from .plan import (
    Plan,
    PlanCacheArg,
    PlanHandle,
    PlanSlice,
    compile_module_eval,
    resolve_plan,
    slice_for_shard,
)

#: Order-key offset for release pends, so same-cycle conflict events
#: sort exactly like the single-process dirty order (all asserts in
#: global TRANS order, then all releases).
_RELEASE_ORDER_BASE = 1 << 32


class ShardFailure(RuntimeError):
    """A shard worker died or stopped responding at the barrier.

    ``shard`` is the failing shard index; ``last_completed`` is the
    last ``(CS, PH)`` the shard is known to have finished (the CR
    cycle of its last synchronized step), or None when it died before
    completing any step.
    """

    def __init__(
        self,
        shard: int,
        last_completed: Optional[StepPhase],
        reason: str = "worker process died",
    ) -> None:
        self.shard = shard
        self.last_completed = last_completed
        self.reason = reason
        where = (
            f"after completing {last_completed}"
            if last_completed is not None
            else "before completing any control step"
        )
        super().__init__(f"shard {shard}: {reason} ({where})")


# ----------------------------------------------------------------------
# the per-worker engine (runs inside the worker process)
# ----------------------------------------------------------------------
class _ShardEngine:
    """One shard's compiled executor: owned buses + owned units only.

    Mirrors :class:`repro.engine.compiled.CompiledRTSimulation` cycle
    for cycle on the shard's :class:`~repro.engine.plan.PlanSlice` --
    the pre-sliced port/driver tables the coordinator ships instead of
    a model fragment.  Foreign register outputs appear as ghost ports
    refreshed from the barrier message; register-input drives are
    exported as ``(global TRANS index, value)`` contributions instead
    of resolving locally.  ``module_ops`` carries the live operation
    bodies (by module name) the slice deliberately does not.
    """

    def __init__(
        self,
        plan_slice: PlanSlice,
        module_ops: Mapping[str, Mapping[str, Operation]],
        trace_names: Optional[Iterable[str]],
        probe_on: bool,
    ) -> None:
        self.shard = plan_slice.shard
        self._probe_on = probe_on

        self._names: List[str] = list(plan_slice.names)
        self._values: List[int] = list(plan_slice.inits)
        self._index: Dict[str, int] = dict(plan_slice.index)
        # Owned buses, with their global declaration index (canonical
        # probe order is bus declaration order across all shards).
        self._bus_decl: Dict[int, int] = dict(plan_slice.bus_decl)
        # Ghost register outputs (values arrive with each step message).
        self._ghosts: Dict[str, int] = dict(plan_slice.ghosts)
        # Owned functional units (bodies resolved by name).
        self._module_evals = [
            (
                mp.out_idx,
                compile_module_eval(mp, module_ops[mp.name], self._values),
            )
            for mp in plan_slice.modules
        ]

        # Driver table for owned TRANS instances, in global spec order.
        self._drv_contrib: List[int] = [DISC] * len(plan_slice.drv_owner)
        self._drv_owner = plan_slice.drv_owner
        self._drv_sink = plan_slice.drv_sink
        self._sink_drivers = plan_slice.sink_drivers
        # asserts[key] -> (local driver | None, export register | None,
        #                  source index | None, const, global index)
        self._asserts = plan_slice.asserts
        self._releases = plan_slice.releases

        self._trace_items: Optional[List[tuple]] = None
        if trace_names is not None:
            self._trace_items = [
                (name, self._index[name])
                for name in trace_names
                if name in self._index and name not in self._ghosts
            ]

        self._active_illegal: set[int] = set()
        self._pend_drv: List[tuple] = []  # (driver, value, order tag)
        self._pend_out: List[tuple] = []  # (port, value)

    # ------------------------------------------------------------------
    def run_step(self, step: int, reg_updates: Mapping[str, int]) -> dict:
        """Execute the six cycles of ``step``; return the barrier payload."""
        values = self._values
        events = 0
        transactions = 0
        exports: Dict[str, List[tuple]] = {}
        conflicts: List[tuple] = []
        bus_changes: Dict[int, list] = {}
        trace_rows: Dict[int, dict] = {}
        for phase in Phase:
            if phase is Phase.RA:
                for name, value in reg_updates.items():
                    values[self._ghosts[name]] = value
            changed = self._apply_pending() if (
                self._pend_drv or self._pend_out
            ) else None
            if changed is not None:
                events += changed[0]
                for sink, order in changed[1]:
                    conflicts.append(
                        (
                            self._names[sink],
                            int(phase),
                            tuple(
                                (self._drv_owner[d], self._drv_contrib[d])
                                for d in self._sink_drivers[sink]
                                if self._drv_contrib[d] != DISC
                            ),
                            order,
                        )
                    )
                if self._probe_on and changed[2]:
                    bus_changes[int(phase)] = [
                        (self._bus_decl[idx], self._names[idx], values[idx])
                        for idx in sorted(
                            changed[2], key=lambda i: self._bus_decl[i]
                        )
                    ]
            if self._trace_items is not None:
                trace_rows[int(phase)] = {
                    name: values[idx] for name, idx in self._trace_items
                }
            key = (step, int(phase))
            for drv, export_reg, src, const, gidx in self._asserts.get(
                key, ()
            ):
                value = values[src] if src is not None else const
                if export_reg is None:
                    self._pend_drv.append((drv, value, gidx))
                else:
                    exports.setdefault(export_reg, []).append((gidx, value))
                transactions += 1
            for drv, gidx in self._releases.get(key, ()):
                if drv is not None:
                    self._pend_drv.append(
                        (drv, DISC, _RELEASE_ORDER_BASE + gidx)
                    )
                transactions += 1
            if phase is Phase.CM:
                for out_idx, evaluate in self._module_evals:
                    self._pend_out.append((out_idx, evaluate()))
                    transactions += 1
        return {
            "exports": exports,
            "conflicts": conflicts,
            "bus_changes": bus_changes,
            "trace": trace_rows,
            "events": events,
            "transactions": transactions,
        }

    def _apply_pending(self) -> tuple:
        """Apply last cycle's updates; returns (events, conflicts, buses).

        The exact update step of the compiled backend: contributions
        land first-touch-ordered, dirty sinks re-resolve, and newly
        ILLEGAL sinks yield conflict records tagged with the global
        first-touch order so the coordinator can interleave same-cycle
        conflicts from different shards canonically.
        """
        pend_drv, self._pend_drv = self._pend_drv, []
        pend_out, self._pend_out = self._pend_out, []
        values = self._values
        contrib = self._drv_contrib
        events = 0
        dirty: List[int] = []
        first_touch: Dict[int, int] = {}
        changed_buses: set[int] = set()
        for drv, value, order in pend_drv:
            contrib[drv] = value
            sink = self._drv_sink[drv]
            if sink not in first_touch:
                first_touch[sink] = order
                dirty.append(sink)
        for idx, value in pend_out:
            if values[idx] != value:
                values[idx] = value
                events += 1
        newly_illegal: List[tuple] = []
        for sink in dirty:
            new = resolve_rt([contrib[d] for d in self._sink_drivers[sink]])
            if new == values[sink]:
                continue
            values[sink] = new
            events += 1
            if sink in self._bus_decl:
                changed_buses.add(sink)
            if new == ILLEGAL:
                if sink not in self._active_illegal:
                    self._active_illegal.add(sink)
                    newly_illegal.append((sink, first_touch[sink]))
            else:
                self._active_illegal.discard(sink)
        return events, newly_illegal, changed_buses

    def final_values(self) -> Dict[str, int]:
        """Port name -> final value for every owned (non-ghost) port."""
        ghost_idxs = set(self._ghosts.values())
        return {
            name: self._values[idx]
            for name, idx in self._index.items()
            if idx not in ghost_idxs
        }


def _shard_worker_main(
    shard: int,
    plan_slice: PlanSlice,
    module_ops: Mapping[str, Mapping[str, Operation]],
    conn,
    trace_names: Optional[List[str]],
    probe_on: bool,
    fail_at_step: Optional[int],
) -> None:
    """Worker loop: build the shard engine, then serve step messages."""
    wall = 0.0
    try:
        engine = _ShardEngine(plan_slice, module_ops, trace_names, probe_on)
        conn.send_bytes(pickle.dumps(("ready", shard)))
        while True:
            message = pickle.loads(conn.recv_bytes())
            kind = message[0]
            if kind == "step":
                _, step, reg_updates = message
                if fail_at_step is not None and step == fail_at_step:
                    os._exit(17)  # test hook: simulate a dying worker
                t0 = time.perf_counter()
                payload = engine.run_step(step, reg_updates)
                wall += time.perf_counter() - t0
                conn.send_bytes(pickle.dumps(("done", step, payload)))
            elif kind == "finish":
                conn.send_bytes(
                    pickle.dumps(("final", engine.final_values(), wall))
                )
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown message {kind!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    except Exception:
        try:
            conn.send_bytes(
                pickle.dumps(("error", traceback.format_exc()))
            )
        except (OSError, ValueError):  # pragma: no cover - pipe gone
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# the coordinator (the Backend the registry hands out)
# ----------------------------------------------------------------------
class ShardedRTSimulation:
    """A sharded, ready-to-run elaboration of an RT model.

    Result surface mirrors :class:`CompiledRTSimulation`: ``registers``,
    ``conflicts``, ``clean``, ``stats``, ``monitor``, ``tracer``,
    ``signal`` (after the run).  Additionally ``plan`` exposes the
    shard plan and ``shard_metrics`` the per-shard barrier accounting
    (sync count, bytes each way, worker wall) that
    :func:`repro.engine.run_metrics` folds into its row.
    """

    #: Engine kind reported to observers (see repro.observe).
    backend_name = "sharded"

    def __init__(
        self,
        model: RTModel,
        register_values: Optional[Mapping[str, int]] = None,
        trace: bool = False,
        watch: Optional[Iterable[str]] = None,
        max_deltas: int = 1_000_000,
        transfer_engine: bool = True,
        observe=None,
        shards: int = 2,
        partition: Optional[Mapping[str, int]] = None,
        sync_timeout: float = 60.0,
        plan: Union[None, Plan, PlanHandle] = None,
        plan_cache: PlanCacheArg = None,
        _test_fail_at: Optional[Mapping[int, int]] = None,
    ) -> None:
        del transfer_engine  # one compiled realization covers both
        if register_values is not None and not isinstance(
            register_values, Mapping
        ):
            raise ModelError(
                "the sharded backend runs one vector per elaboration; "
                "use backend='compiled-batched' for vector sweeps"
            )
        self.model = model
        self._max_deltas = max_deltas
        self._probe = observe
        self._sync_timeout = sync_timeout
        self._test_fail_at = dict(_test_fail_at or {})
        overrides = dict(register_values or {})
        unknown = set(overrides) - set(model.registers)
        if unknown:
            raise ModelError(
                f"register_values for unknown registers: {sorted(unknown)}"
            )
        # One lowering, shared: the shard planner walks the same Plan
        # the workers' slices are cut from.
        handle = resolve_plan(model, plan, plan_cache)
        self.model_plan: Plan = handle.plan
        self.plan_cache_state: str = handle.source
        self.plan_build_ms: float = handle.build_ms
        self.plan = plan_shards_for(self.model_plan, shards, partition)
        self.num_shards = self.plan.num_shards

        # Register plane (the barrier state) + initial values.
        self._plane: Dict[str, int] = {}
        for reg in model.registers.values():
            init = overrides.get(reg.name, reg.init)
            if init != DISC:
                init %= 1 << model.width
            self._plane[reg.name] = init

        # Global port-name table, in the compiled backend's declaration
        # order (for full traces, watch validation and signal()) --
        # exactly the plan's port table.
        self._global_names: List[str] = list(self.model_plan.port_names)
        global_set = set(self._global_names)

        self.tracer: Optional[TraceLog] = None
        self._watched: Optional[List[str]] = None
        if trace or watch:
            watched = list(watch) if watch else list(self._global_names)
            for extra in watched:
                if extra not in global_set:
                    raise ModelError(f"cannot watch unknown signal {extra!r}")
            self._watched = watched
            self.tracer = TraceLog(watched)

        # Driver identities for barrier merges live in the plan
        # (``drv_owner[gidx]`` is the TRANS instance name).
        self._has_final_wb = any(
            step == model.cs_max and phase_int == int(Phase.WB)
            for step, phase_int, _source, _sink in self.model_plan.spec_rows
        )

        self.monitor = ConflictLog(
            listener=observe.on_conflict if observe is not None else None
        )
        self.stats = SimStats()
        self.stats.cycles = 1
        self.stats.transactions = 2
        self.shard_metrics: List[Dict[str, float]] = []
        self._final_values: Optional[Dict[str, int]] = None
        self._ran = False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> "ShardedRTSimulation":
        """Run to quiescence (all ``cs_max`` steps, one barrier each)."""
        if self._ran:
            return self
        total_cycles = self.model.cs_max * PHASES_PER_STEP
        if total_cycles > self._max_deltas:
            raise DeltaCycleLimitError(self._max_deltas)
        if self._probe is not None:
            self._probe.on_run_start(self)
        t0 = time.perf_counter()
        self._run_barriers()
        self._ran = True
        if self._probe is not None:
            self._probe.on_run_end(self, time.perf_counter() - t0)
        from ..observe.metrics import record_backend_run

        record_backend_run(self)
        return self

    def _run_barriers(self) -> None:
        ctx = _mp_context()
        watched = self._watched
        conns = []
        procs = []
        bytes_to = [0] * self.num_shards
        bytes_from = [0] * self.num_shards
        last_step = [0] * self.num_shards
        # Each worker receives its slice of the lowered plan plus the
        # live operation bodies of the modules it owns -- never the
        # whole model.
        module_ops = {
            mp.name: self.model.modules[mp.name].operations
            for mp in self.model_plan.modules
        }
        try:
            for k in range(self.num_shards):
                parent, child = ctx.Pipe()
                plan_slice = slice_for_shard(self.model_plan, self.plan, k)
                owned_ops = {
                    mp.name: module_ops[mp.name]
                    for mp in plan_slice.modules
                }
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(
                        k,
                        plan_slice,
                        owned_ops,
                        child,
                        watched,
                        self._probe is not None,
                        self._test_fail_at.get(k),
                    ),
                    daemon=True,
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
            for k in range(self.num_shards):
                self._recv(conns, procs, k, last_step, bytes_from)

            latch_changes: List[str] = []
            resolutions: Dict[str, int] = {}
            reads = self.plan.reads
            for step in range(1, self.model.cs_max + 1):
                for k in range(self.num_shards):
                    updates = {
                        reg: self._plane[reg]
                        for reg in reads[k]
                        if step == 1 or reg in latch_changes
                    }
                    payload = pickle.dumps(("step", step, updates))
                    bytes_to[k] += len(payload)
                    conns[k].send_bytes(payload)
                replies = []
                for k in range(self.num_shards):
                    message = self._recv(
                        conns, procs, k, last_step, bytes_from
                    )
                    last_step[k] = step
                    replies.append(message[2])
                resolutions, reg_conflicts = self._merge_exports(
                    step, replies
                )
                self._emit_step(
                    step, replies, reg_conflicts, resolutions, latch_changes
                )
                latch_changes = self._latch(resolutions)

            trailing = self._has_final_wb or bool(latch_changes)
            if trailing:
                self.stats.cycles += 1
                self.stats.delta_cycles += 1

            worker_walls = [0.0] * self.num_shards
            final_values: Dict[str, int] = {}
            for k in range(self.num_shards):
                payload = pickle.dumps(("finish",))
                bytes_to[k] += len(payload)
                conns[k].send_bytes(payload)
            for k in range(self.num_shards):
                message = self._recv(conns, procs, k, last_step, bytes_from)
                final_values.update(message[1])
                worker_walls[k] = message[2]
            for reg, value in self._plane.items():
                final_values[f"{reg}_out"] = value
                final_values[f"{reg}_in"] = DISC
            self._final_values = final_values
            self.shard_metrics = [
                {
                    "shard": k,
                    "syncs": self.model.cs_max,
                    "bytes_to_worker": bytes_to[k],
                    "bytes_from_worker": bytes_from[k],
                    "worker_wall": worker_walls[k],
                }
                for k in range(self.num_shards)
            ]
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=5.0)

    def _recv(
        self,
        conns,
        procs,
        k: int,
        last_step: List[int],
        bytes_from: List[int],
    ):
        """One barrier receive, with liveness checks instead of hanging."""
        deadline = time.monotonic() + self._sync_timeout
        while True:
            if conns[k].poll(0.05):
                try:
                    data = conns[k].recv_bytes()
                except (EOFError, OSError):
                    self._fail(k, last_step, "worker pipe closed")
                bytes_from[k] += len(data)
                message = pickle.loads(data)
                if message[0] == "error":
                    self._fail(
                        k, last_step, f"worker raised:\n{message[1]}"
                    )
                return message
            if not procs[k].is_alive():
                if conns[k].poll(0.2):
                    continue  # a message was still in flight
                self._fail(k, last_step, "worker process died")
            if time.monotonic() > deadline:
                self._fail(k, last_step, "barrier timeout")

    def _fail(self, k: int, last_step: List[int], reason: str) -> None:
        completed = (
            StepPhase(last_step[k], Phase.CR) if last_step[k] >= 1 else None
        )
        raise ShardFailure(k, completed, reason)

    # ------------------------------------------------------------------
    # barrier bookkeeping
    # ------------------------------------------------------------------
    def _merge_exports(self, step: int, replies: List[dict]):
        """Merge per-shard register-write driver sets for this step.

        Contributions are reunited in global TRANS order, resolved with
        the paper's resolution function, and ILLEGAL results become
        conflict events at ``(step, CR)`` -- the cycle in which the
        colliding drives take effect in every backend.
        """
        merged: Dict[str, List[tuple]] = {}
        for payload in replies:
            for reg, contribs in payload["exports"].items():
                merged.setdefault(reg, []).extend(contribs)
        resolutions: Dict[str, int] = {}
        conflicts: List[tuple] = []
        for reg, contribs in merged.items():
            contribs.sort()
            resolved = resolve_rt([value for _, value in contribs])
            resolutions[reg] = resolved
            if resolved == ILLEGAL:
                sources = tuple(
                    (self.model_plan.drv_owner[gidx], value)
                    for gidx, value in contribs
                    if value != DISC
                )
                conflicts.append(
                    (f"{reg}_in", sources, contribs[0][0])
                )
        return resolutions, conflicts

    def _emit_step(
        self,
        step: int,
        replies: List[dict],
        reg_conflicts: List[tuple],
        resolutions: Dict[str, int],
        latch_changes: List[str],
    ) -> None:
        """Re-serialize step ``step``'s merged cycles canonically.

        Per cycle: schedule bookkeeping, conflict records (workers' and
        the barrier's, interleaved by global first-touch order), probe
        callbacks in the canonical order, and the trace sample.
        """
        stats = self.stats
        probe = self._probe
        tracer = self.tracer
        schedule_end = step == self.model.cs_max
        for phase in Phase:
            at = StepPhase(step, phase)
            stats.cycles += 1
            stats.delta_cycles += 1
            stats.process_resumes += 1
            stats.events += 1 + _EXTRA_EVENTS.get(int(phase), 0)
            if not (schedule_end and phase is Phase.CR):
                stats.transactions += _SCHED_TX[int(phase)]
            cycle_conflicts = []
            for payload in replies:
                for signal, conflict_phase, sources, order in payload[
                    "conflicts"
                ]:
                    if conflict_phase == int(phase):
                        cycle_conflicts.append((order, signal, sources))
            if phase is Phase.CR:
                for signal, sources, order in reg_conflicts:
                    cycle_conflicts.append((order, signal, sources))
            for order, signal, sources in sorted(cycle_conflicts):
                self.monitor.record(ConflictEvent(signal, at, sources))
            if probe is not None:
                drives = []
                for payload in replies:
                    drives.extend(payload["bus_changes"].get(int(phase), ()))
                latches = (
                    [
                        (reg, self._plane[reg])
                        for reg in self.model.registers
                        if reg in latch_changes
                    ]
                    if phase is Phase.RA and latch_changes
                    else []
                )
                emit_canonical_cycle(
                    probe,
                    at,
                    [(bus, value) for _, bus, value in sorted(drives)],
                    latches,
                )
            if tracer is not None:
                row: Dict[str, int] = {}
                for payload in replies:
                    row.update(payload["trace"].get(int(phase), ()))
                assert self._watched is not None
                for name in self._watched:
                    if name in row:
                        continue
                    if name.endswith("_out") and name[:-4] in self._plane:
                        row[name] = self._plane[name[:-4]]
                    elif name.endswith("_in") and name[:-3] in self._plane:
                        row[name] = (
                            resolutions.get(name[:-3], DISC)
                            if phase is Phase.CR
                            else DISC
                        )
                tracer.append(at, row)
        for payload in replies:
            stats.events += payload["events"]
            stats.transactions += payload["transactions"]

    def _latch(self, resolutions: Dict[str, int]) -> List[str]:
        """Apply the merged CR latches; returns changed register names."""
        stats = self.stats
        changed: List[str] = []
        for reg, resolved in resolutions.items():
            if resolved == DISC:
                continue
            # The reg_in port took the resolved value at CR (one event)
            # and releases back to DISC one cycle later (another), and
            # the latch itself is one scheduled transaction -- the
            # single-process accounting, attributed here in bulk.
            stats.events += 2
            stats.transactions += 1
            if self._plane[reg] != resolved:
                self._plane[reg] = resolved
                stats.events += 1
                changed.append(reg)
        return changed

    # ------------------------------------------------------------------
    # results (mirrors CompiledRTSimulation)
    # ------------------------------------------------------------------
    @property
    def registers(self) -> Dict[str, int]:
        """Current value of every register's output port."""
        return dict(self._plane)

    def __getitem__(self, register: str) -> int:
        try:
            return self._plane[register]
        except KeyError:
            raise KeyError(f"unknown register {register!r}") from None

    @property
    def conflicts(self) -> List[ConflictEvent]:
        """Observed ILLEGAL episodes, localized to (step, phase)."""
        return self.monitor.events

    @property
    def clean(self) -> bool:
        """True when the run produced no ILLEGAL value anywhere."""
        return self.monitor.clean and not any(
            value == ILLEGAL for value in self._plane.values()
        )

    def signal(self, name: str) -> PortView:
        """Final value view of one port (available after ``run()``)."""
        if self._final_values is None:
            raise RuntimeError(
                "signal() on the sharded backend is available after run()"
            )
        try:
            value = self._final_values[name]
        except KeyError:
            raise KeyError(f"unknown signal {name!r}") from None
        return PortView(name, [value], 0)


def _mp_context():
    """Fork where available (closures work), spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
