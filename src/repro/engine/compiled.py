"""The compiled control-step backend.

Instead of elaborating the model onto the generic delta-cycle kernel
(heap of pending transactions, generator processes, waiter sets), this
backend executes the model's lowered :class:`~repro.engine.plan.Plan`:
the static schedule turned into per-``(step, phase)`` action tables --
transfer asserts and releases, module evaluations in CM, register
latches in CR -- which :meth:`CompiledRTSimulation.run` walks as a
straight loop over :func:`repro.core.phases.iter_schedule`.  This is
exactly the activation indexing a compiled VHDL simulator derives from
the subset's ``wait until CS = S and PH = P`` conditions (cf. the AOC
C-model derivation in PAPERS.md): the schedule is static, so no
runtime scheduler is needed.  Lowering itself lives in
:func:`repro.engine.plan.lower` (shared with the batched and sharded
backends) and can be skipped entirely on a
:class:`~repro.engine.plan.PlanCache` hit.

Observable behaviour is **bit-identical** to the event kernel:

* register results, full port-by-port ``(step, phase)`` traces, and
  conflict events with the same ``(CS, PH)`` locations, sources and
  order -- the executor replicates the kernel's one-delta-cycle driver
  update pipeline (a value driven during cycle *k* becomes effective
  in cycle *k + 1*), VHDL transaction semantics on resolved sinks, and
  the once-per-episode conflict accounting;
* the paper's delta accounting: ``stats.delta_cycles`` counts one
  synthesized delta cycle per executed (step, phase) point -- the
  ``CS_MAX * 6`` claim of E2 -- plus the same conditional trailing
  cycle the kernel needs when the final CR still has updates in
  flight; ``events`` and ``transactions`` count the identical signal
  activity (model ports plus the CS/PH/tick bookkeeping the kernel's
  controller generates).

``process_resumes`` is the one honestly *different* counter: the
compiled loop wakes no processes at all, so it reports one fused
dispatch per executed cycle -- the measure of scheduler work the E6
benchmark compares against the event kernel's per-component wakeups.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Union

from ..core.diagnostics import ConflictEvent, ConflictLog
from ..core.model import ModelError, RTModel
from ..core.phases import (
    PHASES_PER_STEP,
    Phase,
    StepPhase,
    schedule_points,
)
from ..core.trace import TraceLog
from ..core.values import DISC, ILLEGAL, resolve_rt
from ..kernel import SimStats
from ..kernel.errors import DeltaCycleLimitError
from ..observe.emit import emit_canonical_cycle
from .plan import (
    Plan,
    PlanCacheArg,
    PlanHandle,
    compile_module_eval,
    resolve_plan,
)

#: Per-cycle bookkeeping phases: CS changes in RA, ticks fire in CM/CR.
_EXTRA_EVENTS = {int(Phase.RA): 1, int(Phase.CM): 1, int(Phase.CR): 1}

#: Bookkeeping transactions the kernel's controller *schedules during*
#: a cycle at each phase (counted at schedule time, one cycle before
#: they apply): the next PH always, plus the tick alongside CM/CR and
#: the CS increment alongside RA (scheduled in the preceding CR).
_SCHED_TX = {
    int(Phase.RA): 1,
    int(Phase.RB): 2,
    int(Phase.CM): 1,
    int(Phase.WA): 1,
    int(Phase.WB): 2,
    int(Phase.CR): 2,
}


class PortView:
    """Read-only view of one compiled port (``signal(name)`` result).

    Mimics the slice of the kernel :class:`~repro.kernel.Signal` API
    that model-level code reads: ``name`` and the current ``value``.
    """

    __slots__ = ("name", "_values", "_index")

    def __init__(self, name: str, values: List[int], index: int) -> None:
        self.name = name
        self._values = values
        self._index = index

    @property
    def value(self) -> int:
        return self._values[self._index]

    def __repr__(self) -> str:
        return f"<PortView {self.name}={self.value!r}>"


class CompiledRTSimulation:
    """A compiled, ready-to-run elaboration of an RT model.

    Drop-in for :class:`repro.core.simulator.RTSimulation`: same
    constructor keywords (``transfer_engine`` is accepted and ignored
    -- both realizations compile to the same action tables), same
    result surface (``registers``, ``conflicts``, ``clean``, ``stats``,
    ``monitor``, ``tracer``, ``signal``, ``run_steps``).

    ``plan`` / ``plan_cache`` select the lowered IR the executor runs:
    an explicit :class:`~repro.engine.plan.Plan` skips lowering, and a
    cache turns repeat elaborations of the same model into a digest +
    unpickle.  ``model_plan`` exposes the Plan in use;
    ``plan_cache_state`` (``hit`` / ``miss`` / ``off`` / ``given``) and
    ``plan_build_ms`` feed the :func:`repro.engine.run_metrics` row.

    ``observe`` attaches a :class:`repro.observe.Probe`; the executor
    then emits, per cycle, the canonical stream the event kernel's
    adapter produces -- conflicts first (via the monitor listener),
    then the step boundary (RA only), the phase boundary, bus drives
    in bus declaration order and register latches in register
    declaration order -- so the same probe sees identical ordered
    sequences on either backend.  When None, no per-cycle bookkeeping
    exists at all.
    """

    #: Engine kind reported to observers (see repro.observe).
    backend_name = "compiled"

    def __init__(
        self,
        model: RTModel,
        register_values: Optional[Mapping[str, int]] = None,
        trace: bool = False,
        watch: Optional[Iterable[str]] = None,
        max_deltas: int = 1_000_000,
        transfer_engine: bool = True,
        observe=None,
        plan: Union[None, Plan, PlanHandle] = None,
        plan_cache: PlanCacheArg = None,
    ) -> None:
        del transfer_engine  # one compiled realization covers both
        self.model = model
        self._max_deltas = max_deltas
        overrides = dict(register_values or {})
        unknown = set(overrides) - set(model.registers)
        if unknown:
            raise ModelError(
                f"register_values for unknown registers: {sorted(unknown)}"
            )

        # -- the lowered IR (shared with every compiled-style backend) ---
        handle = resolve_plan(model, plan, plan_cache)
        p = handle.plan
        self.model_plan: Plan = p
        self.plan_cache_state: str = handle.source
        self.plan_build_ms: float = handle.build_ms

        # -- port table (plan declaration order) -------------------------
        self._names: List[str] = list(p.port_names)
        self._values: List[int] = list(p.port_inits)
        self._index: dict[str, int] = dict(p.port_index)
        self._resolved: set[int] = set(p.resolved)
        self._reg_out_idx: dict[str, int] = {
            reg: out_idx for reg, _in_idx, out_idx in p.reg_ports
        }
        for reg, init in overrides.items():
            if init != DISC:
                init %= 1 << model.width
            self._values[self._reg_out_idx[reg]] = init
        self._reg_latches: List[tuple[int, int]] = [
            (in_idx, out_idx) for _reg, in_idx, out_idx in p.reg_ports
        ]
        # Operation bodies live in the model; the plan carries layout.
        self._module_evals = [
            (
                mp.out_idx,
                compile_module_eval(
                    mp, model.modules[mp.name].operations, self._values
                ),
            )
            for mp in p.modules
        ]

        # -- driver table (one per TRANS instance, in spec order) --------
        self._drv_contrib: List[int] = [DISC] * p.num_drivers
        self._drv_owner = p.drv_owner
        self._drv_sink = p.drv_sink
        self._sink_drivers = p.sink_drivers
        self._asserts = p.asserts
        self._releases = p.releases

        # -- observers ---------------------------------------------------
        self._probe = observe
        self.monitor = ConflictLog(
            listener=observe.on_conflict if observe is not None else None
        )
        self._active_illegal: set[int] = set()
        #: port indices whose effective value changed this cycle
        #: (tracked only while a probe is attached).
        self._cycle_changed: set[int] = set()
        self._bus_count = p.bus_count
        self.tracer: Optional[TraceLog] = None
        self._trace_items: Optional[List[tuple[str, int]]] = None
        if trace or watch:
            watched = list(watch) if watch else list(self._names)
            for extra in watched:
                if extra not in self._index:
                    raise ModelError(f"cannot watch unknown signal {extra!r}")
            if watch:
                # Subset fast path: sample only the watched ports, so
                # chip-scale sweeps don't pay all-ports trace memory.
                self._trace_items = [(n, self._index[n]) for n in watched]
            self.tracer = TraceLog(watched)

        # -- execution state --------------------------------------------
        self.stats = SimStats()
        # The kernel's initialization cycle: one cycle, and the
        # controller's initial CS/PH assignments (two transactions).
        self.stats.cycles = 1
        self.stats.transactions = 2
        self._schedule = schedule_points(model.cs_max)
        self._pos = 0
        #: updates scheduled during the current cycle, due next cycle:
        #: (driver index, value) and (port index, value) respectively.
        self._pend_drv: List[tuple[int, int]] = []
        self._pend_out: List[tuple[int, int]] = []
        self._finished = False
        self._ran = False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> "CompiledRTSimulation":
        """Run the model to quiescence (all ``cs_max`` control steps)."""
        from ..observe.metrics import record_backend_run

        if self._probe is None:
            self._execute_until(len(self._schedule))
            if not self._finished:
                self._finish()
            self._ran = True
            record_backend_run(self)
            return self
        import time as _time

        self._probe.on_run_start(self)
        t0 = _time.perf_counter()
        self._execute_until(len(self._schedule))
        if not self._finished:
            self._finish()
        self._ran = True
        self._probe.on_run_end(self, _time.perf_counter() - t0)
        record_backend_run(self)
        return self

    def rearm(
        self, register_values: Optional[Mapping[str, int]] = None
    ) -> "CompiledRTSimulation":
        """Reset this elaboration to time zero with new overrides.

        Every compiled table (ports, drivers, action tables, module
        evaluators) is input-independent, so re-running the same design
        only needs the *state* reset: the value plane and driver
        contributions are rewritten **in place** -- the module-eval
        closures (and the generated kernels of the codegen subclass)
        bind those containers at elaboration time -- the monitor and
        stats restart, and an attached tracer is cleared.  This is the
        serving hot path (:mod:`repro.serve` re-arms one cached
        elaboration per lane instead of re-elaborating per request);
        results are bit-identical to a fresh elaboration with the same
        ``register_values``.  Not supported with a probe attached (its
        emission hooks snapshot previous values at elaboration time).
        """
        if self._probe is not None:
            raise ModelError("rearm() does not support an attached probe")
        overrides = dict(register_values or {})
        unknown = set(overrides) - set(self.model.registers)
        if unknown:
            raise ModelError(
                f"register_values for unknown registers: {sorted(unknown)}"
            )
        p = self.model_plan
        values = self._values
        values[:] = p.port_inits
        width = self.model.width
        for reg, init in overrides.items():
            if init != DISC:
                init %= 1 << width
            values[self._reg_out_idx[reg]] = init
        self._drv_contrib[:] = [DISC] * p.num_drivers
        self.monitor = ConflictLog()
        self._active_illegal.clear()
        self._cycle_changed.clear()
        if self.tracer is not None:
            self.tracer.reset()
        self.stats = SimStats()
        self.stats.cycles = 1
        self.stats.transactions = 2
        self._pos = 0
        self._pend_drv.clear()
        self._pend_out.clear()
        self._finished = False
        self._ran = False
        return self

    def run_steps(self, steps: int) -> "CompiledRTSimulation":
        """Run only the first ``steps`` control steps (for debugging).

        Stops right after the (steps, RA) cycle executes -- the cycle
        in which CS reaches ``steps`` and the previous step's register
        latches land -- exactly where the event kernel's ``run_steps``
        loop exits.  ``steps > cs_max`` runs to quiescence.
        """
        if steps > self.model.cs_max:
            return self.run()
        if steps >= 1:
            self._execute_until((steps - 1) * PHASES_PER_STEP + 1)
        self._ran = True
        return self

    def _execute_until(self, end_pos: int) -> None:
        stats = self.stats
        values = self._values
        tracer = self.tracer
        while self._pos < end_pos:
            at = self._schedule[self._pos]
            self._pos += 1
            if stats.delta_cycles >= self._max_deltas:
                raise DeltaCycleLimitError(self._max_deltas)
            stats.cycles += 1
            stats.delta_cycles += 1
            stats.process_resumes += 1  # one fused dispatch per cycle
            # Controller bookkeeping the kernel performs each cycle: a
            # PH event always, plus CS in RA and the tick in CM/CR;
            # transactions follow the controller's schedule-time
            # profile (nothing is scheduled during the final CR).
            stats.events += 1 + _EXTRA_EVENTS.get(int(at.phase), 0)
            if self._pos < len(self._schedule) or at.phase is not Phase.CR:
                stats.transactions += _SCHED_TX[int(at.phase)]
            self._apply_pending(at, record_conflicts=True)
            if tracer is not None:
                if self._trace_items is not None:
                    tracer.append(
                        at,
                        {name: values[idx] for name, idx in self._trace_items},
                    )
                else:
                    tracer.append(at, dict(zip(self._names, values)))
            if self._probe is not None:
                self._emit_cycle(at)
            # -- this cycle's actions (due next cycle) -------------------
            key = (at.step, int(at.phase))
            for drv, src, const in self._asserts.get(key, ()):
                self._pend_drv.append(
                    (drv, values[src] if src is not None else const)
                )
                stats.transactions += 1
            for drv in self._releases.get(key, ()):
                self._pend_drv.append((drv, DISC))
                stats.transactions += 1
            phase = at.phase
            if phase is Phase.CM:
                for out_idx, evaluate in self._module_evals:
                    self._pend_out.append((out_idx, evaluate()))
                    stats.transactions += 1
            elif phase is Phase.CR:
                for in_idx, out_idx in self._reg_latches:
                    if values[in_idx] != DISC:
                        self._pend_out.append((out_idx, values[in_idx]))
                        stats.transactions += 1

    def _finish(self) -> None:
        """The trailing delta cycle, when the final CR left updates in
        flight (WB releases and register latches of step ``cs_max``).
        No conflicts are attributable there -- the kernel's monitor
        never drains without a PH event -- and no trace sample is
        taken, matching the event elaboration exactly."""
        self._finished = True
        if not (self._pend_drv or self._pend_out):
            return
        self.stats.cycles += 1
        self.stats.delta_cycles += 1
        last = self._schedule[-1]
        self._apply_pending(last, record_conflicts=False)
        # The event kernel's probe adapter never wakes in this cycle
        # (no PH event), so the trailing updates stay unobserved there
        # too -- drop them rather than emit an unmatched record.
        self._cycle_changed.clear()

    def _apply_pending(self, at: StepPhase, record_conflicts: bool) -> None:
        """Apply updates scheduled in the previous cycle.

        Replicates the kernel's update step: driver contributions land
        first-touch-ordered on their resolved sinks (a transaction on a
        resolved sink re-resolves even without a contribution change),
        single-driver ports change directly, and each effective-value
        change counts one event.  Conflict events are recorded for
        sinks that newly resolved to ILLEGAL, with all of the cycle's
        updates already applied when sources are read -- the kernel's
        monitor drains after the update phase.
        """
        if not (self._pend_drv or self._pend_out):
            return
        pend_drv, self._pend_drv = self._pend_drv, []
        pend_out, self._pend_out = self._pend_out, []
        values = self._values
        contrib = self._drv_contrib
        stats = self.stats
        track = self._cycle_changed if self._probe is not None else None
        dirty: List[int] = []
        seen: set[int] = set()
        for drv, value in pend_drv:
            contrib[drv] = value
            sink = self._drv_sink[drv]
            if sink not in seen:
                seen.add(sink)
                dirty.append(sink)
        for idx, value in pend_out:
            if values[idx] != value:
                values[idx] = value
                stats.events += 1
                if track is not None:
                    track.add(idx)
        newly_illegal: List[int] = []
        for sink in dirty:
            new = resolve_rt(
                [contrib[d] for d in self._sink_drivers[sink]]
            )
            if new == values[sink]:
                continue
            values[sink] = new
            stats.events += 1
            if track is not None:
                track.add(sink)
            if new == ILLEGAL:
                if sink not in self._active_illegal:
                    self._active_illegal.add(sink)
                    newly_illegal.append(sink)
            else:
                self._active_illegal.discard(sink)
        if record_conflicts:
            for sink in newly_illegal:
                sources = tuple(
                    (self._drv_owner[d], contrib[d])
                    for d in self._sink_drivers[sink]
                    if contrib[d] != DISC
                )
                self.monitor.record(
                    ConflictEvent(self._names[sink], at, sources)
                )

    def _emit_cycle(self, at: StepPhase) -> None:
        """Forward this cycle's observations to the attached probe.

        Collects the changed ports and defers to
        :func:`~repro.observe.emit.emit_canonical_cycle` -- the same
        canonical-order helper the event kernel's adapter and the
        sharded coordinator use.  Conflicts were already forwarded by
        the monitor listener during ``_apply_pending`` -- the same
        relative order the kernel's monitor process (created before
        the adapter) produces.
        """
        changed = self._cycle_changed
        values = self._values
        names = self._names
        drives = [
            (names[idx], values[idx])
            for idx in range(self._bus_count)
            if idx in changed
        ]
        latches = [
            (reg, values[idx])
            for reg, idx in self._reg_out_idx.items()
            if idx in changed
        ]
        changed.clear()
        emit_canonical_cycle(self._probe, at, drives, latches)

    # ------------------------------------------------------------------
    # results (mirrors RTSimulation)
    # ------------------------------------------------------------------
    @property
    def registers(self) -> dict[str, int]:
        """Current value of every register's output port."""
        return {
            name: self._values[idx]
            for name, idx in self._reg_out_idx.items()
        }

    def __getitem__(self, register: str) -> int:
        """Value of one register (``sim["R1"]``)."""
        try:
            return self._values[self._reg_out_idx[register]]
        except KeyError:
            raise KeyError(f"unknown register {register!r}") from None

    @property
    def conflicts(self) -> list[ConflictEvent]:
        """Observed ILLEGAL episodes, localized to (step, phase)."""
        return self.monitor.events

    @property
    def clean(self) -> bool:
        """True when the run produced no ILLEGAL value anywhere."""
        return self.monitor.clean and not any(
            value == ILLEGAL for value in self.registers.values()
        )

    def signal(self, name: str) -> PortView:
        """Access a port/bus value view by name (e.g. ``"ADD_out"``)."""
        try:
            return PortView(name, self._values, self._index[name])
        except KeyError:
            raise KeyError(f"unknown signal {name!r}") from None
