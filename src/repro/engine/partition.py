"""The shard planner: partition a model for multi-process execution.

The sharded backend (:mod:`repro.engine.sharded`) runs buses and
functional units in worker processes and synchronizes at control-step
boundaries.  That is only bit-identical to the single-process backends
if no *intra-step* dataflow crosses a shard: within one control step a
value travels register output -> bus -> module input -> module output
-> bus -> register input, and every hop except the two register ends
happens mid-step.  Register outputs are stable for the whole step (the
CR latch lands at the next step's RA cycle) and register inputs only
matter at the step's CR cycle, so registers are exactly the state that
can live at the step boundary.

The planner therefore clusters each functional unit with every bus
that feeds its input ports and every bus it writes results to
(union-find over the transfer connectivity), and a shard is a set of
whole clusters.  Registers are free: any shard may *read* a register
(the coordinator ships its stable output value at the barrier) and any
shard may *write* one (the contribution is exported and merged at the
barrier, which is where cross-shard conflicts are detected).

The default heuristic is deterministic and seed-stable: clusters are
sorted by (weight, name) and greedily packed onto the least-loaded
shard, so the same model always yields the same plan on every machine.
A user-supplied ``partition`` mapping overrides the heuristic and is
validated against the co-location constraint.

Since the single-lowering refactor the planner consumes the lowered
:class:`~repro.engine.plan.Plan` (whose ``spec_rows`` and ``clusters``
already carry the connectivity): :func:`plan_shards_for` is the core;
:func:`plan_shards` and :func:`connectivity_clusters` remain as
model-level conveniences producing identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.phases import Phase

#: (step, phase_int, source, sink) -- one lowered TRANS instance.
SpecRow = Tuple[int, int, str, str]


class PartitionError(ValueError):
    """Raised for invalid shard counts or constraint-violating plans."""


@dataclass(frozen=True)
class ShardPlan:
    """A validated assignment of model resources to ``num_shards`` shards.

    ``bus_shard`` / ``module_shard`` map every bus and functional unit
    to its executing shard.  ``register_shard`` records the balance
    assignment of each register (its contributions are merged by the
    coordinator at the step barrier on the owning shard's behalf).
    ``spec_shards[i]`` is the shard executing the i-th TRANS instance
    of ``model.trans_specs()``; that global index is the stable driver
    identity used when per-shard driver sets are merged at the barrier.
    """

    num_shards: int
    bus_shard: Mapping[str, int]
    module_shard: Mapping[str, int]
    register_shard: Mapping[str, int]
    spec_shards: Tuple[int, ...]
    clusters: Tuple[Tuple[str, ...], ...]
    #: per shard: registers whose output values the shard reads.
    reads: Tuple[Tuple[str, ...], ...] = field(default=())
    #: per register: shards exporting write contributions to it.
    writer_shards: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)

    def shard_of_spec(self, index: int) -> int:
        return self.spec_shards[index]

    def describe(self) -> str:
        """Human-readable plan summary (used by ``repro bench --sharded``)."""
        lines = [f"shard plan: {self.num_shards} shards"]
        for k in range(self.num_shards):
            buses = sorted(b for b, s in self.bus_shard.items() if s == k)
            units = sorted(m for m, s in self.module_shard.items() if s == k)
            regs = sorted(r for r, s in self.register_shard.items() if s == k)
            specs = sum(1 for s in self.spec_shards if s == k)
            lines.append(
                f"  shard {k}: {len(units)} units, {len(buses)} buses, "
                f"{len(regs)} registers, {specs} transfers"
            )
        return "\n".join(lines)


def _row_label(row: SpecRow) -> str:
    """The TRANS instance label of a spec row (matches TransSpec.__str__)."""
    step, phase_int, source, sink = row
    return f"{source}_{sink}_{step}@{Phase(phase_int).vhdl_name}"


def _executing_resource(row: SpecRow) -> Optional[str]:
    """The bus/module resource whose shard executes this TRANS instance.

    RA instances execute where their sink bus lives (the source is a
    stable register output).  RB/CM-adjacent instances sink on module
    ports; WA instances sink on buses but read a module output, and WB
    instances read a bus and export to a register input.  In every case
    the instance is pinned to a bus or module name; register endpoints
    never pin anything.
    """
    step, phase_int, source, sink = row
    if phase_int == int(Phase.RA):
        return sink  # the bus being loaded
    if phase_int == int(Phase.RB):
        # bus -> module input port (or op: constant -> op port); pin to
        # the module owning the sink port.
        return _port_owner(sink)
    if phase_int == int(Phase.WA):
        return sink  # module output -> bus; bus is clustered with it
    if phase_int == int(Phase.WB):
        return source  # bus -> register input: runs where the bus is
    raise PartitionError(
        f"transfer {_row_label(row)} activates outside ra/rb/wa/wb"
    )


def _port_owner(port: str) -> str:
    """Strip a module-port suffix (``_in1``/``_in2``/``_op``/``_out``)."""
    for suffix in ("_in1", "_in2", "_op", "_out"):
        if port.endswith(suffix):
            return port[: -len(suffix)]
    return port


def clusters_from_rows(
    bus_names: Sequence[str],
    module_names: Sequence[str],
    rows: Sequence[SpecRow],
) -> List[Set[str]]:
    """Union-find clusters over the lowered transfer connectivity.

    Nodes are buses and functional units; an edge joins a module with
    every bus feeding its input/op ports and every bus carrying its
    output -- the co-location constraint of the sharded backend.
    Buses and units untouched by any transfer form singleton clusters.
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for name in bus_names:
        find(name)
    for name in module_names:
        find(name)
    rb_phase, wa_phase = int(Phase.RB), int(Phase.WA)
    for _step, phase_int, source, sink in rows:
        if phase_int == rb_phase:
            module = _port_owner(sink)
            if not source.startswith("op:"):
                union(module, source)
        elif phase_int == wa_phase:
            union(_port_owner(source), sink)
        # RA reads a register output (no constraint); WB reads a bus
        # and writes a register input (merged at the barrier).
    groups: Dict[str, Set[str]] = {}
    for name in parent:
        groups.setdefault(find(name), set()).add(name)
    return sorted(groups.values(), key=lambda g: min(g))


def connectivity_clusters(model) -> List[Set[str]]:
    """Model-level convenience wrapper around :func:`clusters_from_rows`."""
    rows = [
        (spec.step, int(spec.phase), spec.source, spec.sink)
        for spec in model.trans_specs()
    ]
    return clusters_from_rows(tuple(model.buses), tuple(model.modules), rows)


def plan_shards_for(
    plan,
    num_shards: int,
    partition: Optional[Mapping[str, int]] = None,
) -> ShardPlan:
    """Build (or validate) the shard plan for a lowered ``plan``.

    ``partition`` optionally maps resource names (buses, modules,
    registers) to shard indices; resources it names pin their whole
    cluster, and a mapping that splits a cluster raises
    :class:`PartitionError`.  Resources it omits are placed by the
    deterministic heuristic.
    """
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    rows: Sequence[SpecRow] = plan.spec_rows
    clusters: Sequence[Tuple[str, ...]] = plan.clusters
    bus_names = set(plan.port_names[: plan.bus_count])
    register_names = tuple(name for name, _, _ in plan.reg_ports)
    known = (
        bus_names
        | {mp.name for mp in plan.modules}
        | set(register_names)
    )
    partition = dict(partition or {})
    unknown = set(partition) - known
    if unknown:
        raise PartitionError(
            f"partition names unknown resources: {sorted(unknown)}"
        )
    for name, shard in partition.items():
        if not isinstance(shard, int) or not 0 <= shard < num_shards:
            raise PartitionError(
                f"partition[{name!r}] = {shard!r} is not a shard index in "
                f"[0, {num_shards})"
            )

    # -- place clusters: pinned ones first, the rest greedily ------------
    weights = _cluster_weights(clusters, rows)
    load = [0] * num_shards
    cluster_shard: Dict[int, int] = {}
    order = sorted(
        range(len(clusters)),
        key=lambda i: (-weights[i], min(clusters[i])),
    )
    for i in order:
        pins = {
            partition[name] for name in clusters[i] if name in partition
        }
        if len(pins) > 1:
            raise PartitionError(
                f"partition splits cluster {sorted(clusters[i])}: "
                f"members pinned to shards {sorted(pins)}"
            )
        if pins:
            shard = pins.pop()
        else:
            shard = min(range(num_shards), key=lambda k: (load[k], k))
        cluster_shard[i] = shard
        load[shard] += weights[i]

    bus_shard: Dict[str, int] = {}
    module_shard: Dict[str, int] = {}
    for i, cluster in enumerate(clusters):
        for name in cluster:
            if name in bus_names:
                bus_shard[name] = cluster_shard[i]
            else:
                module_shard[name] = cluster_shard[i]

    # -- pin each TRANS instance to its executing resource's shard -------
    spec_shards = tuple(
        _resource_shard(_executing_resource(row), bus_shard, module_shard, row)
        for row in rows
    )

    # -- registers: honor pins, else follow their traffic ----------------
    register_set = set(register_names)
    affinity: Dict[str, Dict[int, int]] = {r: {} for r in register_names}
    reads: List[Set[str]] = [set() for _ in range(num_shards)]
    writer_shards: Dict[str, Set[int]] = {}
    ra_phase, wb_phase = int(Phase.RA), int(Phase.WB)
    for index, row in enumerate(rows):
        _step, phase_int, source, sink = row
        shard = spec_shards[index]
        if phase_int == ra_phase and source.endswith("_out"):
            register = source[: -len("_out")]
            if register in register_set:
                reads[shard].add(register)
                counts = affinity[register]
                counts[shard] = counts.get(shard, 0) + 1
        elif phase_int == wb_phase and sink.endswith("_in"):
            register = sink[: -len("_in")]
            if register in register_set:
                writer_shards.setdefault(register, set()).add(shard)
                counts = affinity[register]
                counts[shard] = counts.get(shard, 0) + 1
    register_shard: Dict[str, int] = {}
    reg_load = [0] * num_shards
    for register in register_names:
        if register in partition:
            shard = partition[register]
        else:
            counts = affinity[register]
            if counts:
                best = max(counts.values())
                shard = min(k for k, c in counts.items() if c == best)
            else:
                shard = min(range(num_shards), key=lambda k: (reg_load[k], k))
        register_shard[register] = shard
        reg_load[shard] += 1

    return ShardPlan(
        num_shards=num_shards,
        bus_shard=bus_shard,
        module_shard=module_shard,
        register_shard=register_shard,
        spec_shards=spec_shards,
        clusters=tuple(tuple(sorted(c)) for c in clusters),
        reads=tuple(tuple(sorted(r)) for r in reads),
        writer_shards={
            r: tuple(sorted(s)) for r, s in sorted(writer_shards.items())
        },
    )


def plan_shards(
    model,
    num_shards: int,
    partition: Optional[Mapping[str, int]] = None,
) -> ShardPlan:
    """Model-level convenience: lower, then :func:`plan_shards_for`."""
    from .plan import lower  # deferred: plan.py imports this module

    return plan_shards_for(lower(model), num_shards, partition)


def _cluster_weights(
    clusters: Sequence[Tuple[str, ...]], rows: Sequence[SpecRow]
) -> List[int]:
    """Cluster weight = resources + TRANS instances it executes."""
    index_of: Dict[str, int] = {}
    for i, cluster in enumerate(clusters):
        for name in cluster:
            index_of[name] = i
    weights = [len(cluster) for cluster in clusters]
    for row in rows:
        resource = _executing_resource(row)
        if resource is not None and resource in index_of:
            weights[index_of[resource]] += 1
    return weights


def _resource_shard(
    resource: Optional[str],
    bus_shard: Mapping[str, int],
    module_shard: Mapping[str, int],
    row: SpecRow,
) -> int:
    if resource is not None:
        if resource in bus_shard:
            return bus_shard[resource]
        if resource in module_shard:
            return module_shard[resource]
    raise PartitionError(
        f"transfer {_row_label(row)} references no placeable bus or module"
    )
